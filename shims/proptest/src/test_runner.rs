//! Test-runner plumbing: per-test RNG, configuration and case errors.

use std::fmt;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration of one `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure of one generated test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    #[must_use]
    pub fn fail(message: &str) -> Self {
        TestCaseError {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The RNG strategies draw from.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic RNG derived from the test's path, so runs are
    /// reproducible without persisted seeds.
    #[must_use]
    pub fn deterministic(test_path: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_path.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
