//! Crash-replay tests for the per-shard journal segments: a "crash" drops
//! the engine without any clean shutdown, then a fresh engine must replay
//! the segment set back to equivalent state — including when the shard
//! count changed in between, when a segment-set swap was torn mid-rewrite,
//! and while concurrent writers and rewriters were racing.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use gdpr_storage::kvstore::aof::FsyncPolicy;
use gdpr_storage::kvstore::config::{EvictionPolicy, StoreConfig};
use gdpr_storage::kvstore::sharded_aof::segment_path;
use gdpr_storage::kvstore::store::KvStore;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gdpr-aofcrash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The canonical state of a store: every key (sorted) with its value
/// fields and TTL deadline. Two stores replaying the same journal must
/// produce byte-for-byte identical digests regardless of shard count.
fn state_digest(store: &KvStore) -> Vec<u8> {
    let mut map: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    for key in store.keys("*").unwrap() {
        let mut entry = Vec::new();
        if let Ok(Some(value)) = store.get(&key) {
            entry.extend_from_slice(b"str:");
            entry.extend_from_slice(&value);
        } else if let Ok(Some(fields)) = store.hgetall(&key) {
            entry.extend_from_slice(b"hash:");
            for (field, value) in fields {
                entry.extend_from_slice(field.as_bytes());
                entry.push(b'=');
                entry.extend_from_slice(&value);
                entry.push(b';');
            }
        } else {
            panic!("key {key} is neither string nor hash");
        }
        if let Some(ttl) = store.ttl(&key).unwrap() {
            // Remaining TTL is measured against the wall clock, so digest
            // it at minute granularity to absorb the few ms between opens.
            entry.extend_from_slice(format!("ttl:{}m", ttl.as_millis() / 60_000).as_bytes());
        }
        map.insert(key, entry);
    }
    let mut digest = Vec::new();
    for (key, entry) in map {
        digest.extend_from_slice(key.as_bytes());
        digest.push(0);
        digest.extend_from_slice(&entry);
        digest.push(b'\n');
    }
    digest
}

fn write_fixture(store: &KvStore) {
    for i in 0..60 {
        store
            .set(&format!("user{i:03}"), vec![i as u8, 0xaa])
            .unwrap();
    }
    for i in 0..10 {
        store.delete(&format!("user{i:03}")).unwrap();
    }
    store
        .hset("profile:alice", "email", b"a@example.com".to_vec())
        .unwrap();
    store
        .hset("profile:alice", "phone", b"555-0100".to_vec())
        .unwrap();
    store.set("ttl-key", b"expiring".to_vec()).unwrap();
    store.expire_at("ttl-key", 10_000_000_000_000).unwrap();
    store.set("overwritten", b"old".to_vec()).unwrap();
    store.set("overwritten", b"new".to_vec()).unwrap();
    store.fsync().unwrap();
    // "Crash": the store is dropped by the caller without a clean close.
}

#[test]
fn crash_replay_matrix_is_portable_across_shard_counts() {
    for write_shards in [1usize, 4, 8] {
        let dir = test_dir(&format!("matrix-w{write_shards}"));
        let path = dir.join("journal.aof");
        {
            let store = KvStore::open(StoreConfig::with_aof(&path).shards(write_shards)).unwrap();
            write_fixture(&store);
        }
        let mut digests = Vec::new();
        for reopen_shards in [1usize, 4, 8] {
            let store = KvStore::open(StoreConfig::with_aof(&path).shards(reopen_shards)).unwrap();
            assert_eq!(
                store.len(),
                53,
                "written with {write_shards} shards, reopened with {reopen_shards}"
            );
            assert_eq!(store.get("user000").unwrap(), None, "delete must replay");
            assert_eq!(store.get("user059").unwrap(), Some(vec![59, 0xaa]));
            assert_eq!(
                store.hget("profile:alice", "email").unwrap(),
                Some(b"a@example.com".to_vec())
            );
            assert_eq!(store.get("overwritten").unwrap(), Some(b"new".to_vec()));
            assert!(store.ttl("ttl-key").unwrap().is_some());
            digests.push(state_digest(&store));
        }
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "replayed state must be byte-for-byte equivalent at 1, 4 and 8 shards \
             (written with {write_shards})"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_segment_swap_recovers_the_old_set() {
    let dir = test_dir("torn-swap");
    let path = dir.join("journal.aof");
    {
        let store = KvStore::open(StoreConfig::with_aof(&path).shards(4)).unwrap();
        write_fixture(&store);
        assert_eq!(store.aof_epoch(), Some(1));
    }
    // Simulate a crash mid-rewrite: the next epoch's segment files were
    // staged (with garbage — nothing about them is trustworthy) but the
    // manifest rename never committed them.
    for idx in 0..4 {
        std::fs::write(segment_path(&path, 2, idx), b"half-written garbage").unwrap();
    }
    let store = KvStore::open(StoreConfig::with_aof(&path).shards(4)).unwrap();
    assert_eq!(store.aof_epoch(), Some(1), "old manifest must win");
    assert_eq!(store.len(), 53);
    assert_eq!(store.get("overwritten").unwrap(), Some(b"new".to_vec()));
    for idx in 0..4 {
        assert!(
            !segment_path(&path, 2, idx).exists(),
            "staged epoch-2 files must be cleaned up"
        );
    }
    // A completed rewrite afterwards swaps cleanly to epoch 2.
    assert!(store.rewrite_aof().unwrap() > 0);
    assert_eq!(store.aof_epoch(), Some(2));
    drop(store);
    let reopened = KvStore::open(StoreConfig::with_aof(&path).shards(4)).unwrap();
    assert_eq!(reopened.len(), 53);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn group_commit_hammering_loses_and_reorders_nothing() {
    let dir = test_dir("gc-hammer");
    let path = dir.join("journal.aof");
    const THREADS: usize = 8;
    const OPS_PER_THREAD: usize = 150;
    {
        let store = KvStore::open(
            StoreConfig::with_aof(&path)
                .shards(4)
                .fsync(FsyncPolicy::Always),
        )
        .unwrap();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let store = store.clone();
                scope.spawn(move || {
                    // Each thread writes a monotonically increasing value
                    // per key; last-write-wins order within a shard is the
                    // reordering detector.
                    for i in 0..OPS_PER_THREAD {
                        let key = format!("t{t}:k{}", i % 25);
                        store.set(&key, format!("{i:06}").into_bytes()).unwrap();
                    }
                });
            }
        });
        let stats = store.aof_stats().unwrap();
        assert_eq!(
            stats.records_appended,
            (THREADS * OPS_PER_THREAD) as u64,
            "every write journaled"
        );
        assert_eq!(
            stats.unsynced_records, 0,
            "fsync=always: nothing may be at risk once calls returned"
        );
        assert!(stats.group_commits > 0, "group committer must have run");
        assert_eq!(
            stats.group_commit_records, stats.records_appended,
            "every record covered by exactly one group commit"
        );
        // "Crash" without a clean close.
    }
    let replayed = KvStore::open(StoreConfig::with_aof(&path).shards(4)).unwrap();
    assert_eq!(replayed.len(), THREADS * 25);
    for t in 0..THREADS {
        for k in 0..25 {
            // The last write to slot k is the highest i with i % 25 == k.
            let last = (0..OPS_PER_THREAD).rev().find(|i| i % 25 == k).unwrap();
            assert_eq!(
                replayed.get(&format!("t{t}:k{k}")).unwrap(),
                Some(format!("{last:06}").into_bytes()),
                "per-key journal order must match apply order (t{t}, k{k})"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rewrite_racing_concurrent_writers_stays_consistent() {
    let dir = test_dir("rewrite-race");
    let path = dir.join("journal.aof");
    const WRITERS: usize = 4;
    const OPS_PER_WRITER: usize = 200;
    {
        let store = KvStore::open(
            StoreConfig::with_aof(&path)
                .shards(4)
                .fsync(FsyncPolicy::Always),
        )
        .unwrap();
        std::thread::scope(|scope| {
            for t in 0..WRITERS {
                let store = store.clone();
                scope.spawn(move || {
                    for i in 0..OPS_PER_WRITER {
                        let key = format!("w{t}:k{}", i % 40);
                        store.set(&key, format!("{i:06}").into_bytes()).unwrap();
                    }
                });
            }
            // A rewriter compacting the segment set while writes land.
            let store = store.clone();
            scope.spawn(move || {
                for _ in 0..8 {
                    store.rewrite_aof().unwrap();
                    std::thread::yield_now();
                }
            });
        });
        let stats = store.aof_stats().unwrap();
        assert!(stats.rewrites >= 8 * 4, "8 rewrites × 4 segments");
        store.fsync().unwrap();
    }
    let replayed = KvStore::open(StoreConfig::with_aof(&path).shards(4)).unwrap();
    assert_eq!(replayed.len(), WRITERS * 40);
    for t in 0..WRITERS {
        for k in 0..40 {
            let last = (0..OPS_PER_WRITER).rev().find(|i| i % 40 == k).unwrap();
            assert_eq!(
                replayed.get(&format!("w{t}:k{k}")).unwrap(),
                Some(format!("{last:06}").into_bytes()),
                "rewrite must never lose or reorder a racing write (w{t}, k{k})"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_deadline_entries_do_not_resurrect_after_cross_shard_replay() {
    // Regression for the timer-wheel replay path: the journal carries the
    // full TTL history of a key (original deadline, reschedules,
    // deletions), so replaying it rebuilds the wheel *including* entries
    // that were later superseded. After a crash and an M→N-shard replay,
    // a deadline that was overwritten must not fire, and an erased key
    // must not resurrect (e.g. by journaling a spurious DEL that a later
    // replay could misorder).
    use gdpr_storage::kvstore::clock::SimClock;
    use gdpr_storage::kvstore::expire::ExpiryMode;

    for (write_shards, reopen_shards) in [(4usize, 1usize), (2, 8)] {
        let dir = test_dir(&format!("stale-ttl-{write_shards}-{reopen_shards}"));
        let path = dir.join("journal.aof");
        let base = 1_000_000u64;
        {
            let clock = SimClock::new(base);
            let store = KvStore::open(
                StoreConfig::with_aof(&path)
                    .shards(write_shards)
                    .clock(clock)
                    .expiry_mode(ExpiryMode::Strict),
            )
            .unwrap();
            for i in 0..40 {
                let erased = format!("erased{i:02}");
                store.set(&erased, b"pii".to_vec()).unwrap();
                store.expire_at(&erased, base + 2_000).unwrap();
                store.delete(&erased).unwrap();

                let rescheduled = format!("moved{i:02}");
                store.set(&rescheduled, b"keep".to_vec()).unwrap();
                store.expire_at(&rescheduled, base + 2_000).unwrap();
                store.expire_at(&rescheduled, base + 10_000_000).unwrap();

                let due = format!("due{i:02}");
                store.set(&due, b"short".to_vec()).unwrap();
                store.expire_at(&due, base + 2_000).unwrap();
            }
            store.fsync().unwrap();
            // "Crash": dropped without a clean shutdown.
        }

        let clock = SimClock::new(base);
        let store = KvStore::open(
            StoreConfig::with_aof(&path)
                .shards(reopen_shards)
                .clock(clock.clone())
                .expiry_mode(ExpiryMode::Strict),
        )
        .unwrap();
        assert_eq!(store.len(), 80, "40 rescheduled + 40 due keys replay");
        clock.advance_millis(3_000); // past the stale/original deadline only
        let outcome = store.tick().unwrap();
        let mut removed = outcome.removed.clone();
        removed.sort();
        let expected: Vec<String> = (0..40).map(|i| format!("due{i:02}")).collect();
        assert_eq!(
            removed, expected,
            "exactly the untouched deadlines fire after {write_shards}→{reopen_shards} replay"
        );
        for i in 0..40 {
            assert_eq!(
                store.get(&format!("erased{i:02}")).unwrap(),
                None,
                "erased key resurrected"
            );
            assert_eq!(
                store.get(&format!("moved{i:02}")).unwrap(),
                Some(b"keep".to_vec()),
                "rescheduled key fired at its stale deadline"
            );
        }
        // A second tick finds nothing: no double fire, no lingering
        // stale entries, and pending-expired settles to zero.
        let outcome = store.tick().unwrap();
        assert!(outcome.removed.is_empty());
        assert_eq!(store.pending_expired(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn legacy_single_file_journal_migrates_on_open() {
    let dir = test_dir("legacy-migrate");
    let path = dir.join("journal.aof");
    // Produce a legacy single-file AOF with the old framing by writing it
    // directly (raw length-prefixed command records, no manifest, no
    // sequence numbers).
    {
        use gdpr_storage::kvstore::aof::AofLog;
        use gdpr_storage::kvstore::clock::SystemClock;
        use gdpr_storage::kvstore::commands::Command;
        use gdpr_storage::kvstore::device::PlainFileDevice;
        let mut log = AofLog::new(
            Box::new(PlainFileDevice::open(&path).unwrap()),
            FsyncPolicy::Never,
            std::sync::Arc::new(SystemClock),
        );
        for i in 0..30 {
            log.append(
                &Command::Set {
                    key: format!("old{i:02}"),
                    value: vec![i as u8],
                }
                .encode(),
            )
            .unwrap();
        }
        log.append(
            &Command::Del {
                key: "old00".to_string(),
            }
            .encode(),
        )
        .unwrap();
        log.fsync().unwrap();
    }
    let store = KvStore::open(StoreConfig::with_aof(&path).shards(4)).unwrap();
    assert_eq!(store.len(), 29, "legacy records replay through the router");
    assert_eq!(store.get("old00").unwrap(), None);
    assert_eq!(store.get("old29").unwrap(), Some(vec![29]));
    // The layout is migrated: the path now holds a manifest and new
    // appends survive a reopen of the segmented layout.
    store.set("new-key", b"fresh".to_vec()).unwrap();
    store.fsync().unwrap();
    drop(store);
    assert!(segment_path(Path::new(&path), 1, 0).exists());
    let reopened = KvStore::open(StoreConfig::with_aof(&path).shards(2)).unwrap();
    assert_eq!(reopened.len(), 30);
    assert_eq!(reopened.get("new-key").unwrap(), Some(b"fresh".to_vec()));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eviction_deletes_replay_to_the_same_bounded_state() {
    let dir = test_dir("evict");
    let path = dir.join("journal.aof");
    let ceiling = 16 * 1024u64;
    let digest_before;
    {
        let store = KvStore::open(
            StoreConfig::with_aof(&path)
                .shards(4)
                .max_memory(ceiling)
                .eviction_policy(EvictionPolicy::SampledLru),
        )
        .unwrap();
        // Several ceilings' worth of writes: the evictor must shed keys
        // and journal each shed as a DEL.
        for i in 0..600 {
            store
                .set(&format!("evict{i:04}"), vec![i as u8; 100])
                .unwrap();
        }
        let stats = store.stats();
        assert!(stats.db.evicted_keys > 0, "{stats:?}");
        assert!(stats.db.mem_bytes <= ceiling, "{stats:?}");
        store.fsync().unwrap();
        digest_before = state_digest(&store);
        // "Crash": dropped without a clean close.
    }
    // Replay WITHOUT a ceiling and at a different shard count: the
    // journal's eviction DELs alone must reproduce the bounded state —
    // no resurrected keys, nothing extra missing.
    let store = KvStore::open(StoreConfig::with_aof(&path).shards(2)).unwrap();
    assert_eq!(
        state_digest(&store),
        digest_before,
        "replayed state must match the pre-crash bounded state"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
