//! Shard-scaling sweep: YCSB-A-style mixed workload against the GDPR
//! store, varying engine shard count × client thread count, to measure how
//! far the sharded architecture moves the compliance overhead off the
//! serial path.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin shard_scaling \
//!     [records=N] [ops=N] [seed=N] [maxshards=N] [maxthreads=N] [policy=0|1|2]
//! ```
//!
//! `policy` selects 0 = unmodified, 1 = eventual (default), 2 = strict.
//! Emits a human table and writes a `BENCH_shard_scaling.json` trajectory
//! point into the current directory.

use bench::adapters::GdprAdapter;
use bench::arg_value;
use gdpr_core::policy::CompliancePolicy;
use gdpr_core::store::GdprStore;
use kvstore::config::StoreConfig;
use ycsb::concurrent::ConcurrentDriver;
use ycsb::stats::RunReport;
use ycsb::workload::WorkloadSpec;

struct Cell {
    shards: usize,
    threads: usize,
    load: RunReport,
    run: RunReport,
}

fn open_adapter(policy: &CompliancePolicy, shards: usize) -> GdprAdapter {
    let config = StoreConfig::in_memory().aof_in_memory().shards(shards);
    let store = GdprStore::open(
        policy.clone(),
        config,
        Box::new(audit::sink::NullSink::new()),
    )
    .expect("open GDPR store");
    GdprAdapter::new(store)
}

fn sweep_axis(max: u64) -> Vec<usize> {
    let mut axis = Vec::new();
    let mut v = 1usize;
    while v as u64 <= max.max(1) {
        axis.push(v);
        v *= 2;
    }
    axis
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let records = arg_value(&args, "records").unwrap_or(8_000);
    let ops = arg_value(&args, "ops").unwrap_or(24_000);
    let seed = arg_value(&args, "seed").unwrap_or(42);
    let max_shards = arg_value(&args, "maxshards").unwrap_or(8);
    let max_threads = arg_value(&args, "maxthreads").unwrap_or(8);
    let policy = match arg_value(&args, "policy").unwrap_or(1) {
        0 => CompliancePolicy::unmodified(),
        2 => CompliancePolicy::strict(),
        _ => CompliancePolicy::eventual(),
    };

    let cores = bench::host_cores();
    println!(
        "shard_scaling — YCSB-A mix, policy={}, records={records}, ops={ops}, cores={cores}",
        policy.name
    );
    if cores == 1 {
        println!("  note: single-core host — expect parity, not speedup, across shard counts");
    }

    let mut cells = Vec::new();
    for &shards in &sweep_axis(max_shards) {
        for &threads in &sweep_axis(max_threads) {
            let adapter = open_adapter(&policy, shards);
            let driver =
                ConcurrentDriver::new(WorkloadSpec::workload_a(records, ops), threads, seed);
            let load = driver.run_load(&adapter).expect("load phase");
            let run = driver
                .run_transactions(&adapter)
                .expect("transaction phase");
            println!(
                "  shards={shards:<3} threads={threads:<3}  load {:>10.0} ops/s   run {:>10.0} ops/s   errors {}",
                load.throughput(),
                run.throughput(),
                load.errors + run.errors,
            );
            cells.push(Cell {
                shards,
                threads,
                load,
                run,
            });
        }
    }

    // Scaling headlines: fix the thread count, compare shard counts.
    let tput = |shards: usize, threads: usize| -> Option<f64> {
        cells
            .iter()
            .find(|c| c.shards == shards && c.threads == threads)
            .map(|c| c.run.throughput())
    };
    if let (Some(one), Some(two)) = (tput(1, 2), tput(2, 2)) {
        println!("\n2 threads: 2 shards / 1 shard = {:.2}x", two / one);
    }
    if let (Some(one), Some(many)) = (tput(1, 4), tput(4, 4)) {
        println!("4 threads: 4 shards / 1 shard = {:.2}x", many / one);
    }

    let json = render_json(&policy.name, records, ops, seed, &cells);
    std::fs::write("BENCH_shard_scaling.json", &json).expect("write BENCH_shard_scaling.json");
    println!("\nwrote BENCH_shard_scaling.json ({} cells)", cells.len());
}

fn render_json(policy: &str, records: u64, ops: u64, seed: u64, cells: &[Cell]) -> String {
    let mut out = bench::json_envelope("shard_scaling");
    out.push_str("  \"workload\": \"A\",\n");
    out.push_str(&format!("  \"policy\": \"{policy}\",\n"));
    out.push_str(&format!("  \"records\": {records},\n"));
    out.push_str(&format!("  \"operations\": {ops},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"threads\": {}, \"load_ops_per_sec\": {:.1}, \"run_ops_per_sec\": {:.1}, \"run_p99_micros\": {}, \"errors\": {}}}{}\n",
            cell.shards,
            cell.threads,
            cell.load.throughput(),
            cell.run.throughput(),
            cell.run.latency.percentile_micros(0.99),
            cell.load.errors + cell.run.errors,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
