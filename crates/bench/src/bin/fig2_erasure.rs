//! Reproduces **Figure 2** of the paper: the delay between a key's TTL
//! expiring and the key actually being erased, as a function of database
//! size, for stock Redis' lazy probabilistic expiry versus the paper's
//! strict ("fast active expiry") modification.
//!
//! The experiment runs on a simulated clock, so the paper's three-hour
//! wall-clock measurement at 128k keys completes in well under a second of
//! real time while reporting the same simulated-seconds quantity.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin fig2_erasure [seed=N]
//! ```

use bench::arg_value;
use bench::fig2::{render_table, run_figure2};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = arg_value(&args, "seed").unwrap_or(7);

    println!("Figure 2 reproduction — erasure delay of expired keys (20% of keys expire at +5min)");
    println!("simulated clock; Redis active-expiry parameters: 100ms cycle, 20 samples, repeat at ≥5 expired\n");

    let (lazy, strict) = run_figure2(seed);
    println!("{}", render_table(&lazy, &strict));

    println!("observations:");
    if let (Some(first), Some(last)) = (lazy.first(), lazy.last()) {
        println!(
            "  lazy erasure delay grows from {:.0}s at {} keys to {:.0}s at {} keys (paper: 41s → 10728s)",
            first.erase_seconds, first.total_keys, last.erase_seconds, last.total_keys
        );
    }
    let max_strict = strict
        .iter()
        .map(|p| p.erase_seconds)
        .fold(0.0f64, f64::max);
    println!(
        "  strict erasure completes within {max_strict:.3}s even at 1M keys (paper: sub-second up to 1M keys)"
    );
}
