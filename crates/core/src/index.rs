//! Secondary metadata indexes (Articles 15, 17, 20, 21).
//!
//! The data-subject rights all start with the same query: *find every key
//! that belongs to this person* (or: that is processed under this purpose).
//! Stock key-value stores can only answer that with a full scan; the paper
//! lists "Metadata indexing" as a required storage feature and "efficient
//! metadata indexing" as an open research challenge (§5.1). The compliance
//! layer maintains two inverted indexes — subject → keys and purpose →
//! keys — updated on every write and erase.
//!
//! [`ShardedMetadataIndex`] splits the postings into per-shard segments
//! aligned with the engine's key routing, so per-key maintenance (the hot
//! path: every `put`/`delete`) only locks the owning segment, while
//! cross-shard queries (`right_to_erasure`, `right_of_access`, …) merge
//! over all segments.

use std::collections::{BTreeMap, BTreeSet};

use kvstore::shard::ShardRouter;
use parking_lot::Mutex;

/// In-memory inverted indexes over the GDPR metadata.
///
/// The index is rebuildable from the metadata shadow records (see
/// [`crate::store::GdprStore::rebuild_index`]), so it does not need its own
/// persistence.
#[derive(Debug, Clone, Default)]
pub struct MetadataIndex {
    by_subject: BTreeMap<String, BTreeSet<String>>,
    by_purpose: BTreeMap<String, BTreeSet<String>>,
    /// Number of index mutations performed (used by the ablation bench).
    updates: u64,
}

impl MetadataIndex {
    /// An empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Index `key` as belonging to `subject` with the given purposes.
    pub fn insert(&mut self, key: &str, subject: &str, purposes: impl IntoIterator<Item = String>) {
        self.by_subject
            .entry(subject.to_string())
            .or_default()
            .insert(key.to_string());
        for purpose in purposes {
            self.by_purpose
                .entry(purpose)
                .or_default()
                .insert(key.to_string());
        }
        self.updates += 1;
    }

    /// Remove `key` from every posting list.
    pub fn remove(&mut self, key: &str) {
        self.by_subject.retain(|_, keys| {
            keys.remove(key);
            !keys.is_empty()
        });
        self.by_purpose.retain(|_, keys| {
            keys.remove(key);
            !keys.is_empty()
        });
        self.updates += 1;
    }

    /// Remove `key` from one purpose's posting list (used when an objection
    /// is recorded against that purpose).
    pub fn remove_purpose(&mut self, key: &str, purpose: &str) {
        if let Some(keys) = self.by_purpose.get_mut(purpose) {
            keys.remove(key);
            if keys.is_empty() {
                self.by_purpose.remove(purpose);
            }
        }
        self.updates += 1;
    }

    /// Every key owned by `subject`, in lexicographic order.
    #[must_use]
    pub fn keys_of_subject(&self, subject: &str) -> Vec<String> {
        self.by_subject
            .get(subject)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Every key processable under `purpose`, in lexicographic order.
    #[must_use]
    pub fn keys_for_purpose(&self, purpose: &str) -> Vec<String> {
        self.by_purpose
            .get(purpose)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// All data subjects currently present in the index.
    #[must_use]
    pub fn subjects(&self) -> Vec<String> {
        self.by_subject.keys().cloned().collect()
    }

    /// All purposes currently present in the index.
    #[must_use]
    pub fn purposes(&self) -> Vec<String> {
        self.by_purpose.keys().cloned().collect()
    }

    /// Number of keys indexed for `subject`.
    #[must_use]
    pub fn subject_key_count(&self, subject: &str) -> usize {
        self.by_subject.get(subject).map_or(0, BTreeSet::len)
    }

    /// Total number of index mutations performed.
    #[must_use]
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Clear the index (before a rebuild).
    pub fn clear(&mut self) {
        self.by_subject.clear();
        self.by_purpose.clear();
    }
}

/// Per-shard segments of the metadata index, routed by the same key hash
/// the engine uses, so an operation that already holds the engine shard
/// only contends on its own index segment.
#[derive(Debug)]
pub struct ShardedMetadataIndex {
    segments: Vec<Mutex<MetadataIndex>>,
    router: ShardRouter,
}

impl ShardedMetadataIndex {
    /// An empty index aligned with `router`'s shard layout.
    #[must_use]
    pub fn new(router: ShardRouter) -> Self {
        let segments = (0..router.shard_count())
            .map(|_| Mutex::new(MetadataIndex::new()))
            .collect();
        ShardedMetadataIndex { segments, router }
    }

    /// Number of segments (= engine shards).
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Run `f` while holding the lock of `key`'s segment.
    ///
    /// This is the per-key **mutation bracket** of the compliance layer:
    /// the store updates engine value, metadata shadow and index posting
    /// for one key inside this critical section, so a concurrent erasure
    /// and a concurrent put of the same key serialize against each other
    /// (no resurrection of erased data, no index postings pointing at
    /// vanished keys) while keys on other segments proceed in parallel.
    /// The closure must use the provided segment, not re-enter `self`.
    pub fn with_key_segment<R>(&self, key: &str, f: impl FnOnce(&mut MetadataIndex) -> R) -> R {
        let mut segment = self.segments[self.router.shard_of(key)].lock();
        f(&mut segment)
    }

    /// Index `key` as belonging to `subject` with the given purposes
    /// (locks only the owning segment).
    pub fn insert(&self, key: &str, subject: &str, purposes: impl IntoIterator<Item = String>) {
        self.segments[self.router.shard_of(key)]
            .lock()
            .insert(key, subject, purposes);
    }

    /// Remove `key` from every posting list of its segment.
    pub fn remove(&self, key: &str) {
        self.segments[self.router.shard_of(key)].lock().remove(key);
    }

    /// Remove `key` from one purpose's posting list.
    pub fn remove_purpose(&self, key: &str, purpose: &str) {
        self.segments[self.router.shard_of(key)]
            .lock()
            .remove_purpose(key, purpose);
    }

    /// Every key owned by `subject`, merged across segments in
    /// lexicographic order.
    #[must_use]
    pub fn keys_of_subject(&self, subject: &str) -> Vec<String> {
        let mut keys: Vec<String> = self
            .segments
            .iter()
            .flat_map(|s| s.lock().keys_of_subject(subject))
            .collect();
        keys.sort();
        keys
    }

    /// Every key processable under `purpose`, merged across segments in
    /// lexicographic order.
    #[must_use]
    pub fn keys_for_purpose(&self, purpose: &str) -> Vec<String> {
        let mut keys: Vec<String> = self
            .segments
            .iter()
            .flat_map(|s| s.lock().keys_for_purpose(purpose))
            .collect();
        keys.sort();
        keys
    }

    /// All data subjects present in any segment, deduplicated and sorted.
    #[must_use]
    pub fn subjects(&self) -> Vec<String> {
        let set: BTreeSet<String> = self
            .segments
            .iter()
            .flat_map(|s| s.lock().subjects())
            .collect();
        set.into_iter().collect()
    }

    /// All purposes present in any segment, deduplicated and sorted.
    #[must_use]
    pub fn purposes(&self) -> Vec<String> {
        let set: BTreeSet<String> = self
            .segments
            .iter()
            .flat_map(|s| s.lock().purposes())
            .collect();
        set.into_iter().collect()
    }

    /// Number of keys indexed for `subject` across all segments.
    #[must_use]
    pub fn subject_key_count(&self, subject: &str) -> usize {
        self.segments
            .iter()
            .map(|s| s.lock().subject_key_count(subject))
            .sum()
    }

    /// Total number of index mutations performed across all segments.
    #[must_use]
    pub fn update_count(&self) -> u64 {
        self.segments.iter().map(|s| s.lock().update_count()).sum()
    }

    /// Clear every segment (before a rebuild).
    pub fn clear(&self) {
        for segment in &self.segments {
            segment.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> MetadataIndex {
        let mut idx = MetadataIndex::new();
        idx.insert(
            "user:alice:email",
            "alice",
            ["billing".to_string(), "analytics".to_string()],
        );
        idx.insert("user:alice:address", "alice", ["billing".to_string()]);
        idx.insert("user:bob:email", "bob", ["analytics".to_string()]);
        idx
    }

    #[test]
    fn subject_lookup() {
        let idx = sample_index();
        assert_eq!(
            idx.keys_of_subject("alice"),
            vec!["user:alice:address", "user:alice:email"]
        );
        assert_eq!(idx.keys_of_subject("bob"), vec!["user:bob:email"]);
        assert!(idx.keys_of_subject("carol").is_empty());
        assert_eq!(idx.subject_key_count("alice"), 2);
        assert_eq!(idx.subjects(), vec!["alice", "bob"]);
    }

    #[test]
    fn purpose_lookup() {
        let idx = sample_index();
        assert_eq!(idx.keys_for_purpose("billing").len(), 2);
        assert_eq!(idx.keys_for_purpose("analytics").len(), 2);
        assert!(idx.keys_for_purpose("marketing").is_empty());
        assert_eq!(idx.purposes(), vec!["analytics", "billing"]);
    }

    #[test]
    fn remove_key_everywhere() {
        let mut idx = sample_index();
        idx.remove("user:alice:email");
        assert_eq!(idx.keys_of_subject("alice"), vec!["user:alice:address"]);
        assert_eq!(idx.keys_for_purpose("analytics"), vec!["user:bob:email"]);
        // Removing the last key of a subject drops the subject entirely.
        idx.remove("user:bob:email");
        assert!(idx.subjects().iter().all(|s| s != "bob"));
    }

    #[test]
    fn remove_purpose_only_affects_that_posting_list() {
        let mut idx = sample_index();
        idx.remove_purpose("user:alice:email", "analytics");
        assert_eq!(idx.keys_for_purpose("analytics"), vec!["user:bob:email"]);
        // Subject index untouched.
        assert_eq!(idx.subject_key_count("alice"), 2);
        // Billing still lists the key.
        assert!(idx
            .keys_for_purpose("billing")
            .contains(&"user:alice:email".to_string()));
    }

    #[test]
    fn clear_and_update_counter() {
        let mut idx = sample_index();
        assert_eq!(idx.update_count(), 3);
        idx.clear();
        assert!(idx.subjects().is_empty());
        assert!(idx.purposes().is_empty());
    }

    #[test]
    fn reinserting_same_key_is_idempotent_in_content() {
        let mut idx = MetadataIndex::new();
        idx.insert("k", "alice", ["p".to_string()]);
        idx.insert("k", "alice", ["p".to_string()]);
        assert_eq!(idx.keys_of_subject("alice"), vec!["k"]);
        assert_eq!(idx.keys_for_purpose("p"), vec!["k"]);
    }

    #[test]
    fn sharded_index_merges_cross_segment_queries() {
        let idx = ShardedMetadataIndex::new(ShardRouter::new(4, 7));
        assert_eq!(idx.segment_count(), 4);
        for i in 0..32 {
            idx.insert(
                &format!("user:alice:{i:02}"),
                "alice",
                ["billing".to_string()],
            );
        }
        idx.insert("user:bob:0", "bob", ["analytics".to_string()]);
        let keys = idx.keys_of_subject("alice");
        assert_eq!(keys.len(), 32);
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "merged query must stay ordered");
        assert_eq!(idx.subject_key_count("alice"), 32);
        assert_eq!(idx.subjects(), vec!["alice", "bob"]);
        assert_eq!(idx.purposes(), vec!["analytics", "billing"]);
        assert_eq!(idx.keys_for_purpose("billing").len(), 32);
        assert!(idx.update_count() >= 33);

        idx.remove("user:alice:00");
        assert_eq!(idx.subject_key_count("alice"), 31);
        idx.remove_purpose("user:bob:0", "analytics");
        assert!(idx.keys_for_purpose("analytics").is_empty());
        idx.clear();
        assert!(idx.subjects().is_empty());
    }

    #[test]
    fn sharded_index_is_safe_under_concurrent_mutation() {
        let idx = ShardedMetadataIndex::new(ShardRouter::new(8, 7));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let idx = &idx;
                scope.spawn(move || {
                    for i in 0..100 {
                        idx.insert(
                            &format!("t{t}:k{i}"),
                            &format!("subject{t}"),
                            ["p".to_string()],
                        );
                    }
                });
            }
        });
        let total: usize = (0..8)
            .map(|t| idx.subject_key_count(&format!("subject{t}")))
            .sum();
        assert_eq!(total, 800);
    }
}
