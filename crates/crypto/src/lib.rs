//! From-scratch cryptographic primitives for the GDPR storage study.
//!
//! The paper ("Analyzing the Impact of GDPR on Storage Systems", HotStorage
//! '19) adds encryption to Redis in two places: at rest via LUKS full-disk
//! encryption, and in transit via a Stunnel TLS proxy. Reproducing those
//! exact components is not possible in a self-contained Rust workspace, so
//! this crate provides the primitives needed to *simulate* both: a stream
//! cipher ([`chacha20::ChaCha20`]), an authenticated-encryption
//! construction ([`aead::ChaCha20Poly1305`]), a hash
//! ([`sha256::Sha256`]), a MAC ([`hmac::HmacSha256`]) and a key-derivation
//! function ([`kdf`]). The persistence layer of the key-value engine uses
//! the AEAD to encrypt every byte written to disk (the LUKS substitute),
//! and the network simulator uses it to encrypt every frame on the wire
//! (the TLS substitute). What matters for the reproduction is that the
//! *same code path* — CPU work proportional to the number of bytes moved —
//! is exercised.
//!
//! # Security disclaimer
//!
//! These implementations are written for benchmarking and educational
//! purposes. They follow the RFC 8439 / FIPS 180-4 algorithms and pass the
//! published test vectors, but they are **not** constant-time audited and
//! must not be used to protect real personal data.
//!
//! # Example
//!
//! ```
//! use gdpr_crypto::aead::ChaCha20Poly1305;
//!
//! # fn main() -> Result<(), gdpr_crypto::CryptoError> {
//! let key = [7u8; 32];
//! let aead = ChaCha20Poly1305::new(&key);
//! let nonce = [1u8; 12];
//! let sealed = aead.seal(&nonce, b"record header", b"personal data");
//! let opened = aead.open(&nonce, b"record header", &sealed)?;
//! assert_eq!(opened, b"personal data");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha20;
pub mod hmac;
pub mod kdf;
pub mod keyring;
pub mod poly1305;
pub mod sha256;

use std::error::Error;
use std::fmt;

/// Errors produced by the cryptographic primitives in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// The authentication tag did not match: the ciphertext (or its
    /// associated data) was corrupted or tampered with.
    TagMismatch,
    /// The ciphertext is too short to even contain an authentication tag.
    TruncatedCiphertext {
        /// Number of bytes that were provided.
        got: usize,
        /// Minimum number of bytes required.
        need: usize,
    },
    /// A key, nonce or other parameter had an invalid length.
    InvalidLength {
        /// What the parameter was.
        what: &'static str,
        /// Number of bytes that were provided.
        got: usize,
        /// Number of bytes expected.
        expected: usize,
    },
    /// A requested key identifier does not exist in the keyring.
    UnknownKey(u64),
    /// The key for this identifier has been destroyed (crypto-erasure).
    KeyDestroyed(u64),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::TagMismatch => write!(f, "authentication tag mismatch"),
            CryptoError::TruncatedCiphertext { got, need } => {
                write!(
                    f,
                    "ciphertext too short: got {got} bytes, need at least {need}"
                )
            }
            CryptoError::InvalidLength {
                what,
                got,
                expected,
            } => {
                write!(
                    f,
                    "invalid {what} length: got {got} bytes, expected {expected}"
                )
            }
            CryptoError::UnknownKey(id) => write!(f, "unknown key id {id}"),
            CryptoError::KeyDestroyed(id) => write!(f, "key id {id} has been destroyed"),
        }
    }
}

impl Error for CryptoError {}

/// Constant-time byte-slice equality.
///
/// Compares every byte regardless of where the first difference occurs so
/// that MAC verification does not leak the position of a mismatch through
/// timing.
#[must_use]
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Fill `buf` with random bytes from the thread-local RNG.
///
/// Used for nonce generation in the storage and network layers. The quality
/// requirement here is uniqueness, not unpredictability, since this crate is
/// a benchmarking substitute for LUKS/TLS.
pub fn fill_random(buf: &mut [u8]) {
    use rand::RngCore;
    rand::thread_rng().fill_bytes(buf);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_time_eq_equal() {
        assert!(constant_time_eq(b"abcdef", b"abcdef"));
        assert!(constant_time_eq(b"", b""));
    }

    #[test]
    fn constant_time_eq_unequal() {
        assert!(!constant_time_eq(b"abcdef", b"abcdeg"));
        assert!(!constant_time_eq(b"abc", b"abcd"));
        assert!(!constant_time_eq(b"abc", b""));
    }

    #[test]
    fn fill_random_changes_buffer() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        fill_random(&mut a);
        fill_random(&mut b);
        // Two 256-bit random draws colliding is astronomically unlikely.
        assert_ne!(a, b);
    }

    #[test]
    fn error_display_is_nonempty() {
        let errors = [
            CryptoError::TagMismatch,
            CryptoError::TruncatedCiphertext { got: 3, need: 16 },
            CryptoError::InvalidLength {
                what: "key",
                got: 5,
                expected: 32,
            },
            CryptoError::UnknownKey(9),
            CryptoError::KeyDestroyed(9),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
