//! The audit record: one structured entry per interaction with personal
//! data.
//!
//! Article 30 spells out what a record of processing must capture: the
//! operation, the categories of data touched, the purpose, the actor and
//! the time. [`AuditRecord`] carries those fields plus the outcome, so that
//! denied accesses (Article 25 enforcement) leave evidence too.

use std::fmt;

/// The kind of interaction being recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Operation {
    /// A data-path read (`GET`, `HGET`, `HGETALL`, scans…).
    Read,
    /// A data-path write (`SET`, `HSET`, …).
    Write,
    /// A deletion, whether explicit or TTL-driven.
    Delete,
    /// A TTL / retention-metadata change.
    ExpireUpdate,
    /// A metadata change (purposes, objections, location…).
    MetadataUpdate,
    /// An access-control change (grants, revocations).
    AccessControl,
    /// A data-subject rights request (Articles 15/17/20/21).
    RightsRequest,
    /// Engine-internal maintenance (AOF rewrite, snapshot, key rotation).
    Maintenance,
}

impl Operation {
    /// Short stable string used in the serialized form.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            Operation::Read => "read",
            Operation::Write => "write",
            Operation::Delete => "delete",
            Operation::ExpireUpdate => "expire",
            Operation::MetadataUpdate => "metadata",
            Operation::AccessControl => "acl",
            Operation::RightsRequest => "rights",
            Operation::Maintenance => "maintenance",
        }
    }

    /// Parse the serialized form.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "read" => Operation::Read,
            "write" => Operation::Write,
            "delete" => Operation::Delete,
            "expire" => Operation::ExpireUpdate,
            "metadata" => Operation::MetadataUpdate,
            "acl" => Operation::AccessControl,
            "rights" => Operation::RightsRequest,
            "maintenance" => Operation::Maintenance,
            _ => return None,
        })
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Whether the recorded interaction was allowed to proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Outcome {
    /// The operation completed.
    #[default]
    Allowed,
    /// The operation was rejected by access control or purpose limitation.
    Denied,
    /// The operation failed for an internal reason (I/O, corruption).
    Failed,
}

impl Outcome {
    /// Short stable string used in the serialized form.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            Outcome::Allowed => "allowed",
            Outcome::Denied => "denied",
            Outcome::Failed => "failed",
        }
    }

    /// Parse the serialized form.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "allowed" => Outcome::Allowed,
            "denied" => Outcome::Denied,
            "failed" => Outcome::Failed,
            _ => return None,
        })
    }
}

/// One entry in the audit trail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Monotonic sequence number assigned by the log.
    pub sequence: u64,
    /// Unix-millisecond timestamp of the interaction.
    pub timestamp_ms: u64,
    /// The acting entity (application id, processor, or "engine").
    pub actor: String,
    /// The kind of interaction.
    pub operation: Operation,
    /// The key (or other object) touched, if any.
    pub key: Option<String>,
    /// The data subject whose personal data was touched, if known.
    pub subject: Option<String>,
    /// The declared processing purpose, if any.
    pub purpose: Option<String>,
    /// Whether the operation was allowed, denied or failed.
    pub outcome: Outcome,
    /// Free-form detail (command name, byte counts, rights-request type…).
    pub detail: String,
}

impl AuditRecord {
    /// Create a record with the required fields; optional fields start
    /// empty and can be set with the builder-style methods.
    #[must_use]
    pub fn new(timestamp_ms: u64, actor: &str, operation: Operation) -> Self {
        AuditRecord {
            sequence: 0,
            timestamp_ms,
            actor: actor.to_string(),
            operation,
            key: None,
            subject: None,
            purpose: None,
            outcome: Outcome::Allowed,
            detail: String::new(),
        }
    }

    /// Builder-style: set the key.
    #[must_use]
    pub fn key(mut self, key: &str) -> Self {
        self.key = Some(key.to_string());
        self
    }

    /// Builder-style: set the data subject.
    #[must_use]
    pub fn subject(mut self, subject: &str) -> Self {
        self.subject = Some(subject.to_string());
        self
    }

    /// Builder-style: set the processing purpose.
    #[must_use]
    pub fn purpose(mut self, purpose: &str) -> Self {
        self.purpose = Some(purpose.to_string());
        self
    }

    /// Builder-style: set the outcome.
    #[must_use]
    pub fn outcome(mut self, outcome: Outcome) -> Self {
        self.outcome = outcome;
        self
    }

    /// Builder-style: set the free-form detail.
    #[must_use]
    pub fn detail(mut self, detail: &str) -> Self {
        self.detail = detail.to_string();
        self
    }

    /// Serialize to the single-line, pipe-separated representation used in
    /// the trail files. Fields containing `|` or newlines are escaped.
    #[must_use]
    pub fn to_line(&self) -> String {
        use std::fmt::Write as _;
        // The common case has nothing to escape; only allocate when a field
        // actually contains a special character.
        fn esc(s: &str) -> std::borrow::Cow<'_, str> {
            if s.contains(['\\', '|', '\n']) {
                std::borrow::Cow::Owned(
                    s.replace('\\', "\\\\")
                        .replace('|', "\\p")
                        .replace('\n', "\\n"),
                )
            } else {
                std::borrow::Cow::Borrowed(s)
            }
        }
        let key = self.key.as_deref().unwrap_or("");
        let subject = self.subject.as_deref().unwrap_or("");
        let purpose = self.purpose.as_deref().unwrap_or("");
        let mut line = String::with_capacity(
            48 + self.actor.len() + key.len() + subject.len() + purpose.len() + self.detail.len(),
        );
        let _ = write!(
            line,
            "{}|{}|{}|{}|{}|{}|{}|{}|{}",
            self.sequence,
            self.timestamp_ms,
            esc(&self.actor),
            self.operation.as_str(),
            esc(key),
            esc(subject),
            esc(purpose),
            self.outcome.as_str(),
            esc(&self.detail),
        );
        line
    }

    /// Parse a line produced by [`Self::to_line`].
    ///
    /// Returns `None` for malformed lines (the reader surfaces that as a
    /// corruption error with context).
    #[must_use]
    pub fn from_line(line: &str) -> Option<Self> {
        fn unesc(s: &str) -> String {
            s.replace("\\n", "\n")
                .replace("\\p", "|")
                .replace("\\\\", "\\")
        }
        let parts: Vec<&str> = line.split('|').collect();
        if parts.len() != 9 {
            return None;
        }
        let opt = |s: &str| if s.is_empty() { None } else { Some(unesc(s)) };
        Some(AuditRecord {
            sequence: parts[0].parse().ok()?,
            timestamp_ms: parts[1].parse().ok()?,
            actor: unesc(parts[2]),
            operation: Operation::parse(parts[3])?,
            key: opt(parts[4]),
            subject: opt(parts[5]),
            purpose: opt(parts[6]),
            outcome: Outcome::parse(parts[7])?,
            detail: unesc(parts[8]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AuditRecord {
        AuditRecord::new(1_700_000_000_000, "ycsb-client-3", Operation::Read)
            .key("user:42:profile")
            .subject("subject-42")
            .purpose("analytics")
            .outcome(Outcome::Allowed)
            .detail("GET 118 bytes")
    }

    #[test]
    fn line_roundtrip() {
        let mut r = sample();
        r.sequence = 17;
        let parsed = AuditRecord::from_line(&r.to_line()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn roundtrip_with_escaping() {
        let mut r = sample().detail("weird|detail\nwith newline \\ and backslash");
        r.actor = "pipe|actor".to_string();
        r.sequence = 1;
        let line = r.to_line();
        assert!(!line.contains('\n'));
        assert_eq!(AuditRecord::from_line(&line).unwrap(), r);
    }

    #[test]
    fn empty_optional_fields_roundtrip_as_none() {
        let r = AuditRecord::new(5, "engine", Operation::Maintenance);
        let parsed = AuditRecord::from_line(&r.to_line()).unwrap();
        assert_eq!(parsed.key, None);
        assert_eq!(parsed.subject, None);
        assert_eq!(parsed.purpose, None);
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(AuditRecord::from_line("").is_none());
        assert!(AuditRecord::from_line("1|2|3").is_none());
        assert!(AuditRecord::from_line("x|2|a|read|||allowed|d|extra").is_none());
        assert!(AuditRecord::from_line("1|2|a|bogusop||||allowed|d").is_none());
    }

    #[test]
    fn operation_and_outcome_parse_all_variants() {
        for op in [
            Operation::Read,
            Operation::Write,
            Operation::Delete,
            Operation::ExpireUpdate,
            Operation::MetadataUpdate,
            Operation::AccessControl,
            Operation::RightsRequest,
            Operation::Maintenance,
        ] {
            assert_eq!(Operation::parse(op.as_str()), Some(op));
            assert_eq!(format!("{op}"), op.as_str());
        }
        for oc in [Outcome::Allowed, Outcome::Denied, Outcome::Failed] {
            assert_eq!(Outcome::parse(oc.as_str()), Some(oc));
        }
        assert_eq!(Operation::parse("nope"), None);
        assert_eq!(Outcome::parse("nope"), None);
    }
}
