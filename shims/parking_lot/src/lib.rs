//! Offline stand-in for `parking_lot`, backed by `std::sync` primitives.
//!
//! Exposes the poison-free `lock()` / `read()` / `write()` API the
//! workspace uses. Poisoned std locks are recovered transparently (the
//! parking_lot contract: a panicking holder does not poison the lock).

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, PoisonError};

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` cannot fail.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock whose `read()`/`write()` cannot fail.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4_000);
    }
}
