//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! Used by [`crate::kdf`] for key derivation and by the audit subsystem to
//! authenticate exported breach-notification bundles.

use crate::sha256::{Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// Incremental HMAC-SHA-256.
///
/// # Example
///
/// ```
/// use gdpr_crypto::hmac::HmacSha256;
///
/// let tag = HmacSha256::mac(b"secret key", b"message");
/// assert!(HmacSha256::verify(b"secret key", b"message", &tag));
/// assert!(!HmacSha256::verify(b"secret key", b"tampered", &tag));
/// ```
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer_key_pad: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Create a MAC instance keyed with `key` (any length).
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        // Keys longer than the block size are hashed first.
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = Sha256::digest(key);
            key_block[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut inner_key_pad = [0u8; BLOCK_LEN];
        let mut outer_key_pad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            inner_key_pad[i] = key_block[i] ^ 0x36;
            outer_key_pad[i] = key_block[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&inner_key_pad);
        HmacSha256 {
            inner,
            outer_key_pad,
        }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produce the 32-byte tag.
    #[must_use]
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key_pad);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot MAC.
    #[must_use]
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = HmacSha256::new(key);
        h.update(data);
        h.finalize()
    }

    /// Verify a tag in constant time.
    #[must_use]
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        crate::constant_time_eq(&Self::mac(key, data), tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            to_hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2: "Jefe" / "what do ya want for nothing?".
    #[test]
    fn rfc4231_case2() {
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20 bytes of 0xaa, 50 bytes of 0xdd.
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = HmacSha256::mac(&key, &data);
        assert_eq!(
            to_hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn long_key_is_hashed() {
        // Key longer than the 64-byte block must be pre-hashed; a correct
        // implementation gives the same result for the key and for nothing
        // else (sanity: differs from the short-key MAC).
        let long_key = vec![0x42u8; 100];
        let short_key = vec![0x42u8; 10];
        assert_ne!(
            HmacSha256::mac(&long_key, b"m"),
            HmacSha256::mac(&short_key, b"m")
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = HmacSha256::new(b"k");
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finalize(), HmacSha256::mac(b"k", b"hello world"));
    }

    #[test]
    fn verify_rejects_wrong_tag() {
        let tag = HmacSha256::mac(b"k", b"data");
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!HmacSha256::verify(b"k", b"data", &bad));
        assert!(!HmacSha256::verify(b"k", b"data", &tag[..31]));
    }
}
