//! A small JSON writer used for the data-portability export (Article 20).
//!
//! Article 20 requires personal data to be handed over "in a structured,
//! commonly used and machine-readable format"; JSON is the obvious choice.
//! To keep the workspace within its approved dependency set this module
//! implements the tiny subset of JSON generation the export needs (objects,
//! arrays, strings, numbers, booleans) rather than pulling in a full
//! serializer.

/// A JSON value under construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (rendered without a trailing `.0` for integers).
    Number(f64),
    /// A string (escaped on render).
    String(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for a string value.
    pub fn string(s: impl Into<String>) -> Self {
        Json::String(s.into())
    }

    /// Convenience constructor for an integer value.
    #[must_use]
    pub fn integer(value: u64) -> Self {
        Json::Number(value as f64)
    }

    /// Convenience constructor for an empty object builder.
    #[must_use]
    pub fn object() -> JsonObject {
        JsonObject { fields: Vec::new() }
    }

    /// Render to a compact JSON string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::String(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::String(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Fluent builder for JSON objects.
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    fields: Vec<(String, Json)>,
}

impl JsonObject {
    /// Add a field.
    #[must_use]
    pub fn field(mut self, key: &str, value: Json) -> Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Finish the object.
    #[must_use]
    pub fn build(self) -> Json {
        Json::Object(self.fields)
    }
}

/// Render arbitrary bytes for inclusion in an export: UTF-8 text is passed
/// through, binary data is hex-encoded with a marker prefix.
#[must_use]
pub fn bytes_to_json(bytes: &[u8]) -> Json {
    match std::str::from_utf8(bytes) {
        Ok(text) => Json::string(text),
        Err(_) => Json::string(format!("hex:{}", gdpr_crypto::sha256::to_hex(bytes))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Bool(false).render(), "false");
        assert_eq!(Json::integer(42).render(), "42");
        assert_eq!(Json::Number(1.5).render(), "1.5");
        assert_eq!(Json::string("hi").render(), "\"hi\"");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::string("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::string("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn arrays_and_objects_render() {
        let value = Json::object()
            .field("subject", Json::string("alice"))
            .field(
                "keys",
                Json::Array(vec![Json::string("k1"), Json::string("k2")]),
            )
            .field("count", Json::integer(2))
            .field("complete", Json::Bool(true))
            .build();
        assert_eq!(
            value.render(),
            "{\"subject\":\"alice\",\"keys\":[\"k1\",\"k2\"],\"count\":2,\"complete\":true}"
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Array(vec![]).render(), "[]");
        assert_eq!(Json::object().build().render(), "{}");
    }

    #[test]
    fn bytes_conversion() {
        assert_eq!(bytes_to_json(b"plain text").render(), "\"plain text\"");
        let binary = bytes_to_json(&[0xff, 0xfe, 0x00]);
        assert!(binary.render().starts_with("\"hex:"));
    }

    #[test]
    fn large_integers_keep_integer_form() {
        assert_eq!(Json::integer(1_700_000_000_000).render(), "1700000000000");
    }
}
