//! Cross-transport paged-export battery.
//!
//! The paged `GDPR.EXPORT subject CURSOR c [COUNT n]` form must produce
//! chunks whose in-order concatenation is byte-identical to the
//! monolithic export, on every path a client can reach the dispatcher:
//! in-process (core API), the simulated RESP server, and both live TCP
//! transports (reactor and thread-per-connection). Every leg loads the
//! same data under the same pinned clock, so the documents must agree
//! byte-for-byte *across* legs too.

use std::sync::Arc;

use gdpr_core::acl::Grant;
use gdpr_core::export::ExportCursor;
use gdpr_core::metadata::PersonalMetadata;
use gdpr_core::policy::CompliancePolicy;
use gdpr_core::store::{AccessContext, GdprStore};
use gdpr_server::client::TcpRemoteClient;
use gdpr_server::dispatch::Dispatcher;
use gdpr_server::tcp::{ServerConfig, TcpServer, Transport};
use kvstore::clock::SimClock;
use kvstore::config::StoreConfig;
use netsim::server::RespKvServer;
use resp::command::GdprRequest;
use resp::Frame;

const SUBJECT: &str = "alice";
const KEYS: u64 = 57;
const PAGE: u64 = 10;

fn ctx() -> AccessContext {
    AccessContext::new("app", "billing")
}

/// A compliance store with a pinned clock and a deterministic keyspace:
/// every leg of the battery gets an identical one.
fn loaded_store() -> Arc<GdprStore> {
    let store = GdprStore::open(
        CompliancePolicy::eventual(),
        StoreConfig::in_memory()
            .aof_in_memory()
            .shards(4)
            .clock(SimClock::new(1_000_000)),
        Box::new(audit::sink::NullSink::new()),
    )
    .unwrap();
    store.grant(Grant::new("app", "billing"));
    for i in 0..KEYS {
        let meta = PersonalMetadata::new(SUBJECT).with_purpose("billing");
        store
            .put(
                &ctx(),
                &format!("user:{SUBJECT}:{i:04}"),
                format!("value-{i}").into_bytes(),
                meta,
            )
            .unwrap();
    }
    Arc::new(store)
}

fn bulk(frame: Frame) -> String {
    match frame {
        Frame::Bulk(bytes) => String::from_utf8(bytes).unwrap(),
        other => panic!("expected bulk, got {other:?}"),
    }
}

/// Drive the paged export through an arbitrary frame round trip.
fn paged_via_frames(mut roundtrip: impl FnMut(Frame) -> Frame) -> String {
    let mut out = String::new();
    let mut cursor = "0".to_string();
    let mut pages = 0;
    loop {
        let reply = roundtrip(
            GdprRequest::Export {
                subject: SUBJECT.into(),
                cursor: Some(cursor),
                count: Some(PAGE),
            }
            .to_frame(),
        );
        let Frame::Array(items) = reply else {
            panic!("expected [cursor, chunk] array");
        };
        let mut items = items.into_iter();
        cursor = bulk(items.next().unwrap());
        out.push_str(&bulk(items.next().unwrap()));
        pages += 1;
        assert!(pages <= KEYS + 1, "paged export failed to terminate");
        if cursor == "0" {
            break;
        }
    }
    assert_eq!(pages, KEYS.div_ceil(PAGE));
    out
}

#[test]
fn paged_export_is_byte_identical_on_every_transport() {
    // Reference document: the in-process monolithic export.
    let reference = loaded_store()
        .right_to_portability(&ctx(), SUBJECT)
        .unwrap();
    assert!(reference.contains("\"item_count\":57"));

    // In-process paged (core API).
    {
        let store = loaded_store();
        let mut out = String::new();
        let mut cursor: Option<ExportCursor> = None;
        loop {
            let page = store
                .export_page(&ctx(), SUBJECT, cursor.as_ref(), PAGE as usize)
                .unwrap();
            out.push_str(&page.chunk);
            match page.next_cursor {
                Some(next) => cursor = Some(next),
                None => break,
            }
        }
        assert_eq!(out, reference, "in-process paged export diverged");
    }

    // Simulated RESP server (same dispatcher as TCP, no sockets).
    {
        let server = RespKvServer::gdpr(loaded_store());
        let auth = server.handle_frame(
            &GdprRequest::Auth {
                actor: "app".into(),
                purpose: "billing".into(),
            }
            .to_frame(),
        );
        assert_eq!(auth, Frame::Simple("OK".into()));
        let monolithic = bulk(
            server.handle_frame(
                &GdprRequest::Export {
                    subject: SUBJECT.into(),
                    cursor: None,
                    count: None,
                }
                .to_frame(),
            ),
        );
        assert_eq!(monolithic, reference, "netsim monolithic export diverged");
        let out = paged_via_frames(|frame| server.handle_frame(&frame));
        assert_eq!(out, reference, "netsim paged export diverged");
    }

    // Both live TCP transports.
    for transport in [Transport::Reactor, Transport::Threads] {
        let store = loaded_store();
        let config = ServerConfig {
            transport,
            ..ServerConfig::default()
        };
        let handle = TcpServer::bind(Dispatcher::gdpr(store), "127.0.0.1:0", config).unwrap();
        let mut client = TcpRemoteClient::connect(handle.local_addr()).unwrap();
        client.auth("app", "billing").unwrap();
        assert_eq!(
            client.export_subject(SUBJECT).unwrap(),
            reference,
            "{transport:?} monolithic export diverged"
        );
        assert_eq!(
            client.export_subject_paged(SUBJECT, PAGE).unwrap(),
            reference,
            "{transport:?} paged export (helper) diverged"
        );
        let out = paged_via_frames(|frame| client.roundtrip(&frame).unwrap());
        assert_eq!(out, reference, "{transport:?} paged export diverged");
        handle.shutdown();
    }
}

#[test]
fn invalid_cursor_is_rejected_on_the_wire() {
    let server = RespKvServer::gdpr(loaded_store());
    server.handle_frame(
        &GdprRequest::Auth {
            actor: "app".into(),
            purpose: "billing".into(),
        }
        .to_frame(),
    );
    let reply = server.handle_frame(
        &GdprRequest::Export {
            subject: SUBJECT.into(),
            cursor: Some("not-a-cursor".into()),
            count: None,
        }
        .to_frame(),
    );
    match reply {
        Frame::Error(message) => assert!(message.contains("invalid export cursor")),
        other => panic!("expected error frame, got {other:?}"),
    }
}
