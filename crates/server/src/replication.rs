//! Primary → replica streaming replication.
//!
//! The GDPR-critical property replication must preserve is that an
//! obligation discharged on the primary — above all an erasure — reaches
//! *every* copy of the datum: the paper's compliance costs are costs per
//! copy, and a deployment that serves reads from replicas must honor
//! `GDPR.ERASE` and retention expiry on all of them ("Analyzing the Impact
//! of GDPR on Storage Systems", §4.3). The design here leans on what the
//! journal already provides:
//!
//! * every journaled engine command carries a **global sequence number**
//!   (the per-shard AOF of PR 3), which doubles as the replication offset;
//! * a replica opens an ordinary RESP connection and sends `REPLSYNC`; the
//!   primary answers with a **full sync** — a portable snapshot blob plus
//!   the journal watermark captured atomically with it — and then *pushes*
//!   the live journal stream over the same connection (records merged by
//!   sequence across segments, exactly the linearization journal replay
//!   uses);
//! * the replica applies each record through the normal engine dispatch
//!   path (and, under the compliance layer, keeps the metadata index
//!   bracketed with the engine write via
//!   [`gdpr_core::store::GdprStore::apply_replicated`]), so an `ERASE` or
//!   an expiry `DEL` on the primary removes the value *and its metadata
//!   postings* on the replica within the propagation window;
//! * replicas serve reads and reject writes with a redirect error; their
//!   lag (primary watermark minus applied sequence) is on the wire via
//!   `INFO` and `GDPR.STATS`, and `bench repl_lag` measures the
//!   propagation window end to end.
//!
//! A primary that cannot serve a replica's cursor any more — the bounded
//! in-memory backlog was overrun, or a journal rewrite renumbered the
//! stream (epoch bump) — sends a `REPLLOST` error; the replica reconnects
//! and full-resyncs. The same recovery path covers a crashed/restarted
//! primary: the replica's connect loop retries until the primary is back,
//! then runs a fresh `REPLSYNC` against the replayed journal.

use std::io::Write;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kvstore::commands::Command;
use parking_lot::Mutex;
use resp::encode::encode_frame;
use resp::repl::{ReplFrame, REPLLOST, REPLSYNC};
use resp::Frame;

use crate::client::TcpRemoteClient;
use crate::dispatch::Dispatcher;
use crate::ServerError;

/// Most records pushed per feeder poll (bounds the burst a slow replica
/// must buffer).
const FEEDER_BATCH: usize = 512;
/// How long the feeder tolerates a sequence gap (an append that allocated
/// its sequence number but has not reached the backlog) before declaring
/// the stream lost. Gaps close in microseconds unless a writer died.
const GAP_TIMEOUT: Duration = Duration::from_secs(1);
/// Replica-side read timeout; heartbeats arrive every feeder poll, so a
/// silent stream this long means the primary is gone.
const REPLICA_READ_TIMEOUT: Duration = Duration::from_secs(2);
/// Backoff between replica reconnect attempts.
const RECONNECT_BACKOFF: Duration = Duration::from_millis(200);

/// Shared replication state of one server process: the role, the stream
/// counters, and — on a replica — the connection/lag gauges. One instance
/// is shared by the dispatcher (which renders it into `INFO` and
/// `GDPR.STATS` and enforces read-only mode), the TCP feeder threads and
/// the replica runner.
#[derive(Debug, Default)]
pub struct ReplicationState {
    is_replica: AtomicBool,
    primary_addr: Mutex<Option<String>>,
    /// Replica: currently attached to the primary's stream.
    connected: AtomicBool,
    /// Replica: highest journal sequence applied locally.
    applied_seq: AtomicU64,
    /// Replica: the primary's watermark as of the last record/heartbeat.
    primary_seq: AtomicU64,
    /// Replica: full syncs run (1 = the initial sync; more mean the stream
    /// was lost and re-established).
    full_syncs: AtomicU64,
    /// Replica: records applied from the stream.
    records_applied: AtomicU64,
    /// Primary: replicas currently attached.
    connected_replicas: AtomicUsize,
    /// Primary: records pushed to replicas (all streams summed).
    records_streamed: AtomicU64,
    /// Primary: streams terminated with `REPLLOST` (cursor unserviceable).
    lost_streams: AtomicU64,
}

/// A point-in-time copy of [`ReplicationState`] for rendering and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicationInfo {
    /// `true` when this server is a replica.
    pub is_replica: bool,
    /// The primary address a replica follows.
    pub primary_addr: Option<String>,
    /// Replica: attached to the stream right now.
    pub connected: bool,
    /// Replica: highest sequence applied locally.
    pub applied_seq: u64,
    /// Replica: the primary's watermark as last observed.
    pub primary_seq: u64,
    /// Replica: applied-vs-watermark distance in records.
    pub lag_records: u64,
    /// Replica: full syncs run.
    pub full_syncs: u64,
    /// Replica: records applied from the stream.
    pub records_applied: u64,
    /// Primary: replicas currently attached.
    pub connected_replicas: usize,
    /// Primary: records streamed to replicas.
    pub records_streamed: u64,
    /// Primary: streams terminated with `REPLLOST`.
    pub lost_streams: u64,
}

impl ReplicationState {
    /// Switch this server into replica mode, following `primary`.
    pub fn set_replica_of(&self, primary: &str) {
        *self.primary_addr.lock() = Some(primary.to_string());
        self.is_replica.store(true, Ordering::SeqCst);
    }

    /// Whether this server is a replica (writes must be redirected).
    #[must_use]
    pub fn is_replica(&self) -> bool {
        self.is_replica.load(Ordering::SeqCst)
    }

    /// The primary this replica follows, if in replica mode.
    #[must_use]
    pub fn primary_addr(&self) -> Option<String> {
        self.primary_addr.lock().clone()
    }

    /// Point-in-time copy of every gauge.
    #[must_use]
    pub fn info(&self) -> ReplicationInfo {
        let applied_seq = self.applied_seq.load(Ordering::Relaxed);
        let primary_seq = self.primary_seq.load(Ordering::Relaxed);
        ReplicationInfo {
            is_replica: self.is_replica(),
            primary_addr: self.primary_addr(),
            connected: self.connected.load(Ordering::Relaxed),
            applied_seq,
            primary_seq,
            lag_records: primary_seq.saturating_sub(applied_seq),
            full_syncs: self.full_syncs.load(Ordering::Relaxed),
            records_applied: self.records_applied.load(Ordering::Relaxed),
            connected_replicas: self.connected_replicas.load(Ordering::Relaxed),
            records_streamed: self.records_streamed.load(Ordering::Relaxed),
            lost_streams: self.lost_streams.load(Ordering::Relaxed),
        }
    }
}

/// Primary side: serve one replication stream over `stream`. Called by the
/// connection thread when it sees `REPLSYNC`; the connection belongs to
/// the stream from then on (the replica sends nothing further).
pub(crate) fn serve_stream(
    stream: &mut TcpStream,
    dispatcher: &Dispatcher,
    shutdown: &AtomicBool,
    poll: Duration,
) {
    let engine = dispatcher.raw_engine();
    let state = dispatcher.replication();
    // Register the stream FIRST: appends are only mirrored into the
    // tailing backlog while a stream is registered, and the watermark
    // below is captured under every shard lock, i.e. after registration
    // became visible to all writers. Refusing up front (no journal, or
    // backlog=0) beats handing out a cursor that can never be served —
    // that would put the replica into a full-resync storm.
    let Some(_stream_guard) = engine.begin_repl_stream() else {
        let _ = stream.write_all(&encode_frame(&Frame::Error(
            "ERR replication requires a journal with a tailing backlog (start the \
             primary with aof=mem or a path, and backlog > 0)"
                .to_string(),
        )));
        return;
    };
    let Some((snapshot, watermark)) = engine.replication_snapshot() else {
        let _ = stream.write_all(&encode_frame(&Frame::Error(
            "ERR replication requires a journal (start the primary with aof=mem or a path)"
                .to_string(),
        )));
        return;
    };
    let full_sync = ReplFrame::FullSync {
        epoch: watermark.epoch,
        last_seq: watermark.last_seq,
        snapshot,
    };
    if stream
        .write_all(&encode_frame(&full_sync.to_frame()))
        .is_err()
    {
        return;
    }

    state.connected_replicas.fetch_add(1, Ordering::SeqCst);
    let result = feed_stream(stream, dispatcher, shutdown, poll, watermark.epoch, {
        watermark.last_seq
    });
    state.connected_replicas.fetch_sub(1, Ordering::SeqCst);
    if let StreamEnd::Lost(reason) = result {
        state.lost_streams.fetch_add(1, Ordering::Relaxed);
        let _ = stream.write_all(&encode_frame(&Frame::Error(format!("{REPLLOST} {reason}"))));
    }
}

enum StreamEnd {
    /// Connection closed, server shutdown, or clean exit.
    Closed,
    /// The cursor became unserviceable; the replica must full-resync.
    Lost(&'static str),
}

fn feed_stream(
    stream: &mut TcpStream,
    dispatcher: &Dispatcher,
    shutdown: &AtomicBool,
    poll: Duration,
    epoch: u64,
    mut cursor: u64,
) -> StreamEnd {
    let engine = dispatcher.raw_engine();
    let state = dispatcher.replication();
    let mut gap_since: Option<Instant> = None;
    while !shutdown.load(Ordering::SeqCst) {
        let Some(tail) = engine.repl_tail(epoch, cursor, FEEDER_BATCH) else {
            return StreamEnd::Closed;
        };
        if tail.lost {
            return StreamEnd::Lost("cursor outran the backlog or the journal was rewritten");
        }
        if tail.records.is_empty() {
            if tail.gapped {
                let since = *gap_since.get_or_insert_with(Instant::now);
                if since.elapsed() > GAP_TIMEOUT {
                    return StreamEnd::Lost("journal sequence gap did not close");
                }
            } else {
                gap_since = None;
            }
            let heartbeat = ReplFrame::Heartbeat {
                last_seq: tail.last_seq,
            };
            if stream
                .write_all(&encode_frame(&heartbeat.to_frame()))
                .is_err()
            {
                return StreamEnd::Closed;
            }
            std::thread::sleep(poll);
            continue;
        }
        gap_since = None;
        let mut out = Vec::new();
        for (seq, record) in tail.records {
            cursor = seq;
            out.extend_from_slice(&encode_frame(
                &ReplFrame::Record {
                    seq,
                    watermark: tail.last_seq,
                    record,
                }
                .to_frame(),
            ));
            state.records_streamed.fetch_add(1, Ordering::Relaxed);
        }
        if stream.write_all(&out).is_err() {
            return StreamEnd::Closed;
        }
    }
    StreamEnd::Closed
}

/// Handle to a running replica runner; joins the thread on [`Self::stop`].
#[derive(Debug)]
pub struct ReplicaHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ReplicaHandle {
    /// Signal the runner to stop and join it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ReplicaHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// Replica side: start following `primary`. The dispatcher is switched
/// into replica mode (writes rejected with a redirect) and a background
/// thread keeps the stream alive: connect → `REPLSYNC` → apply the full
/// sync → apply records as they arrive; on any disconnect, backlog
/// overrun or journal rewrite it reconnects and full-resyncs.
#[must_use]
pub fn start_replica(dispatcher: Dispatcher, primary: &str) -> ReplicaHandle {
    dispatcher.replication().set_replica_of(primary);
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let primary = primary.to_string();
    let thread = std::thread::Builder::new()
        .name("gdpr-replica".to_string())
        .spawn(move || {
            let state = Arc::clone(dispatcher.replication());
            while !thread_stop.load(Ordering::SeqCst) {
                let _ = replicate_once(&dispatcher, &primary, &thread_stop);
                state.connected.store(false, Ordering::SeqCst);
                if thread_stop.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(RECONNECT_BACKOFF);
            }
        })
        .expect("spawn replica thread");
    ReplicaHandle {
        stop,
        thread: Some(thread),
    }
}

/// One stream lifetime: full sync, then apply until the stream ends.
fn replicate_once(dispatcher: &Dispatcher, primary: &str, stop: &AtomicBool) -> crate::Result<()> {
    let state = dispatcher.replication();
    let addr: SocketAddr = primary
        .to_socket_addrs()
        .map_err(ServerError::Io)?
        .next()
        .ok_or_else(|| ServerError::Server("primary address resolves to nothing".to_string()))?;
    let mut client = TcpRemoteClient::connect_timeout(&addr, REPLICA_READ_TIMEOUT)?;
    client.send_batch(&[Frame::command([REPLSYNC])])?;

    // Full sync: restore the snapshot, then tail from its watermark.
    let first = client.read_replies(1)?.pop().ok_or(ServerError::Closed)?;
    if let Frame::Error(message) = &first {
        return Err(ServerError::Server(message.clone()));
    }
    let ReplFrame::FullSync {
        epoch: _,
        last_seq,
        snapshot,
    } = ReplFrame::from_frame(&first)?
    else {
        return Err(ServerError::Server(
            "primary did not open with FULLSYNC".to_string(),
        ));
    };
    dispatcher
        .raw_engine()
        .restore_snapshot(&snapshot)
        .map_err(|e| ServerError::Server(e.to_string()))?;
    if let Some(gdpr) = dispatcher.gdpr_store() {
        gdpr.rebuild_index()
            .map_err(|e| ServerError::Server(e.to_string()))?;
    }
    state.applied_seq.store(last_seq, Ordering::SeqCst);
    state.primary_seq.store(last_seq, Ordering::SeqCst);
    state.full_syncs.fetch_add(1, Ordering::Relaxed);
    state.connected.store(true, Ordering::SeqCst);

    // Stream phase: apply records in sequence order as they are pushed.
    while !stop.load(Ordering::SeqCst) {
        let frame = client.read_replies(1)?.pop().ok_or(ServerError::Closed)?;
        if let Frame::Error(message) = &frame {
            // REPLLOST (and anything else fatal): reconnect + full resync.
            return Err(ServerError::Server(message.clone()));
        }
        match ReplFrame::from_frame(&frame)? {
            ReplFrame::Record {
                seq,
                watermark,
                record,
            } => {
                // Surface the primary's watermark *before* applying: lag
                // must read truthfully while a burst is still draining.
                state.primary_seq.fetch_max(watermark, Ordering::SeqCst);
                apply_record(dispatcher, &record)?;
                state.applied_seq.store(seq, Ordering::SeqCst);
                state.records_applied.fetch_add(1, Ordering::Relaxed);
            }
            ReplFrame::Heartbeat { last_seq } => {
                state.primary_seq.fetch_max(last_seq, Ordering::SeqCst);
            }
            ReplFrame::FullSync { .. } => {
                return Err(ServerError::Server(
                    "unexpected FULLSYNC mid-stream".to_string(),
                ));
            }
        }
    }
    Ok(())
}

/// Apply one streamed journal record through the normal dispatch path:
/// engine command execution, plus metadata-index maintenance under the
/// compliance layer.
fn apply_record(dispatcher: &Dispatcher, record: &[u8]) -> crate::Result<()> {
    let cmd = Command::decode(record).map_err(|e| ServerError::Server(e.to_string()))?;
    // Read-log records (the GDPR monitoring retrofit journals reads too)
    // carry no state change.
    if !cmd.is_write() {
        return Ok(());
    }
    let applied = std::time::Instant::now();
    let result = apply_write(dispatcher, cmd);
    dispatcher.metrics().record_repl_apply(applied.elapsed());
    result
}

/// The state-changing half of [`apply_record`], split out so apply time
/// (decode and read-log skips excluded) lands in the `repl_apply` stage
/// histogram.
fn apply_write(dispatcher: &Dispatcher, cmd: Command) -> crate::Result<()> {
    match dispatcher.gdpr_store() {
        Some(gdpr) => gdpr
            .apply_replicated(cmd)
            .map(|_| ())
            .map_err(|e| ServerError::Server(e.to_string())),
        None => dispatcher
            .raw_engine()
            .execute(cmd)
            .map(|_| ())
            .map_err(|e| ServerError::Server(e.to_string())),
    }
}
