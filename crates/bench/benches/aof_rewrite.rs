//! Ablation: AOF rewrite (compaction) cost — the mechanism that finally
//! scrubs deleted personal data from persistent media (§4.3 of the paper),
//! and the trade-off between per-deletion compaction and periodic
//! compaction (DESIGN.md §5.5).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kvstore::config::StoreConfig;
use kvstore::store::KvStore;

/// Build an engine whose AOF holds `live` live keys plus `stale` records of
/// overwritten/deleted data.
fn store_with_history(live: usize, stale: usize) -> KvStore {
    let store = KvStore::open(StoreConfig::in_memory().aof_in_memory()).unwrap();
    for i in 0..live {
        store.set(&format!("live{i:06}"), vec![0u8; 100]).unwrap();
    }
    for i in 0..stale {
        let key = format!("stale{:06}", i % (live.max(1)));
        store.set(&key, vec![1u8; 100]).unwrap();
        store.delete(&key).unwrap();
    }
    store
}

fn bench_rewrite(c: &mut Criterion) {
    let mut group = c.benchmark_group("aof_rewrite");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    for &(live, stale) in &[(1_000usize, 1_000usize), (1_000, 10_000), (10_000, 10_000)] {
        group.bench_with_input(
            BenchmarkId::new("rewrite", format!("{live}live_{stale}stale")),
            &(live, stale),
            |b, &(live, stale)| {
                b.iter_batched(
                    || store_with_history(live, stale),
                    |store| store.rewrite_aof().unwrap(),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }

    // Per-deletion scrubbing vs deferred compaction: delete 100 keys out of
    // 1000 either rewriting after every delete or once at the end.
    group.bench_function("scrub_per_delete_100", |b| {
        b.iter_batched(
            || store_with_history(1_000, 0),
            |store| {
                for i in 0..100 {
                    store.delete(&format!("live{i:06}")).unwrap();
                    store.rewrite_aof().unwrap();
                }
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("scrub_once_after_100_deletes", |b| {
        b.iter_batched(
            || store_with_history(1_000, 0),
            |store| {
                for i in 0..100 {
                    store.delete(&format!("live{i:06}")).unwrap();
                }
                store.rewrite_aof().unwrap();
            },
            criterion::BatchSize::LargeInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_rewrite);
criterion_main!(benches);
