//! Point-in-time snapshots (the RDB analogue).
//!
//! A snapshot captures every key, its value and its expiration deadline.
//! The engine uses snapshots for two things: explicit persistence
//! (`SAVE`-style), and as the surviving-state source for AOF rewrites
//! (`BGREWRITEAOF` regenerates the log from the live dataset, which is also
//! the moment deleted personal data finally disappears from persistent
//! media — the §4.3 discussion of the paper).

use crate::commands::Command;
use crate::db::Db;
use crate::serialize::{decode_value, encode_value, put_str, put_u64, Reader};
use crate::{Result, StoreError};

/// File-format magic for snapshots.
const MAGIC: &[u8; 8] = b"GDPRKV01";

/// Serialize the whole keyspace (including TTL deadlines) to bytes.
#[must_use]
pub fn save_to_bytes(db: &Db) -> Vec<u8> {
    save_shards_to_bytes(&[db])
}

/// Serialize a sharded keyspace to one snapshot blob. The format is
/// identical to the single-shard one (shard layout is a runtime choice, so
/// a snapshot taken at one shard count loads at any other).
#[must_use]
pub fn save_shards_to_bytes(dbs: &[&Db]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    let total: usize = dbs.iter().map(|db| db.len()).sum();
    put_u64(&mut out, total as u64);
    for db in dbs {
        for (key, object) in db.iter() {
            put_str(&mut out, key);
            match db.expire_deadline(key) {
                Some(at) => {
                    out.push(1);
                    put_u64(&mut out, at);
                }
                None => out.push(0),
            }
            encode_value(&mut out, &object.value);
        }
    }
    out
}

/// Regenerate the minimal command stream that reproduces `db`'s live
/// dataset — the source material for an AOF rewrite (`BGREWRITEAOF`
/// regenerates each shard's journal segment from this, which is the moment
/// deleted personal data finally disappears from persistent media).
#[must_use]
pub fn rewrite_commands(db: &Db) -> Vec<Command> {
    let mut commands = Vec::new();
    for (key, object) in db.iter() {
        match &object.value {
            crate::object::Value::Str(b) => {
                commands.push(Command::Set {
                    key: key.clone(),
                    value: b.clone(),
                });
            }
            crate::object::Value::Hash(map) => {
                commands.push(Command::HSetMulti {
                    key: key.clone(),
                    fields: map.clone(),
                });
            }
            crate::object::Value::List(items) => {
                // Lists are journaled as a hash of index → element;
                // adequate for recovery purposes in this engine.
                let fields = items
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (format!("{i:020}"), v.clone()))
                    .collect();
                commands.push(Command::HSetMulti {
                    key: key.clone(),
                    fields,
                });
            }
            crate::object::Value::Set(members) => {
                for member in members {
                    commands.push(Command::SAdd {
                        key: key.clone(),
                        member: member.clone(),
                    });
                }
            }
        }
        if let Some(at) = db.expire_deadline(key) {
            commands.push(Command::ExpireAt {
                key: key.clone(),
                at_ms: at,
            });
        }
    }
    commands
}

/// Load a snapshot produced by [`save_to_bytes`] into `db`, replacing its
/// current contents.
///
/// # Errors
///
/// Returns [`StoreError::Corrupt`] if the snapshot is malformed.
pub fn load_from_bytes(db: &mut Db, bytes: &[u8]) -> Result<()> {
    load_into_shards(&mut [db], |_| 0, bytes)
}

/// Load a snapshot into a sharded keyspace, routing every key to its
/// owning shard via `route`. Replaces the current contents of every shard.
///
/// # Errors
///
/// Returns [`StoreError::Corrupt`] if the snapshot is malformed.
pub fn load_into_shards<F>(dbs: &mut [&mut Db], route: F, bytes: &[u8]) -> Result<()>
where
    F: Fn(&str) -> usize,
{
    const CTX: &str = "snapshot";
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(StoreError::Corrupt {
            context: CTX,
            detail: "bad magic".to_string(),
        });
    }
    let mut reader = Reader::new(&bytes[MAGIC.len()..]);
    let count = reader.get_u64(CTX)?;
    for db in dbs.iter_mut() {
        db.flush_all();
    }
    for _ in 0..count {
        let key = reader.get_str(CTX)?;
        let has_expiry = reader.get_u8(CTX)? == 1;
        let deadline = if has_expiry {
            Some(reader.get_u64(CTX)?)
        } else {
            None
        };
        let value = decode_value(&mut reader, CTX)?;
        let db = &mut dbs[route(&key)];
        db.set_value(&key, value);
        if let Some(at) = deadline {
            db.expire_at(&key, at);
        }
    }
    if !reader.is_at_end() {
        return Err(StoreError::Corrupt {
            context: CTX,
            detail: format!("{} trailing bytes", reader.remaining()),
        });
    }
    for db in dbs.iter_mut() {
        db.reset_dirty();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use std::sync::Arc;

    fn db_with_clock() -> (Db, SimClock) {
        let clock = SimClock::new(10_000);
        (Db::new(Arc::new(clock.clone())), clock)
    }

    #[test]
    fn roundtrip_preserves_values_and_ttls() {
        let (mut db, _) = db_with_clock();
        db.set("plain", b"value".to_vec());
        db.set("with-ttl", b"expiring".to_vec());
        db.expire_at("with-ttl", 99_000);
        db.hset("hash", "f", b"v".to_vec()).unwrap();
        db.sadd("set", b"m".to_vec()).unwrap();

        let bytes = save_to_bytes(&db);

        let (mut restored, _) = db_with_clock();
        load_from_bytes(&mut restored, &bytes).unwrap();
        assert_eq!(restored.len(), 4);
        assert_eq!(restored.get("plain").unwrap(), Some(b"value".to_vec()));
        assert_eq!(restored.expire_deadline("with-ttl"), Some(99_000));
        assert_eq!(restored.expire_deadline("plain"), None);
        assert_eq!(restored.hget("hash", "f").unwrap(), Some(b"v".to_vec()));
        assert_eq!(restored.smembers("set").unwrap().len(), 1);
    }

    #[test]
    fn load_replaces_existing_content() {
        let (mut source, _) = db_with_clock();
        source.set("only-key", b"v".to_vec());
        let bytes = save_to_bytes(&source);

        let (mut target, _) = db_with_clock();
        target.set("stale", b"old".to_vec());
        load_from_bytes(&mut target, &bytes).unwrap();
        assert!(!target.exists("stale"));
        assert!(target.exists("only-key"));
    }

    #[test]
    fn empty_db_roundtrip() {
        let (db, _) = db_with_clock();
        let bytes = save_to_bytes(&db);
        let (mut restored, _) = db_with_clock();
        restored.set("x", b"y".to_vec());
        load_from_bytes(&mut restored, &bytes).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let (mut db, _) = db_with_clock();
        assert!(load_from_bytes(&mut db, b"NOTMAGIC\0\0\0\0").is_err());
        assert!(load_from_bytes(&mut db, b"").is_err());
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let (mut db, _) = db_with_clock();
        db.set("key", b"value".to_vec());
        let bytes = save_to_bytes(&db);
        let (mut target, _) = db_with_clock();
        assert!(load_from_bytes(&mut target, &bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let (db, _) = db_with_clock();
        let mut bytes = save_to_bytes(&db);
        bytes.push(0xde);
        let (mut target, _) = db_with_clock();
        assert!(load_from_bytes(&mut target, &bytes).is_err());
    }
}
