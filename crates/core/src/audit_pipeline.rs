//! Per-shard buffered audit emission.
//!
//! The paper's monitoring retrofit (§4.1) funnels every interaction into
//! one log — which, naively shared, would re-serialize the sharded engine
//! on its hottest path. [`AuditPipeline`] keeps the single [`AuditLog`]
//! (sequence numbers and the tamper-evident hash chain need one writer)
//! but puts a small per-shard buffer in front of it:
//!
//! * under **real-time** compliance ([`crate::policy::ResponseMode::is_real_time`]) every
//!   record still goes straight to the log — durability before
//!   acknowledgement is the whole point of that policy, and the cost is
//!   what Figure 1 measures;
//! * under **eventual** compliance a record is appended to its shard's
//!   buffer (shard-local lock only) and the log is only touched when the
//!   buffer fills, on the periodic [`AuditPipeline::flush`] from `tick`,
//!   or when the trail is read back — so the loss window stays bounded by
//!   `MAX_BUFFERED_PER_SHARD` records per shard plus the flush policy's
//!   own window, which is exactly the "bounded lag" the eventual end of
//!   the compliance spectrum admits.

use audit::log::{AuditLog, AuditLogStats};
use audit::record::AuditRecord;
use audit::sink::SinkStats;
use parking_lot::Mutex;

/// Cap on records parked in one shard's buffer before it drains into the
/// log (bounds the evidence-loss window of eventual compliance).
pub const MAX_BUFFERED_PER_SHARD: usize = 128;

/// The sharded front of the audit trail.
#[derive(Debug)]
pub struct AuditPipeline {
    log: Mutex<AuditLog>,
    buffers: Vec<Mutex<Vec<AuditRecord>>>,
    real_time: bool,
}

impl AuditPipeline {
    /// Build a pipeline over `log` with one buffer per engine shard.
    /// `real_time` short-circuits buffering entirely.
    #[must_use]
    pub fn new(log: AuditLog, shards: usize, real_time: bool) -> Self {
        AuditPipeline {
            log: Mutex::new(log),
            buffers: (0..shards.max(1)).map(|_| Mutex::new(Vec::new())).collect(),
            real_time,
        }
    }

    /// Record one interaction, routed through the shard's buffer unless the
    /// policy is real-time. Recording into a buffer cannot fail; sink
    /// errors surface on flush.
    pub fn emit(&self, shard: usize, record: AuditRecord) {
        if self.real_time {
            let _ = self.log.lock().record(record);
            return;
        }
        let drained = {
            let mut buffer = self.buffers[shard % self.buffers.len()].lock();
            buffer.push(record);
            if buffer.len() >= MAX_BUFFERED_PER_SHARD {
                Some(std::mem::take(&mut *buffer))
            } else {
                None
            }
        };
        if let Some(records) = drained {
            self.append_batch(records);
        }
    }

    fn append_batch(&self, records: Vec<AuditRecord>) {
        if records.is_empty() {
            return;
        }
        // Lock order: a shard buffer is never held while taking the log
        // lock with another buffer lock outstanding; batches are handed
        // over after the buffer guard drops.
        let mut log = self.log.lock();
        for record in records {
            let _ = log.record(record);
        }
    }

    /// Move every buffered record into the log (assigning sequence numbers
    /// and chain digests) without forcing a sink flush.
    pub fn drain(&self) {
        for buffer in &self.buffers {
            let records = std::mem::take(&mut *buffer.lock());
            self.append_batch(records);
        }
    }

    /// Drain all buffers and flush the log to its sink.
    ///
    /// # Errors
    ///
    /// Propagates sink errors.
    pub fn flush(&self) -> audit::Result<()> {
        self.drain();
        self.log.lock().flush()
    }

    /// Digest of the chain tip (drains first so the tip covers everything
    /// emitted so far), if chaining is enabled.
    #[must_use]
    pub fn chain_tip(&self) -> Option<String> {
        self.drain();
        self.log.lock().chain_tip()
    }

    /// Log counters (drains first so `records` reflects emissions).
    #[must_use]
    pub fn log_stats(&self) -> AuditLogStats {
        self.drain();
        self.log.lock().stats()
    }

    /// Counters of the underlying sink.
    #[must_use]
    pub fn sink_stats(&self) -> SinkStats {
        self.log.lock().sink_stats()
    }

    /// Records currently parked in shard buffers (not yet in the log).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buffers.iter().map(|b| b.lock().len()).sum()
    }
}

impl Drop for AuditPipeline {
    fn drop(&mut self) {
        // Best-effort: push parked evidence into the log; the log's own
        // Drop then flushes it to the sink.
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audit::policy::FlushPolicy;
    use audit::record::Operation;
    use audit::sink::MemorySink;

    fn record(ts: u64) -> AuditRecord {
        AuditRecord::new(ts, "tester", Operation::Read).key("k")
    }

    #[test]
    fn real_time_pipeline_writes_through() {
        let sink = MemorySink::new();
        let view = sink.share();
        let pipeline = AuditPipeline::new(
            AuditLog::new(Box::new(sink), FlushPolicy::Synchronous),
            4,
            true,
        );
        pipeline.emit(0, record(1));
        pipeline.emit(3, record(2));
        assert_eq!(
            view.lines().len(),
            2,
            "real-time records are durable immediately"
        );
        assert_eq!(pipeline.buffered(), 0);
    }

    #[test]
    fn eventual_pipeline_buffers_until_flush() {
        let sink = MemorySink::new();
        let view = sink.share();
        let pipeline = AuditPipeline::new(
            AuditLog::new(Box::new(sink), FlushPolicy::Batched { max_records: 1_000 }),
            4,
            false,
        );
        for i in 0..10 {
            pipeline.emit(i % 4, record(i as u64));
        }
        assert_eq!(pipeline.buffered(), 10);
        assert_eq!(view.lines().len(), 0);
        pipeline.flush().unwrap();
        assert_eq!(pipeline.buffered(), 0);
        assert_eq!(view.lines().len(), 10);
    }

    #[test]
    fn full_buffer_drains_itself() {
        let sink = MemorySink::new();
        let pipeline = AuditPipeline::new(
            AuditLog::new(
                Box::new(sink),
                FlushPolicy::Batched {
                    max_records: 10_000,
                },
            ),
            1,
            false,
        );
        for i in 0..MAX_BUFFERED_PER_SHARD as u64 + 5 {
            pipeline.emit(0, record(i));
        }
        assert!(
            pipeline.buffered() < MAX_BUFFERED_PER_SHARD,
            "hitting the cap must hand the batch to the log"
        );
        assert_eq!(
            pipeline.log_stats().records,
            MAX_BUFFERED_PER_SHARD as u64 + 5
        );
    }

    #[test]
    fn chain_stays_verifiable_across_buffered_emission() {
        let sink = MemorySink::new();
        let view = sink.share();
        let pipeline = AuditPipeline::new(
            AuditLog::new(Box::new(sink), FlushPolicy::Batched { max_records: 1_000 }),
            4,
            false,
        );
        for i in 0..20 {
            pipeline.emit(i % 4, record(i as u64));
        }
        let tip = pipeline.chain_tip().unwrap();
        assert!(!tip.is_empty());
        pipeline.flush().unwrap();
        let parsed = audit::reader::parse_trail(&view.lines().join("\n")).unwrap();
        audit::reader::verify_trail(&parsed).unwrap();
    }
}
