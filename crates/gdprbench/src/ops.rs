//! The op/outcome model and the seeded, deterministic generator.
//!
//! [`load_ops`] and [`transaction_ops`] are pure functions of a
//! [`BenchSpec`]: same spec ⇒ byte-identical op stream, with subject
//! popularity following the same Zipfian skew YCSB uses (a few hot
//! subjects own most of the rights traffic, the long tail is cold).
//! Shard counts and transports are deliberately absent from the
//! signatures — they can only *route* ops, never change them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ycsb::generator::{NumberGenerator, ZipfianGenerator};

use crate::spec::{BenchSpec, Role, LOAD_PURPOSE, PURPOSE_POOL};

/// FNV-1a over a byte string — used to derive phase- and role-distinct
/// sub-seeds from the master seed (ycsb's `fnv1a_64` hashes integers).
fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One GDPRbench operation, transport-agnostic. The wire mapping lives in
/// [`crate::client`]; every op has an exact `GDPR.*` (or plain `GET`)
/// command form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GdprOp {
    /// Store a value with its metadata (`GDPR.PUT`).
    Put {
        /// Key to write.
        key: String,
        /// Owning data subject.
        subject: String,
        /// Whitelisted purposes.
        purposes: Vec<String>,
        /// Value payload.
        value: Vec<u8>,
    },
    /// Purpose-checked data read (plain `GET` on the compliance engine).
    Read {
        /// Key to read.
        key: String,
    },
    /// Metadata shadow-record read (`GDPR.GETMETA`).
    GetMeta {
        /// Key whose metadata is read.
        key: String,
    },
    /// Metadata replacement — a purpose re-stamp (`GDPR.SETMETA`).
    SetMeta {
        /// Key whose metadata is replaced.
        key: String,
        /// The (unchanged) owning subject.
        subject: String,
        /// The new purpose whitelist.
        purposes: Vec<String>,
    },
    /// Subject-to-keys fan-out (`GDPR.KEYSOF`, the Art. 15 lookup).
    KeysOf {
        /// The data subject.
        subject: String,
    },
    /// Portability export (`GDPR.EXPORT`, Art. 20).
    Export {
        /// The data subject.
        subject: String,
    },
    /// Right to be forgotten (`GDPR.ERASE`, Art. 17).
    Erase {
        /// The data subject.
        subject: String,
    },
    /// Objection to a processing purpose (`GDPR.OBJECT`, Art. 21).
    Object {
        /// The objecting subject.
        subject: String,
        /// The purpose objected to.
        purpose: String,
    },
    /// Compliance-counter query (`GDPR.STATS`).
    Stats,
}

impl GdprOp {
    /// The right/op label the per-right latency histograms key on.
    #[must_use]
    pub fn right(&self) -> &'static str {
        match self {
            GdprOp::Put { .. } => "put",
            GdprOp::Read { .. } => "read",
            GdprOp::GetMeta { .. } => "getmeta",
            GdprOp::SetMeta { .. } => "setmeta",
            GdprOp::KeysOf { .. } => "keysof",
            GdprOp::Export { .. } => "export",
            GdprOp::Erase { .. } => "erase",
            GdprOp::Object { .. } => "object",
            GdprOp::Stats => "stats",
        }
    }
}

/// The semantically comparable result of one op, uniform across
/// transports. `Ok` carries a small integer summary (keys found, keys
/// erased, export bytes, found/missing flags) so two transport legs can be
/// compared op-by-op, not just error-by-error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The op succeeded; the payload summarises its observable result.
    Ok(u64),
    /// The compliance layer refused the op (access control, purpose
    /// limitation, location policy, or a missing session).
    Denied,
    /// The op failed for a non-compliance reason (missing key, transport
    /// or storage error).
    Failed,
}

impl Outcome {
    /// Whether this outcome is a compliance denial.
    #[must_use]
    pub fn is_denied(self) -> bool {
        matches!(self, Outcome::Denied)
    }

    /// Whether this outcome is a non-compliance failure.
    #[must_use]
    pub fn is_failed(self) -> bool {
        matches!(self, Outcome::Failed)
    }
}

/// Canonical subject name for subject index `i`.
#[must_use]
pub fn subject_name(i: u64) -> String {
    format!("subject{i:06}")
}

/// Canonical key name for record `k` of subject `i`.
#[must_use]
pub fn key_name(subject: u64, k: u64) -> String {
    format!("user{subject:06}:k{k:04}")
}

/// The purpose whitelist stamped on a freshly loaded record: always the
/// loader's purpose, then a seeded subset of [`PURPOSE_POOL`] — most
/// records are processable (`processing`), fewer allow `analytics`, few
/// allow `marketing`.
fn record_purposes(rng: &mut StdRng) -> Vec<String> {
    let mut purposes = vec![LOAD_PURPOSE.to_string()];
    let weights = [0.80, 0.50, 0.20];
    for (purpose, &p) in PURPOSE_POOL.iter().zip(weights.iter()) {
        if rng.gen_bool(p) {
            purposes.push((*purpose).to_string());
        }
    }
    purposes
}

/// Deterministic value payload for a record (no RNG: the bytes identify
/// the record, which makes cross-transport mismatches easy to localise).
fn record_value(subject: u64, k: u64, len: usize) -> Vec<u8> {
    let tag = format!("s{subject:06}k{k:04}:");
    let mut value = Vec::with_capacity(len.max(tag.len()));
    value.extend_from_slice(tag.as_bytes());
    while value.len() < len {
        value.push(b'a' + ((subject + k + value.len() as u64) % 26) as u8);
    }
    value.truncate(len.max(tag.len()));
    value
}

/// Expand the load phase: one `Put` per record, subjects in order, with
/// seeded purpose stamping. Pure in the spec.
#[must_use]
pub fn load_ops(spec: &BenchSpec) -> Vec<GdprOp> {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ fnv1a_bytes(b"gdprbench-load"));
    let mut ops = Vec::with_capacity(spec.record_count() as usize);
    for s in 0..spec.subjects {
        for k in 0..spec.keys_per_subject {
            ops.push(GdprOp::Put {
                key: key_name(s, k),
                subject: subject_name(s),
                purposes: record_purposes(&mut rng),
                value: record_value(s, k, spec.value_len),
            });
        }
    }
    ops
}

/// Expand the transaction phase for the spec's role: `operation_count`
/// ops drawn from the role's mix, subject choice Zipfian-skewed. Pure in
/// the spec.
#[must_use]
pub fn transaction_ops(spec: &BenchSpec) -> Vec<GdprOp> {
    let mut rng = StdRng::seed_from_u64(
        spec.seed ^ fnv1a_bytes(spec.role.name().as_bytes()) ^ fnv1a_bytes(b"gdprbench-txn"),
    );
    let mut zipf = ZipfianGenerator::new(spec.subjects);
    let mut ops = Vec::with_capacity(spec.operation_count as usize);
    for _ in 0..spec.operation_count {
        let s = zipf.next_value(&mut rng);
        ops.push(next_op(spec, &mut rng, s));
    }
    ops
}

/// Draw one op for `subject` from the role's mix.
fn next_op(spec: &BenchSpec, rng: &mut StdRng, s: u64) -> GdprOp {
    let subject = subject_name(s);
    let key_of = |rng: &mut StdRng, s: u64| key_name(s, rng.gen_range(0..spec.keys_per_subject));
    let percent = rng.gen_range(0u32..100);
    match spec.role {
        // Rights requests over the subject's own data. Erasure is rare but
        // present: a hot subject disappearing mid-run is exactly the
        // scenario the suite must keep deterministic.
        Role::Customer => match percent {
            0..=29 => GdprOp::KeysOf { subject },
            30..=54 => GdprOp::Export { subject },
            55..=79 => GdprOp::GetMeta {
                key: key_of(rng, s),
            },
            80..=94 => GdprOp::Object {
                subject,
                purpose: PURPOSE_POOL[rng.gen_range(0..PURPOSE_POOL.len())].to_string(),
            },
            _ => GdprOp::Erase { subject },
        },
        // Metadata curation: purpose re-stamps and fresh writes. Every new
        // whitelist contains the controller's own purpose (a controller
        // cannot stamp metadata it could not itself operate under).
        Role::Controller => match percent {
            0..=44 => GdprOp::SetMeta {
                key: key_of(rng, s),
                subject,
                purposes: restamp_purposes(rng),
            },
            45..=74 => GdprOp::GetMeta {
                key: key_of(rng, s),
            },
            _ => GdprOp::Put {
                key: key_of(rng, s),
                subject,
                purposes: restamp_purposes(rng),
                value: record_value(s, rng.gen_range(0..spec.keys_per_subject), spec.value_len),
            },
        },
        // The data plane: purpose-checked reads, with a sprinkle of
        // metadata lookups (a processor verifying what it may do).
        Role::Processor => match percent {
            0..=89 => GdprOp::Read {
                key: key_of(rng, s),
            },
            _ => GdprOp::GetMeta {
                key: key_of(rng, s),
            },
        },
        // Audit sweeps: who holds what, under which purposes, plus
        // compliance-counter reads.
        Role::Regulator => match percent {
            0..=39 => GdprOp::KeysOf { subject },
            40..=64 => GdprOp::GetMeta {
                key: key_of(rng, s),
            },
            65..=84 => GdprOp::Export { subject },
            _ => GdprOp::Stats,
        },
    }
}

/// A controller re-stamp whitelist: loader + controller purposes always,
/// plus a seeded subset of the pool.
fn restamp_purposes(rng: &mut StdRng) -> Vec<String> {
    let mut purposes = vec![
        LOAD_PURPOSE.to_string(),
        Role::Controller.purpose().to_string(),
    ];
    let weights = [0.70, 0.40, 0.10];
    for (purpose, &p) in PURPOSE_POOL.iter().zip(weights.iter()) {
        if rng.gen_bool(p) {
            purposes.push((*purpose).to_string());
        }
    }
    purposes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(role: Role) -> BenchSpec {
        BenchSpec::new(role, 20, 4, 500).seed(7)
    }

    #[test]
    fn generation_is_deterministic() {
        for role in Role::all() {
            assert_eq!(load_ops(&spec(role)), load_ops(&spec(role)));
            assert_eq!(transaction_ops(&spec(role)), transaction_ops(&spec(role)));
        }
    }

    #[test]
    fn load_covers_every_record_once() {
        let s = spec(Role::Processor);
        let ops = load_ops(&s);
        assert_eq!(ops.len() as u64, s.record_count());
        let mut keys: Vec<&str> = ops
            .iter()
            .map(|op| match op {
                GdprOp::Put { key, .. } => key.as_str(),
                other => panic!("load phase generated {other:?}"),
            })
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len() as u64, s.record_count());
    }

    #[test]
    fn every_loaded_record_whitelists_the_loader() {
        for op in load_ops(&spec(Role::Customer)) {
            let GdprOp::Put { purposes, .. } = op else {
                unreachable!()
            };
            assert!(purposes.iter().any(|p| p == LOAD_PURPOSE));
        }
    }

    #[test]
    fn roles_generate_their_signature_ops() {
        let rights: std::collections::BTreeSet<&'static str> =
            transaction_ops(&spec(Role::Customer))
                .iter()
                .map(GdprOp::right)
                .collect();
        assert!(rights.contains("keysof") && rights.contains("export"));
        let rights: std::collections::BTreeSet<&'static str> =
            transaction_ops(&spec(Role::Processor))
                .iter()
                .map(GdprOp::right)
                .collect();
        assert!(rights.contains("read"));
        assert!(!rights.contains("erase"), "processors never erase");
    }

    #[test]
    fn zipfian_skew_concentrates_on_hot_subjects() {
        let s = BenchSpec::new(Role::Regulator, 100, 2, 4_000).seed(11);
        let hot = transaction_ops(&s)
            .iter()
            .filter(|op| match op {
                GdprOp::KeysOf { subject } | GdprOp::Export { subject } => {
                    subject == &subject_name(0)
                }
                _ => false,
            })
            .count();
        // Under uniform choice subject 0 would see ~1% of the fan-outs;
        // Zipfian at theta=0.99 gives it well over 5x that.
        assert!(hot > 120, "hot subject saw only {hot} fan-outs");
    }
}
