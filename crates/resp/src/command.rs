//! Command framing on top of RESP arrays.
//!
//! Redis clients send every command as an array of bulk strings
//! (`*3\r\n$3\r\nSET\r\n…`). [`WireCommand`] is that representation with
//! the command name normalised to upper case; the `netsim` server maps it
//! onto the engine's typed command set.

use crate::{Frame, RespError};

/// A client command as it appears on the wire: a name and raw arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireCommand {
    /// Upper-cased command name (`SET`, `GET`, `HGETALL`, …).
    pub name: String,
    /// Raw arguments, in order, excluding the name.
    pub args: Vec<Vec<u8>>,
}

impl WireCommand {
    /// Build a command from name and arguments.
    pub fn new(name: &str, args: Vec<Vec<u8>>) -> Self {
        WireCommand {
            name: name.to_ascii_uppercase(),
            args,
        }
    }

    /// Parse a decoded RESP frame into a command.
    ///
    /// # Errors
    ///
    /// Returns [`RespError::InvalidCommand`] if the frame is not a
    /// non-empty array of bulk strings.
    pub fn from_frame(frame: &Frame) -> Result<Self, RespError> {
        let Frame::Array(items) = frame else {
            return Err(RespError::InvalidCommand(
                "command must be an array".to_string(),
            ));
        };
        if items.is_empty() {
            return Err(RespError::InvalidCommand("empty command array".to_string()));
        }
        let mut parts = Vec::with_capacity(items.len());
        for item in items {
            match item {
                Frame::Bulk(b) => parts.push(b.clone()),
                Frame::Simple(s) => parts.push(s.clone().into_bytes()),
                other => {
                    return Err(RespError::InvalidCommand(format!(
                        "command arguments must be bulk strings, got {other:?}"
                    )))
                }
            }
        }
        let name_bytes = parts.remove(0);
        let name = String::from_utf8(name_bytes).map_err(|_| {
            RespError::InvalidCommand("command name is not valid utf-8".to_string())
        })?;
        Ok(WireCommand {
            name: name.to_ascii_uppercase(),
            args: parts,
        })
    }

    /// Encode the command back into a RESP array frame.
    #[must_use]
    pub fn to_frame(&self) -> Frame {
        let mut items = Vec::with_capacity(self.args.len() + 1);
        items.push(Frame::Bulk(self.name.clone().into_bytes()));
        items.extend(self.args.iter().cloned().map(Frame::Bulk));
        Frame::Array(items)
    }

    /// Number of arguments (excluding the command name).
    #[must_use]
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Argument `i` interpreted as UTF-8.
    ///
    /// # Errors
    ///
    /// Returns [`RespError::InvalidCommand`] if the argument is missing or
    /// not valid UTF-8.
    pub fn arg_str(&self, i: usize) -> Result<&str, RespError> {
        let bytes = self.args.get(i).ok_or_else(|| {
            RespError::InvalidCommand(format!("{} missing argument {i}", self.name))
        })?;
        std::str::from_utf8(bytes).map_err(|_| {
            RespError::InvalidCommand(format!("{} argument {i} is not utf-8", self.name))
        })
    }

    /// Argument `i` interpreted as an unsigned integer.
    ///
    /// # Errors
    ///
    /// Returns [`RespError::InvalidCommand`] if the argument is missing or
    /// not a number.
    pub fn arg_u64(&self, i: usize) -> Result<u64, RespError> {
        self.arg_str(i)?.parse::<u64>().map_err(|_| {
            RespError::InvalidCommand(format!("{} argument {i} is not an integer", self.name))
        })
    }

    /// Raw bytes of argument `i`.
    ///
    /// # Errors
    ///
    /// Returns [`RespError::InvalidCommand`] if the argument is missing.
    pub fn arg_bytes(&self, i: usize) -> Result<&[u8], RespError> {
        self.args
            .get(i)
            .map(Vec::as_slice)
            .ok_or_else(|| RespError::InvalidCommand(format!("{} missing argument {i}", self.name)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_command() {
        let frame = Frame::command(["set", "key", "value"]);
        let cmd = WireCommand::from_frame(&frame).unwrap();
        assert_eq!(cmd.name, "SET");
        assert_eq!(cmd.arity(), 2);
        assert_eq!(cmd.arg_str(0).unwrap(), "key");
        assert_eq!(cmd.arg_bytes(1).unwrap(), b"value");
    }

    #[test]
    fn roundtrip_to_frame() {
        let cmd = WireCommand::new("hset", vec![b"h".to_vec(), b"f".to_vec(), b"v".to_vec()]);
        let frame = cmd.to_frame();
        let parsed = WireCommand::from_frame(&frame).unwrap();
        assert_eq!(parsed, cmd);
        assert_eq!(parsed.name, "HSET");
    }

    #[test]
    fn numeric_arguments() {
        let cmd = WireCommand::new("PEXPIRE", vec![b"k".to_vec(), b"5000".to_vec()]);
        assert_eq!(cmd.arg_u64(1).unwrap(), 5000);
        assert!(cmd.arg_u64(0).is_err(), "non-numeric argument");
        assert!(cmd.arg_u64(5).is_err(), "missing argument");
    }

    #[test]
    fn rejects_non_array_and_empty() {
        assert!(WireCommand::from_frame(&Frame::Integer(1)).is_err());
        assert!(WireCommand::from_frame(&Frame::Array(vec![])).is_err());
        assert!(WireCommand::from_frame(&Frame::Array(vec![Frame::Integer(3)])).is_err());
    }

    #[test]
    fn simple_string_arguments_accepted() {
        let frame = Frame::Array(vec![Frame::Simple("PING".into())]);
        let cmd = WireCommand::from_frame(&frame).unwrap();
        assert_eq!(cmd.name, "PING");
        assert_eq!(cmd.arity(), 0);
    }
}
