//! Generator determinism (satellite of the GDPRbench suite).
//!
//! Property 1: a [`BenchSpec`] expands to exactly the same op stream every
//! time — generation is a pure function of (seed, config).
//!
//! Property 2: shard count never changes the workload. The spec has no
//! shard field *by construction*, so the proof obligation is about the
//! run, not the stream: driving the identical stream against stores with
//! different shard counts yields identical per-op outcomes and identical
//! final state digests — sharding routes, it never reorders or rewrites.

use std::sync::Arc;

use gdpr_storage::gdpr_core::acl::Grant;
use gdpr_storage::gdpr_core::policy::CompliancePolicy;
use gdpr_storage::gdpr_core::store::GdprStore;
use gdpr_storage::gdpr_server::dispatch::Dispatcher;
use gdpr_storage::gdprbench::ops::{load_ops, transaction_ops};
use gdpr_storage::gdprbench::{BenchSpec, InProcessFactory, Role, Runner};
use gdpr_storage::kvstore::clock::SimClock;
use gdpr_storage::kvstore::config::StoreConfig;
use proptest::prelude::*;

fn role_strategy() -> impl Strategy<Value = Role> {
    prop_oneof![
        Just(Role::Customer),
        Just(Role::Controller),
        Just(Role::Processor),
        Just(Role::Regulator),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn same_seed_and_config_expand_to_identical_op_streams(
        role in role_strategy(),
        subjects in 1u64..50,
        keys in 1u64..6,
        ops in 1u64..300,
        seed in any::<u64>(),
    ) {
        let spec = BenchSpec::new(role, subjects, keys, ops).seed(seed);
        prop_assert_eq!(load_ops(&spec), load_ops(&spec));
        prop_assert_eq!(transaction_ops(&spec), transaction_ops(&spec));
    }

    #[test]
    fn different_seeds_diverge(
        role in role_strategy(),
        seed in any::<u64>(),
    ) {
        // Not a strict guarantee op-by-op, but with 200 ops over 20 subjects
        // two different seeds colliding on the whole stream would mean the
        // seed is not actually feeding the generator.
        let a = BenchSpec::new(role, 20, 4, 200).seed(seed);
        let b = BenchSpec::new(role, 20, 4, 200).seed(seed ^ 0x9e37_79b9_7f4a_7c15);
        prop_assert!(transaction_ops(&a) != transaction_ops(&b));
    }
}

/// A pinned-clock in-memory compliance store with all bench grants.
fn open_store(shards: usize) -> Arc<GdprStore> {
    let config = StoreConfig::in_memory()
        .aof_in_memory()
        .shards(shards)
        .clock(SimClock::new(1_000_000));
    let store = GdprStore::open(
        CompliancePolicy::eventual(),
        config,
        Box::new(gdpr_storage::audit::sink::NullSink::new()),
    )
    .expect("store opens");
    for (actor, purpose) in BenchSpec::grants() {
        store.grant(Grant::new(actor, purpose));
    }
    Arc::new(store)
}

/// Drive the spec's load + transactions single-threaded and return
/// (load outcomes, txn outcomes, final state digest).
fn run_on_shards(
    spec: &BenchSpec,
    shards: usize,
) -> (
    Vec<gdpr_storage::gdprbench::Outcome>,
    Vec<gdpr_storage::gdprbench::Outcome>,
    String,
) {
    let store = open_store(shards);
    let runner = Runner::new(1).capture_outcomes(true);
    let load = runner
        .run_load(spec, &InProcessFactory::for_load(Arc::clone(&store)))
        .expect("load runs");
    let txn = runner
        .run_transactions(
            spec,
            &InProcessFactory::for_role(Arc::clone(&store), spec.role),
        )
        .expect("txns run");
    let digest = Dispatcher::gdpr(store).state_digest_hex();
    (
        load.outcomes.expect("captured"),
        txn.outcomes.expect("captured"),
        digest,
    )
}

#[test]
fn shard_count_only_routes_outcomes_and_digest_are_invariant() {
    // Mutating roles included on purpose: erasures and re-stamps are where
    // a shard-dependent generator or router would betray itself.
    for role in Role::all() {
        let spec = BenchSpec::new(role, 24, 3, 400).seed(1234);
        let (load1, txn1, digest1) = run_on_shards(&spec, 1);
        let (load4, txn4, digest4) = run_on_shards(&spec, 4);
        assert_eq!(
            load1, load4,
            "{role}: load outcomes differ across shard counts"
        );
        assert_eq!(
            txn1, txn4,
            "{role}: txn outcomes differ across shard counts"
        );
        assert_eq!(
            digest1, digest4,
            "{role}: final digests differ across shard counts"
        );
    }
}
