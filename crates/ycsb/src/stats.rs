//! Measurement: latency histograms and run reports.

use std::time::Duration;

/// A log-scale latency histogram (microsecond resolution, power-of-two-ish
/// buckets), cheap enough to update on every operation.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// Bucket upper bounds in microseconds.
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    sum_micros: u128,
    max_micros: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Create an empty histogram covering 1 µs … ~67 s.
    #[must_use]
    pub fn new() -> Self {
        // 1, 2, 4, ... µs up to 2^26 µs (~67 s), plus an overflow bucket.
        let bounds: Vec<u64> = (0..27).map(|i| 1u64 << i).collect();
        let buckets = bounds.len() + 1;
        LatencyHistogram {
            bounds,
            counts: vec![0; buckets],
            total: 0,
            sum_micros: 0,
            max_micros: 0,
        }
    }

    /// Record one operation latency.
    pub fn record(&mut self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = match self.bounds.iter().position(|&b| micros <= b) {
            Some(i) => i,
            None => self.counts.len() - 1,
        };
        self.counts[idx] += 1;
        self.total += 1;
        self.sum_micros += u128::from(micros);
        self.max_micros = self.max_micros.max(micros);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency in microseconds.
    #[must_use]
    pub fn mean_micros(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.total as f64
        }
    }

    /// Maximum observed latency in microseconds.
    #[must_use]
    pub fn max_micros(&self) -> u64 {
        self.max_micros
    }

    /// Approximate latency percentile (0.0–1.0) in microseconds, reported
    /// as the upper bound of the containing bucket.
    #[must_use]
    pub fn percentile_micros(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= target.max(1) {
                return self.bounds.get(i).copied().unwrap_or(self.max_micros);
            }
        }
        self.max_micros
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_micros += other.sum_micros;
        self.max_micros = self.max_micros.max(other.max_micros);
    }
}

/// The result of one benchmark phase (load or transactions).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Label of the phase ("Load-A", "A", …).
    pub phase: String,
    /// Operations completed.
    pub operations: u64,
    /// Operations that returned an error.
    pub errors: u64,
    /// Wall-clock time of the phase.
    pub elapsed: Duration,
    /// Latency distribution across all operations.
    pub latency: LatencyHistogram,
}

impl RunReport {
    /// Throughput in operations per second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.operations as f64 / secs
        }
    }

    /// One-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{:<8} {:>9} ops in {:>8.3}s  → {:>10.0} ops/s   p50={}µs p95={}µs p99={}µs max={}µs{}",
            self.phase,
            self.operations,
            self.elapsed.as_secs_f64(),
            self.throughput(),
            self.latency.percentile_micros(0.50),
            self.latency.percentile_micros(0.95),
            self.latency.percentile_micros(0.99),
            self.latency.max_micros(),
            if self.errors > 0 {
                format!("  ({} errors)", self.errors)
            } else {
                String::new()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_micros(), 0.0);
        assert_eq!(h.percentile_micros(0.99), 0);
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut h = LatencyHistogram::new();
        for micros in [1u64, 5, 10, 50, 100, 500, 1_000, 5_000, 10_000, 100_000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 10);
        let p50 = h.percentile_micros(0.5);
        let p95 = h.percentile_micros(0.95);
        let p99 = h.percentile_micros(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(h.max_micros() >= 100_000);
        assert!(h.mean_micros() > 0.0);
    }

    #[test]
    fn huge_latency_lands_in_overflow_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_secs(600));
        assert_eq!(h.count(), 1);
        assert!(h.percentile_micros(1.0) >= 1 << 26);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1_000));
        b.record(Duration::from_micros(2_000));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!(a.max_micros() >= 2_000);
    }

    #[test]
    fn run_report_throughput_and_summary() {
        let mut latency = LatencyHistogram::new();
        latency.record(Duration::from_micros(100));
        let report = RunReport {
            phase: "A".into(),
            operations: 10_000,
            errors: 2,
            elapsed: Duration::from_secs(2),
            latency,
        };
        assert!((report.throughput() - 5_000.0).abs() < 1e-9);
        let s = report.summary();
        assert!(s.contains("ops/s"));
        assert!(s.contains("errors"));
    }

    #[test]
    fn zero_elapsed_gives_zero_throughput() {
        let report = RunReport {
            phase: "x".into(),
            operations: 5,
            errors: 0,
            elapsed: Duration::ZERO,
            latency: LatencyHistogram::new(),
        };
        assert_eq!(report.throughput(), 0.0);
    }
}
