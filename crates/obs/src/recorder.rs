//! Always-on concurrent histogram recording.
//!
//! [`AtomicHistogram`] is the shared-mutable form of
//! [`LatencyHistogram`]: a small set of
//! cache-line-aligned *stripes*, each holding atomic bucket counters.
//! Every thread picks a stripe once (thread-local, round-robin over a
//! global counter) and then records with relaxed atomic adds only, so a
//! request-path sample costs one clock read plus three uncontended
//! relaxed RMWs. Scrapes merge all stripes into a plain snapshot; the
//! merged view is not a point-in-time atomic cut, which is fine for
//! monitoring (per-stripe counts are individually consistent enough that
//! `count` can lag `sum` by at most the in-flight samples).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use crate::hist::{bucket_index, LatencyHistogram, BUCKETS};

/// Number of stripes per histogram. Power of two so stripe selection is
/// a mask; 8 is plenty for the worker counts the server runs (reactor
/// defaults to a handful of workers) while keeping scrape cost and
/// memory (8 × ~256 B) trivial even with dozens of histograms live.
const STRIPES: usize = 8;

/// Monotonic source of thread stripe ids.
static NEXT_THREAD_ID: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_STRIPE: usize =
        NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed) & (STRIPES - 1);
}

/// One stripe of counters, aligned so two stripes never share a cache
/// line and concurrent recorders never false-share.
#[repr(align(128))]
struct Stripe {
    counts: [AtomicU64; BUCKETS],
    total: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Stripe {
    fn new() -> Self {
        Stripe {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }
}

/// A concurrently-updatable log-scale latency histogram.
///
/// `record` is wait-free and safe from any thread; `snapshot` merges the
/// stripes into an ordinary [`LatencyHistogram`] for rendering.
pub struct AtomicHistogram {
    stripes: Box<[Stripe]>,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// Create an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        AtomicHistogram {
            stripes: (0..STRIPES).map(|_| Stripe::new()).collect(),
        }
    }

    /// Record one latency sample (relaxed atomics on this thread's stripe).
    pub fn record(&self, latency: Duration) {
        self.record_micros(latency.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Record one latency sample given directly in microseconds.
    pub fn record_micros(&self, micros: u64) {
        let stripe = &self.stripes[THREAD_STRIPE.with(|s| *s)];
        stripe.counts[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        stripe.total.fetch_add(1, Ordering::Relaxed);
        stripe.sum_micros.fetch_add(micros, Ordering::Relaxed);
        stripe.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Total samples recorded so far (cheap, no bucket merge).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.total.load(Ordering::Relaxed))
            .sum()
    }

    /// Start a scope timer that records into this histogram when dropped,
    /// covering every exit path (including `?` early returns).
    pub fn start_timer(&self) -> ScopeTimer<'_> {
        ScopeTimer {
            hist: self,
            start: std::time::Instant::now(),
        }
    }

    /// Merge all stripes into a plain histogram for rendering.
    #[must_use]
    pub fn snapshot(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        for stripe in self.stripes.iter() {
            for (dst, src) in out.counts.iter_mut().zip(stripe.counts.iter()) {
                *dst += src.load(Ordering::Relaxed);
            }
            out.total += stripe.total.load(Ordering::Relaxed);
            out.sum_micros += u128::from(stripe.sum_micros.load(Ordering::Relaxed));
            out.max_micros = out
                .max_micros
                .max(stripe.max_micros.load(Ordering::Relaxed));
        }
        out
    }
}

/// Records the elapsed time since [`AtomicHistogram::start_timer`] into
/// the histogram when dropped.
#[must_use = "dropping immediately records a ~zero sample"]
pub struct ScopeTimer<'a> {
    hist: &'a AtomicHistogram,
    start: std::time::Instant,
}

impl Drop for ScopeTimer<'_> {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed());
    }
}

impl std::fmt::Debug for AtomicHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicHistogram")
            .field("count", &self.count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn record_and_snapshot() {
        let h = AtomicHistogram::new();
        h.record(Duration::from_micros(10));
        h.record(Duration::from_micros(3_000));
        h.record_micros(50);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 3);
        assert_eq!(snap.sum_micros(), 3_060);
        assert_eq!(snap.max_micros(), 3_000);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(AtomicHistogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        h.record_micros(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 8_000);
        // Sum of t*1000+i over t in 0..8, i in 0..1000.
        let expect: u64 = (0..8u64)
            .flat_map(|t| (0..1_000u64).map(move |i| t * 1_000 + i))
            .sum();
        assert_eq!(snap.sum_micros(), u128::from(expect));
        assert_eq!(snap.max_micros(), 7_999);
    }

    #[test]
    fn snapshot_matches_plain_histogram() {
        let atomic = AtomicHistogram::new();
        let mut plain = LatencyHistogram::new();
        for micros in [0u64, 1, 2, 3, 500, 65_536, 1 << 30] {
            atomic.record_micros(micros);
            plain.record(Duration::from_micros(micros));
        }
        let snap = atomic.snapshot();
        assert_eq!(snap.bucket_counts(), plain.bucket_counts());
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.sum_micros(), plain.sum_micros());
        for p in [0.5, 0.95, 0.99] {
            assert_eq!(snap.percentile_micros(p), plain.percentile_micros(p));
        }
    }
}
