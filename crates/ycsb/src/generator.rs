//! Key-choosing distributions, following the original YCSB generators.
//!
//! The numbers these produce are *item indices*; the workload layer maps
//! them to record keys. The zipfian generator uses the Gray et al.
//! rejection-free method exactly as YCSB does, so the skew of the request
//! stream matches the published benchmark.

use rand::Rng;

/// A source of item indices in `[0, item_count)` (or `[min, max]` where
/// noted).
pub trait NumberGenerator: Send {
    /// Draw the next value.
    fn next_value<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64;
}

// ---------------------------------------------------------------------------

/// Uniformly random over `[min, max]` inclusive.
#[derive(Debug, Clone)]
pub struct UniformGenerator {
    min: u64,
    max: u64,
}

impl UniformGenerator {
    /// Uniform over `[min, max]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    #[must_use]
    pub fn new(min: u64, max: u64) -> Self {
        assert!(min <= max, "uniform generator requires min <= max");
        UniformGenerator { min, max }
    }
}

impl NumberGenerator for UniformGenerator {
    fn next_value<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        rng.gen_range(self.min..=self.max)
    }
}

// ---------------------------------------------------------------------------

/// A simple monotonically increasing counter (used for insert key order).
#[derive(Debug, Clone)]
pub struct CounterGenerator {
    next: u64,
}

impl CounterGenerator {
    /// Start counting at `start`.
    #[must_use]
    pub fn new(start: u64) -> Self {
        CounterGenerator { next: start }
    }

    /// The value the next call will return.
    #[must_use]
    pub fn peek(&self) -> u64 {
        self.next
    }

    /// The most recently returned value (`start - 1` if none yet).
    #[must_use]
    pub fn last(&self) -> u64 {
        self.next.saturating_sub(1)
    }
}

impl NumberGenerator for CounterGenerator {
    fn next_value<R: Rng + ?Sized>(&mut self, _rng: &mut R) -> u64 {
        let v = self.next;
        self.next += 1;
        v
    }
}

// ---------------------------------------------------------------------------

/// The YCSB zipfian constant.
pub const ZIPFIAN_CONSTANT: f64 = 0.99;

/// Zipfian-distributed values over `[0, items)`: item 0 is the most
/// popular, following the Gray et al. "Quickly generating billion-record
/// synthetic databases" algorithm used by YCSB.
#[derive(Debug, Clone)]
pub struct ZipfianGenerator {
    items: u64,
    base: u64,
    theta: f64,
    zeta2theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

/// Compute the zeta sum `sum_{i=1}^{n} 1 / i^theta`.
#[must_use]
pub fn zeta(n: u64, theta: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

impl ZipfianGenerator {
    /// Zipfian over `[0, items)` with the standard YCSB constant.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0`.
    #[must_use]
    pub fn new(items: u64) -> Self {
        Self::with_constant(items, ZIPFIAN_CONSTANT)
    }

    /// Zipfian over `[0, items)` with an explicit skew constant.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0` or the constant is not in `(0, 1)`.
    #[must_use]
    pub fn with_constant(items: u64, constant: f64) -> Self {
        assert!(items > 0, "zipfian generator requires at least one item");
        assert!(
            constant > 0.0 && constant < 1.0,
            "zipfian constant must be in (0,1)"
        );
        let theta = constant;
        let zeta2theta = zeta(2, theta);
        let zetan = zeta(items, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        ZipfianGenerator {
            items,
            base: 0,
            theta,
            zeta2theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// Number of items in the distribution's support.
    #[must_use]
    pub fn item_count(&self) -> u64 {
        self.items
    }

    /// Grow the support to `items` (used by the latest-distribution wrapper
    /// as inserts happen), recomputing the normalisation constant
    /// incrementally.
    pub fn grow(&mut self, items: u64) {
        if items <= self.items {
            return;
        }
        // Incrementally extend zeta(n) rather than recomputing from scratch.
        for i in (self.items + 1)..=items {
            self.zetan += 1.0 / (i as f64).powf(self.theta);
        }
        self.items = items;
        self.eta = (1.0 - (2.0 / self.items as f64).powf(1.0 - self.theta))
            / (1.0 - self.zeta2theta / self.zetan);
    }
}

impl NumberGenerator for ZipfianGenerator {
    fn next_value<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return self.base;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return self.base + 1;
        }
        let value = (self.items as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        self.base + value.min(self.items - 1)
    }
}

// ---------------------------------------------------------------------------

/// 64-bit FNV-1a hash, as used by YCSB to scatter zipfian-popular items
/// across the keyspace.
#[must_use]
pub fn fnv1a_64(value: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for byte in value.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Zipfian popularity scattered uniformly over the keyspace: the *i*-th
/// most popular item is not item *i* but `fnv(i) % items`.
#[derive(Debug, Clone)]
pub struct ScrambledZipfianGenerator {
    items: u64,
    zipfian: ZipfianGenerator,
}

impl ScrambledZipfianGenerator {
    /// Scrambled zipfian over `[0, items)`.
    #[must_use]
    pub fn new(items: u64) -> Self {
        ScrambledZipfianGenerator {
            items,
            zipfian: ZipfianGenerator::new(items),
        }
    }
}

impl NumberGenerator for ScrambledZipfianGenerator {
    fn next_value<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        let raw = self.zipfian.next_value(rng);
        fnv1a_64(raw) % self.items
    }
}

// ---------------------------------------------------------------------------

/// "Latest" distribution: recently inserted records are the most popular
/// (workload D's read pattern).
#[derive(Debug, Clone)]
pub struct SkewedLatestGenerator {
    zipfian: ZipfianGenerator,
    max: u64,
}

impl SkewedLatestGenerator {
    /// Create a latest-skewed generator whose hottest item is `max`.
    #[must_use]
    pub fn new(max: u64) -> Self {
        SkewedLatestGenerator {
            zipfian: ZipfianGenerator::new(max.max(1)),
            max,
        }
    }

    /// Inform the generator that the newest item index is now `max`.
    pub fn observe_insert(&mut self, max: u64) {
        self.max = max;
        self.zipfian.grow(max.max(1));
    }
}

impl NumberGenerator for SkewedLatestGenerator {
    fn next_value<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        let offset = self.zipfian.next_value(rng);
        self.max.saturating_sub(offset)
    }
}

// ---------------------------------------------------------------------------

/// Hotspot distribution: `hot_opn_fraction` of operations go to the first
/// `hot_set_fraction` of the items.
#[derive(Debug, Clone)]
pub struct HotspotGenerator {
    items: u64,
    hot_items: u64,
    hot_opn_fraction: f64,
}

impl HotspotGenerator {
    /// Create a hotspot generator over `[0, items)`.
    ///
    /// # Panics
    ///
    /// Panics if the fractions are outside `[0, 1]` or `items == 0`.
    #[must_use]
    pub fn new(items: u64, hot_set_fraction: f64, hot_opn_fraction: f64) -> Self {
        assert!(items > 0);
        assert!((0.0..=1.0).contains(&hot_set_fraction));
        assert!((0.0..=1.0).contains(&hot_opn_fraction));
        let hot_items = ((items as f64 * hot_set_fraction) as u64).max(1);
        HotspotGenerator {
            items,
            hot_items,
            hot_opn_fraction,
        }
    }
}

impl NumberGenerator for HotspotGenerator {
    fn next_value<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        if rng.gen::<f64>() < self.hot_opn_fraction {
            rng.gen_range(0..self.hot_items)
        } else {
            rng.gen_range(self.hot_items..self.items.max(self.hot_items + 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn uniform_stays_in_range_and_covers_it() {
        let mut g = UniformGenerator::new(10, 19);
        let mut rng = rng();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..1_000 {
            let v = g.next_value(&mut rng);
            assert!((10..=19).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 10, "all values in a small range should appear");
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn uniform_rejects_inverted_range() {
        let _ = UniformGenerator::new(5, 4);
    }

    #[test]
    fn counter_is_sequential() {
        let mut g = CounterGenerator::new(100);
        let mut rng = rng();
        assert_eq!(g.peek(), 100);
        assert_eq!(g.next_value(&mut rng), 100);
        assert_eq!(g.next_value(&mut rng), 101);
        assert_eq!(g.last(), 101);
    }

    #[test]
    fn zipfian_is_skewed_towards_item_zero() {
        let mut g = ZipfianGenerator::new(1_000);
        let mut rng = rng();
        let mut zero_hits = 0u32;
        let samples = 20_000;
        for _ in 0..samples {
            if g.next_value(&mut rng) == 0 {
                zero_hits += 1;
            }
        }
        // With theta=0.99 over 1000 items, item 0 gets ~1/zeta(1000) ≈ 13 %.
        let fraction = f64::from(zero_hits) / f64::from(samples);
        assert!(fraction > 0.08, "item 0 fraction {fraction} too low");
        assert!(fraction < 0.25, "item 0 fraction {fraction} too high");
    }

    #[test]
    fn zipfian_values_in_range() {
        let mut g = ZipfianGenerator::new(50);
        let mut rng = rng();
        for _ in 0..10_000 {
            assert!(g.next_value(&mut rng) < 50);
        }
    }

    #[test]
    fn zipfian_grow_extends_support() {
        let mut g = ZipfianGenerator::new(10);
        let reference = ZipfianGenerator::new(100);
        g.grow(100);
        assert_eq!(g.item_count(), 100);
        assert!(
            (g.zetan - reference.zetan).abs() < 1e-9,
            "incremental zeta must match direct zeta"
        );
        // Growing to a smaller size is a no-op.
        g.grow(5);
        assert_eq!(g.item_count(), 100);
    }

    #[test]
    fn scrambled_zipfian_spreads_popularity() {
        let mut g = ScrambledZipfianGenerator::new(1_000);
        let mut rng = rng();
        let mut counts = vec![0u32; 1_000];
        for _ in 0..20_000 {
            counts[g.next_value(&mut rng) as usize] += 1;
        }
        // The most popular item should NOT be item 0 specifically (it is
        // hashed somewhere), but some item should clearly dominate.
        let max = *counts.iter().max().unwrap();
        assert!(
            max > 1_000,
            "scrambled zipfian should still be skewed (max={max})"
        );
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        assert!(nonzero > 300, "popularity should be spread over many items");
    }

    #[test]
    fn latest_favours_recent_items() {
        let mut g = SkewedLatestGenerator::new(999);
        let mut rng = rng();
        let mut recent = 0u32;
        for _ in 0..10_000 {
            let v = g.next_value(&mut rng);
            assert!(v <= 999);
            if v >= 900 {
                recent += 1;
            }
        }
        assert!(
            recent > 5_000,
            "latest distribution should hit the newest 10% most of the time"
        );
        g.observe_insert(1_999);
        for _ in 0..1_000 {
            assert!(g.next_value(&mut rng) <= 1_999);
        }
    }

    #[test]
    fn hotspot_respects_fractions() {
        let mut g = HotspotGenerator::new(1_000, 0.1, 0.9);
        let mut rng = rng();
        let mut hot = 0u32;
        for _ in 0..10_000 {
            if g.next_value(&mut rng) < 100 {
                hot += 1;
            }
        }
        let fraction = f64::from(hot) / 10_000.0;
        assert!((0.85..=0.95).contains(&fraction), "hot fraction {fraction}");
    }

    #[test]
    fn fnv_is_deterministic_and_spreads() {
        assert_eq!(fnv1a_64(12345), fnv1a_64(12345));
        assert_ne!(fnv1a_64(1), fnv1a_64(2));
    }

    #[test]
    fn zeta_matches_manual_sum() {
        let manual: f64 = (1..=5u64).map(|i| 1.0 / (i as f64).powf(0.99)).sum();
        assert!((zeta(5, 0.99) - manual).abs() < 1e-12);
    }
}
