//! Integration tests of the real TCP data path: a live `gdpr-server`
//! listener on an ephemeral port, driven by concurrent pipelined clients
//! mixing plain KV and `GDPR.*` commands, with clean-shutdown guarantees.

use std::collections::BTreeMap;
use std::sync::Arc;

use gdpr_server::client::{TcpRemoteAdapter, TcpRemoteClient};
use gdpr_server::dispatch::Dispatcher;
use gdpr_server::tcp::{ServerConfig, TcpServer, TcpServerHandle};
use gdpr_storage::gdpr_core::acl::Grant;
use gdpr_storage::gdpr_core::policy::CompliancePolicy;
use gdpr_storage::gdpr_core::store::GdprStore;
use gdpr_storage::kvstore::config::StoreConfig;
use gdpr_storage::kvstore::store::KvStore;
use gdpr_storage::resp::command::GdprRequest;
use gdpr_storage::resp::Frame;
use gdpr_storage::ycsb::concurrent::ConcurrentDriver;
use gdpr_storage::ycsb::workload::WorkloadSpec;

const ACTOR: &str = "app";
const PURPOSE: &str = "billing";

fn gdpr_server(shards: usize) -> (TcpServerHandle, Arc<GdprStore>) {
    let store = Arc::new(
        GdprStore::open(
            CompliancePolicy::eventual(),
            StoreConfig::in_memory().aof_in_memory().shards(shards),
            Box::new(gdpr_storage::audit::sink::MemorySink::new()),
        )
        .unwrap(),
    );
    store.grant(Grant::new(ACTOR, PURPOSE));
    let server = TcpServer::bind(
        Dispatcher::gdpr(Arc::clone(&store)),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    (server, store)
}

#[test]
fn concurrent_pipelined_clients_mix_kv_and_gdpr_commands() {
    let (server, store) = gdpr_server(4);
    let addr = server.local_addr();
    const CLIENTS: usize = 4;
    const KEYS_PER_CLIENT: usize = 25;

    // Each thread owns one connection, authenticates it, and sends its
    // whole mixed workload as pipelined batches, asserting every reply.
    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = TcpRemoteClient::connect(addr).unwrap();
                client.auth(ACTOR, PURPOSE).unwrap();

                // Batch 1: plain KV writes through the compliance layer.
                let sets: Vec<Frame> = (0..KEYS_PER_CLIENT)
                    .map(|i| Frame::command(["SET", &format!("user:{t}:{i}"), "v"]))
                    .collect();
                let replies = client.pipeline(&sets).unwrap();
                assert!(
                    replies.iter().all(|r| *r == Frame::Simple("OK".into())),
                    "thread {t}: {replies:?}"
                );

                // Batch 2: GDPR puts with explicit subjects + reads back.
                let gdpr_frames: Vec<Frame> = (0..KEYS_PER_CLIENT)
                    .map(|i| {
                        GdprRequest::Put {
                            key: format!("subject-data:{t}:{i}"),
                            subject: format!("subject-{t}"),
                            purposes: vec![PURPOSE.to_string()],
                            value: format!("value-{t}-{i}").into_bytes(),
                            ttl_ms: None,
                        }
                        .to_frame()
                    })
                    .chain(
                        (0..KEYS_PER_CLIENT)
                            .map(|i| Frame::command(["GET", &format!("subject-data:{t}:{i}")])),
                    )
                    .collect();
                let replies = client.pipeline(&gdpr_frames).unwrap();
                assert_eq!(replies.len(), 2 * KEYS_PER_CLIENT);
                for (i, reply) in replies.iter().take(KEYS_PER_CLIENT).enumerate() {
                    assert_eq!(*reply, Frame::Simple("OK".into()), "put {t}:{i}");
                }
                for (i, reply) in replies.iter().skip(KEYS_PER_CLIENT).enumerate() {
                    assert_eq!(
                        *reply,
                        Frame::Bulk(format!("value-{t}-{i}").into_bytes()),
                        "get {t}:{i}"
                    );
                }

                // Metadata is visible over the wire.
                match client
                    .gdpr(&GdprRequest::GetMeta {
                        key: format!("subject-data:{t}:0"),
                    })
                    .unwrap()
                {
                    Frame::Array(items) => assert!(
                        items.contains(&Frame::Bulk(format!("subject=subject-{t}").into_bytes())),
                        "{items:?}"
                    ),
                    other => panic!("unexpected {other:?}"),
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    // Cross-client consistency checks from a fresh connection.
    let mut client = TcpRemoteClient::connect(addr).unwrap();
    client.auth(ACTOR, PURPOSE).unwrap();

    // The metadata index agrees with the keyspace for every subject.
    for t in 0..CLIENTS {
        let mut keys = client.keys_of_subject(&format!("subject-{t}")).unwrap();
        keys.sort();
        let expected: Vec<String> = {
            let mut v: Vec<String> = (0..KEYS_PER_CLIENT)
                .map(|i| format!("subject-data:{t}:{i}"))
                .collect();
            v.sort();
            v
        };
        assert_eq!(keys, expected, "index postings for subject-{t}");
    }
    // ... and matches the store's own view exactly.
    assert_eq!(
        store.keys_of_subject("subject-0").unwrap().len(),
        KEYS_PER_CLIENT
    );

    // Objection + export + erasure over the wire.
    let objected = client
        .gdpr(&GdprRequest::Object {
            subject: "subject-0".into(),
            purpose: "marketing".into(),
        })
        .unwrap();
    assert_eq!(objected, Frame::Integer(KEYS_PER_CLIENT as i64));
    let export = client.export_subject("subject-1").unwrap();
    assert!(export.contains("\"subject\":\"subject-1\""), "{export}");
    assert!(export.contains(&format!("\"item_count\":{KEYS_PER_CLIENT}")));

    assert_eq!(
        client.erase_subject("subject-2").unwrap(),
        KEYS_PER_CLIENT as u64
    );
    assert!(client.keys_of_subject("subject-2").unwrap().is_empty());
    assert_eq!(client.get("subject-data:2:0").unwrap(), None);
    assert!(store.keys_of_subject("subject-2").unwrap().is_empty());
    assert!(store.stats().erased_by_request >= KEYS_PER_CLIENT as u64);

    // No request errored server-side beyond what we asserted above.
    assert_eq!(server.dispatcher().stats().errors, 0);
    let stats = server.transport_stats();
    assert_eq!(stats.accepted, CLIENTS as u64 + 1);
    assert_eq!(stats.rejected, 0);
    server.shutdown();
}

#[test]
fn concurrent_driver_runs_ycsb_over_the_adapter_with_four_threads() {
    let (server, store) = gdpr_server(4);
    // One auth'd adapter shared by ≥4 driver threads over pooled sockets.
    let adapter = TcpRemoteAdapter::connect(server.local_addr())
        .unwrap()
        .with_auth(ACTOR, PURPOSE);
    let driver = ConcurrentDriver::new(WorkloadSpec::workload_a(200, 600), 4, 7);
    let load = driver.run_load(&adapter).unwrap();
    assert_eq!(load.operations, 200);
    assert_eq!(load.errors, 0);
    let run = driver.run_transactions(&adapter).unwrap();
    assert_eq!(run.operations, 600);
    assert_eq!(run.errors, 0);
    // Every record carried metadata (key doubles as subject) and is
    // indexed — the compliance layer really sat on the data path.
    let ctx = gdpr_storage::gdpr_core::store::AccessContext::new(ACTOR, PURPOSE);
    let sample = store.scan(&ctx, "", 5).unwrap();
    assert!(!sample.is_empty());
    for key in sample {
        assert_eq!(store.keys_of_subject(&key).unwrap(), vec![key.clone()]);
    }
    assert!(store.stats().allowed_ops >= 800);
    server.shutdown();
}

#[test]
fn shutdown_answers_in_flight_pipelines_before_closing() {
    let (server, _) = gdpr_server(1);
    let addr = server.local_addr();
    let mut client = TcpRemoteClient::connect(addr).unwrap();
    client.auth(ACTOR, PURPOSE).unwrap();

    // Queue a deep pipeline, give loopback delivery a moment, then raise
    // the shutdown flag: every queued request must still be answered.
    let frames: Vec<Frame> = (0..300)
        .map(|i| Frame::command(["SET", &format!("k{i}"), "v"]))
        .collect();
    client.send_batch(&frames).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(50));
    server.request_shutdown();
    let replies = client.read_replies(frames.len()).unwrap();
    assert_eq!(replies.len(), 300);
    assert!(replies.iter().all(|r| *r == Frame::Simple("OK".into())));
    server.shutdown();
}

#[test]
fn shutdown_command_from_a_client_stops_a_raw_engine_server() {
    let dispatcher = Dispatcher::kv(KvStore::open(StoreConfig::in_memory()).unwrap());
    let server = TcpServer::bind(dispatcher, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = TcpRemoteClient::connect(server.local_addr()).unwrap();
    client.set("k", b"v").unwrap();
    assert_eq!(client.get("k").unwrap(), Some(b"v".to_vec()));
    client.shutdown_server().unwrap();
    server.wait_for_shutdown_request(std::time::Duration::from_millis(5));
    server.shutdown();
}

#[test]
fn record_blobs_survive_the_wire_roundtrip() {
    let (server, _) = gdpr_server(2);
    let adapter = TcpRemoteAdapter::connect(server.local_addr())
        .unwrap()
        .with_auth(ACTOR, PURPOSE);
    use gdpr_storage::ycsb::concurrent::SharedKvInterface;
    let mut fields = BTreeMap::new();
    fields.insert("field0".to_string(), b"zero".to_vec());
    fields.insert("field1".to_string(), b"one".to_vec());
    adapter.insert("user:blob", &fields).unwrap();
    let read = adapter.read("user:blob").unwrap().unwrap();
    assert_eq!(read, fields);
    let mut update = BTreeMap::new();
    update.insert("field1".to_string(), b"uno".to_vec());
    adapter.update("user:blob", &update).unwrap();
    let read = adapter.read("user:blob").unwrap().unwrap();
    assert_eq!(read["field1"], b"uno".to_vec());
    assert_eq!(read["field0"], b"zero".to_vec());
    server.shutdown();
}
