//! Multi-threaded workload driving.
//!
//! The single-threaded [`crate::client::Driver`] measures the *per
//! operation* cost of compliance; GDPRBench-style workloads are
//! throughput-bound and must also be measured under concurrency, which is
//! what the sharded engine exists for. [`ConcurrentDriver`] runs M client
//! threads against one store through [`SharedKvInterface`] (the `&self`
//! sibling of [`crate::client::KvInterface`]) and merges the per-thread
//! reports.

use std::collections::BTreeMap;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::client::Driver;
use crate::stats::{LatencyHistogram, RunReport};
use crate::workload::{CoreWorkload, WorkloadOp, WorkloadSpec};
use crate::Result;

/// The operations a store must support to run YCSB from several threads at
/// once. Identical to [`crate::client::KvInterface`] but over `&self`, so
/// one store instance can be shared without external locking.
pub trait SharedKvInterface: Sync {
    /// Insert a new record with the given fields.
    fn insert(&self, key: &str, fields: &BTreeMap<String, Vec<u8>>) -> Result<()>;

    /// Read a record; returns `None` if it does not exist.
    fn read(&self, key: &str) -> Result<Option<BTreeMap<String, Vec<u8>>>>;

    /// Overwrite the given fields of an existing record.
    fn update(&self, key: &str, fields: &BTreeMap<String, Vec<u8>>) -> Result<()>;

    /// Read up to `count` records in key order starting at `start_key`.
    fn scan(&self, start_key: &str, count: usize) -> Result<Vec<String>>;

    /// Background-duty hook (expiry cycles, batched fsyncs). Called by one
    /// driving thread at a time, roughly every `tick_every` operations.
    fn tick(&self) -> Result<()> {
        Ok(())
    }
}

/// Which half of a YCSB run a phase executes (drives whether threads draw
/// sequenced load inserts or mixed transactions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PhaseKind {
    Load,
    Transactions,
}

/// Drives a workload from M threads against a [`SharedKvInterface`].
///
/// Each thread owns an independent [`CoreWorkload`] (seeded from the
/// driver seed and the thread index) and a disjoint slice of the
/// load-phase key range, so the combined load phase inserts exactly the
/// spec's `record_count` records. Transaction-phase inserts (workloads
/// D/E/F) draw from per-thread sequences and may collide across threads —
/// the same approximation real YCSB makes with multiple client threads.
#[derive(Debug)]
pub struct ConcurrentDriver {
    spec: WorkloadSpec,
    threads: usize,
    seed: u64,
    /// Have thread 0 call the store's `tick` every this many of its own
    /// operations (0 = never).
    pub tick_every: u64,
}

impl ConcurrentDriver {
    /// Create a driver running `threads` client threads.
    #[must_use]
    pub fn new(spec: WorkloadSpec, threads: usize, seed: u64) -> Self {
        ConcurrentDriver {
            spec,
            threads: threads.max(1),
            seed,
            tick_every: 100,
        }
    }

    /// The workload specification being driven.
    #[must_use]
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Number of client threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run the load phase: the record range is striped across threads so
    /// every record is inserted exactly once.
    ///
    /// # Errors
    ///
    /// Propagates `tick` errors; per-operation store errors are counted in
    /// the report.
    pub fn run_load<S: SharedKvInterface>(&self, store: &S) -> Result<RunReport> {
        let record_count = self.spec.record_count;
        let threads = self.threads as u64;
        self.run_phase(
            store,
            format!("Load-{}x{}", self.spec.name, self.threads),
            PhaseKind::Load,
            move |t| (t as u64..record_count).step_by(threads as usize).collect(),
        )
    }

    /// Run the transaction phase: `operation_count` operations split
    /// across threads, each drawing from the workload mix.
    ///
    /// # Errors
    ///
    /// As for [`Self::run_load`].
    pub fn run_transactions<S: SharedKvInterface>(&self, store: &S) -> Result<RunReport> {
        let total = self.spec.operation_count;
        let threads = self.threads as u64;
        let per_thread = total / threads;
        let remainder = total % threads;
        self.run_phase(
            store,
            format!("{}x{}", self.spec.name, self.threads),
            PhaseKind::Transactions,
            move |t| {
                let extra = u64::from((t as u64) < remainder);
                // A transaction slice is a count, not index set; encode as 0..n.
                (0..per_thread + extra).collect()
            },
        )
    }

    /// Shared phase runner: `slice_of` yields, per thread, the load-phase
    /// record indices — or, for transactions, one dummy index per
    /// operation to perform.
    fn run_phase<S, F>(
        &self,
        store: &S,
        phase: String,
        kind: PhaseKind,
        slice_of: F,
    ) -> Result<RunReport>
    where
        S: SharedKvInterface,
        F: Fn(usize) -> Vec<u64> + Sync,
    {
        let started = Instant::now();
        let mut merged_latency = LatencyHistogram::new();
        let mut operations = 0u64;
        let mut errors = 0u64;

        let results: Vec<Result<(LatencyHistogram, u64, u64)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads)
                .map(|t| {
                    let slice = slice_of(t);
                    let spec = self.spec.clone();
                    let seed = self.seed.wrapping_add(t as u64).wrapping_mul(0x9e37_79b9);
                    let tick_every = if t == 0 { self.tick_every } else { 0 };
                    scope.spawn(move || run_thread(store, spec, seed, &slice, kind, tick_every))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });

        for result in results {
            let (latency, ops, errs) = result?;
            merged_latency.merge(&latency);
            operations += ops;
            errors += errs;
        }

        Ok(RunReport {
            phase,
            operations,
            errors,
            elapsed: started.elapsed(),
            latency: merged_latency,
        })
    }
}

fn run_thread<S: SharedKvInterface>(
    store: &S,
    spec: WorkloadSpec,
    seed: u64,
    slice: &[u64],
    kind: PhaseKind,
    tick_every: u64,
) -> Result<(LatencyHistogram, u64, u64)> {
    let mut workload = CoreWorkload::new(spec);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut latency = LatencyHistogram::new();
    let mut errors = 0u64;

    for (n, &index) in slice.iter().enumerate() {
        let op = match kind {
            PhaseKind::Load => workload.load_op(&mut rng, index),
            PhaseKind::Transactions => workload.next_op(&mut rng),
        };
        let op_start = Instant::now();
        let outcome = apply(store, &op);
        latency.record(op_start.elapsed());
        if outcome.is_err() {
            errors += 1;
        }
        if tick_every > 0 && (n as u64).is_multiple_of(tick_every) {
            store.tick()?;
        }
    }
    Ok((latency, slice.len() as u64, errors))
}

fn apply<S: SharedKvInterface>(store: &S, op: &WorkloadOp) -> Result<()> {
    match op {
        WorkloadOp::Read { key } => store.read(key).map(|_| ()),
        WorkloadOp::Update { key, fields } => store.update(key, fields),
        WorkloadOp::Insert { key, fields } => store.insert(key, fields),
        WorkloadOp::Scan { start_key, count } => store.scan(start_key, *count).map(|_| ()),
        WorkloadOp::ReadModifyWrite { key, fields } => {
            store.read(key)?;
            store.update(key, fields)
        }
    }
}

/// Run the classic single-threaded driver through a shared-store adapter,
/// so sequential and concurrent runs measure the same store type.
#[derive(Debug)]
pub struct SharedAsMut<'a, S: SharedKvInterface>(pub &'a S);

impl<S: SharedKvInterface> crate::client::KvInterface for SharedAsMut<'_, S> {
    fn insert(&mut self, key: &str, fields: &BTreeMap<String, Vec<u8>>) -> Result<()> {
        self.0.insert(key, fields)
    }

    fn read(&mut self, key: &str) -> Result<Option<BTreeMap<String, Vec<u8>>>> {
        self.0.read(key)
    }

    fn update(&mut self, key: &str, fields: &BTreeMap<String, Vec<u8>>) -> Result<()> {
        self.0.update(key, fields)
    }

    fn scan(&mut self, start_key: &str, count: usize) -> Result<Vec<String>> {
        self.0.scan(start_key, count)
    }

    fn tick(&mut self) -> Result<()> {
        self.0.tick()
    }
}

impl ConcurrentDriver {
    /// Convenience: when `threads == 1`, callers can compare against the
    /// deterministic sequential driver over the same shared store.
    ///
    /// # Errors
    ///
    /// As for [`crate::client::Driver::run_load`].
    pub fn run_sequential_baseline<S: SharedKvInterface>(
        &self,
        store: &S,
    ) -> Result<(RunReport, RunReport)> {
        let mut driver = Driver::new(self.spec.clone(), self.seed);
        driver.tick_every = self.tick_every;
        let mut adapter = SharedAsMut(store);
        let load = driver.run_load(&mut adapter)?;
        let run = driver.run_transactions(&mut adapter)?;
        Ok((load, run))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    /// A shared in-memory store guarded by one mutex (the concurrency
    /// *correctness* reference; throughput scaling is the engine's job).
    #[derive(Debug, Default)]
    struct SharedMemoryKv {
        records: Mutex<BTreeMap<String, BTreeMap<String, Vec<u8>>>>,
        ticks: Mutex<u64>,
    }

    impl SharedKvInterface for SharedMemoryKv {
        fn insert(&self, key: &str, fields: &BTreeMap<String, Vec<u8>>) -> Result<()> {
            self.records.lock().insert(key.to_string(), fields.clone());
            Ok(())
        }

        fn read(&self, key: &str) -> Result<Option<BTreeMap<String, Vec<u8>>>> {
            Ok(self.records.lock().get(key).cloned())
        }

        fn update(&self, key: &str, fields: &BTreeMap<String, Vec<u8>>) -> Result<()> {
            let mut records = self.records.lock();
            let entry = records.entry(key.to_string()).or_default();
            for (f, v) in fields {
                entry.insert(f.clone(), v.clone());
            }
            Ok(())
        }

        fn scan(&self, start_key: &str, count: usize) -> Result<Vec<String>> {
            Ok(self
                .records
                .lock()
                .range(start_key.to_string()..)
                .take(count)
                .map(|(k, _)| k.clone())
                .collect())
        }

        fn tick(&self) -> Result<()> {
            *self.ticks.lock() += 1;
            Ok(())
        }
    }

    #[test]
    fn concurrent_load_inserts_every_record_exactly_once() {
        let store = SharedMemoryKv::default();
        let driver = ConcurrentDriver::new(WorkloadSpec::workload_a(500, 100), 4, 7);
        let report = driver.run_load(&store).unwrap();
        assert_eq!(report.operations, 500);
        assert_eq!(report.errors, 0);
        assert_eq!(
            store.records.lock().len(),
            500,
            "striped load covers the whole range"
        );
        assert!(report.phase.starts_with("Load-"));
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn transaction_phase_splits_operations_across_threads() {
        let store = SharedMemoryKv::default();
        let driver = ConcurrentDriver::new(WorkloadSpec::workload_a(200, 1_001), 4, 9);
        driver.run_load(&store).unwrap();
        let report = driver.run_transactions(&store).unwrap();
        assert_eq!(
            report.operations, 1_001,
            "remainder ops must not be dropped"
        );
        assert_eq!(report.errors, 0);
        assert_eq!(report.latency.count(), 1_001);
    }

    #[test]
    fn tick_runs_from_the_driving_thread() {
        let store = SharedMemoryKv::default();
        let mut driver = ConcurrentDriver::new(WorkloadSpec::workload_c(100, 400), 2, 3);
        driver.tick_every = 50;
        driver.run_load(&store).unwrap();
        driver.run_transactions(&store).unwrap();
        assert!(*store.ticks.lock() >= 2);
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let driver = ConcurrentDriver::new(WorkloadSpec::workload_c(10, 10), 0, 1);
        assert_eq!(driver.threads(), 1);
        let store = SharedMemoryKv::default();
        assert_eq!(driver.run_load(&store).unwrap().operations, 10);
    }

    #[test]
    fn sequential_baseline_runs_over_the_shared_store() {
        let store = SharedMemoryKv::default();
        let driver = ConcurrentDriver::new(WorkloadSpec::workload_b(50, 120), 1, 5);
        let (load, run) = driver.run_sequential_baseline(&store).unwrap();
        assert_eq!(load.operations, 50);
        assert_eq!(run.operations, 120);
        assert_eq!(run.errors, 0);
    }
}
