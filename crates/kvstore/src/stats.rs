//! Aggregated engine statistics (the `INFO` analogue).

use crate::aof::AofStats;
use crate::config::EvictionPolicy;
use crate::db::DbStats;
use crate::device::DeviceStats;
use crate::ttl_wheel::DeadlineIndexStats;

/// A point-in-time view of engine activity, combining keyspace, AOF and
/// device counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total commands executed through the store façade.
    pub commands_processed: u64,
    /// Read commands executed.
    pub reads: u64,
    /// Write commands executed.
    pub writes: u64,
    /// Number of expiry cycles run.
    pub expire_cycles: u64,
    /// Keys removed by expiry cycles.
    pub keys_expired_by_cycles: u64,
    /// Automatic AOF rewrites triggered by the record threshold.
    pub auto_rewrites: u64,
    /// The configured `maxmemory` ceiling in bytes (0 = unlimited).
    pub max_memory: u64,
    /// The configured over-`maxmemory` eviction policy.
    pub eviction_policy: EvictionPolicy,
    /// Keyspace counters.
    pub db: DbStats,
    /// Deadline-index (strict-expiry) counters summed over shards: wheel
    /// occupancy, cascades, stale-entry drops and overflow parking.
    pub deadline_index: DeadlineIndexStats,
    /// AOF counters aggregated over all journal segments (zeroed when
    /// persistence is disabled).
    pub aof: AofStats,
    /// Number of journal segments (one per shard; 0 when persistence is
    /// disabled).
    pub aof_segments: u64,
    /// Device counters (zeroed when persistence is disabled).
    pub device: DeviceStats,
}

impl EngineStats {
    /// Keyspace hit ratio in `[0, 1]`; `None` when no lookups happened.
    #[must_use]
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.db.keyspace_hits + self.db.keyspace_misses;
        if total == 0 {
            None
        } else {
            Some(self.db.keyspace_hits as f64 / total as f64)
        }
    }

    /// Average fsyncs per command — a quick way to see which compliance
    /// point (`always` vs `everysec`) a run was operating at.
    #[must_use]
    pub fn fsyncs_per_command(&self) -> f64 {
        if self.commands_processed == 0 {
            0.0
        } else {
            self.aof.fsyncs as f64 / self.commands_processed as f64
        }
    }

    /// A compact multi-line rendering in the spirit of `INFO`.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "# Stats\n\
             commands_processed:{}\nreads:{}\nwrites:{}\n\
             keyspace_hits:{}\nkeyspace_misses:{}\n\
             expired_keys:{}\ndeleted_keys:{}\nevicted_keys:{}\n\
             mem_bytes:{}\nmaxmemory:{}\nmaxmemory_policy:{}\n\
             expire_cycles:{}\nkeys_expired_by_cycles:{}\n\
             deadline_index:{}\nttl_entries:{}\nttl_inserts:{}\nttl_reschedules:{}\n\
             ttl_removes:{}\nttl_fired:{}\nwheel_cascades:{}\nwheel_stale_dropped:{}\n\
             wheel_overflow_entries:{}\nwheel_ready_entries:{}\nwheel_level_entries:{}\n\
             aof_segments:{}\naof_records:{}\naof_fsyncs:{}\naof_rewrites:{}\nauto_rewrites:{}\n\
             aof_unsynced_records:{}\naof_group_commits:{}\naof_group_commit_records:{}\n\
             aof_max_group_commit_batch:{}\n\
             device_bytes_written:{}\ndevice_bytes_on_device:{}\ndevice_syncs:{}\n",
            self.commands_processed,
            self.reads,
            self.writes,
            self.db.keyspace_hits,
            self.db.keyspace_misses,
            self.db.expired_keys,
            self.db.deleted_keys,
            self.db.evicted_keys,
            self.db.mem_bytes,
            self.max_memory,
            self.eviction_policy,
            self.expire_cycles,
            self.keys_expired_by_cycles,
            self.deadline_index.kind,
            self.deadline_index.entries,
            self.deadline_index.inserts,
            self.deadline_index.reschedules,
            self.deadline_index.removes,
            self.deadline_index.fired,
            self.deadline_index.cascades,
            self.deadline_index.stale_dropped,
            self.deadline_index.overflow_entries,
            self.deadline_index.ready_entries,
            self.deadline_index
                .level_entries
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("/"),
            self.aof_segments,
            self.aof.records_appended,
            self.aof.fsyncs,
            self.aof.rewrites,
            self.auto_rewrites,
            self.aof.unsynced_records,
            self.aof.group_commits,
            self.aof.group_commit_records,
            self.aof.max_group_commit_batch,
            self.device.bytes_written,
            self.device.bytes_on_device,
            self.device.syncs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_edge_cases() {
        let mut s = EngineStats::default();
        assert_eq!(s.hit_ratio(), None);
        s.db.keyspace_hits = 3;
        s.db.keyspace_misses = 1;
        assert_eq!(s.hit_ratio(), Some(0.75));
    }

    #[test]
    fn fsyncs_per_command() {
        let mut s = EngineStats::default();
        assert_eq!(s.fsyncs_per_command(), 0.0);
        s.commands_processed = 10;
        s.aof.fsyncs = 10;
        assert!((s.fsyncs_per_command() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn render_contains_every_counter_name() {
        let text = EngineStats::default().render();
        for field in [
            "commands_processed",
            "keyspace_hits",
            "expired_keys",
            "evicted_keys",
            "mem_bytes",
            "maxmemory:0",
            "maxmemory_policy:noeviction",
            "deadline_index:wheel",
            "ttl_entries",
            "wheel_cascades",
            "wheel_stale_dropped",
            "wheel_overflow_entries",
            "wheel_level_entries",
            "aof_segments",
            "aof_fsyncs",
            "aof_unsynced_records",
            "aof_group_commits",
            "device_bytes_written",
        ] {
            assert!(text.contains(field), "missing {field}");
        }
    }
}
