//! The multi-threaded workload driver.
//!
//! A [`Runner`] takes a [`BenchSpec`] and a [`ClientFactory`], expands the
//! spec to its op stream, splits the stream round-robin across driver
//! threads (thread `t` executes indices `i` where `i % threads == t`) and
//! merges per-thread latency histograms afterwards. The split is purely a
//! routing decision: the generated stream is identical for every thread
//! count, and with `capture_outcomes` the per-op [`Outcome`] vector is
//! reassembled in original op order so differential harnesses can compare
//! runs op-by-op regardless of how many threads drove them.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use obs::hist::LatencyHistogram;

use crate::client::ClientFactory;
use crate::ops::{self, GdprOp, Outcome};
use crate::spec::BenchSpec;

/// Aggregated result of one phase (load or transactions).
#[derive(Debug)]
pub struct RunSummary {
    /// Workload label (`customer`, …, or `load`).
    pub workload: String,
    /// Phase label: `load` or `run`.
    pub phase: &'static str,
    /// Operations executed.
    pub operations: u64,
    /// Compliance denials observed.
    pub denials: u64,
    /// Non-compliance failures observed.
    pub failures: u64,
    /// Wall-clock time for the whole phase.
    pub elapsed: Duration,
    /// Latencies across all ops.
    pub overall: LatencyHistogram,
    /// Latencies keyed by right/op label (`keysof`, `export`, `erase`, …).
    pub per_right: BTreeMap<&'static str, LatencyHistogram>,
    /// Per-op outcomes in original op order (only when capturing).
    pub outcomes: Option<Vec<Outcome>>,
}

impl RunSummary {
    /// Ops per second over the phase's wall-clock time.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.operations as f64 / secs
    }
}

/// Drives op streams against a store through a [`ClientFactory`].
#[derive(Debug, Clone)]
pub struct Runner {
    threads: usize,
    capture_outcomes: bool,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::new(1)
    }
}

impl Runner {
    /// A runner with `threads` driver threads (clamped to ≥ 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Runner {
            threads: threads.max(1),
            capture_outcomes: false,
        }
    }

    /// Builder-style: also capture the per-op outcome vector (costs one
    /// `Vec<Outcome>` per run; differential harnesses want it, benchmarks
    /// don't).
    #[must_use]
    pub fn capture_outcomes(mut self, capture: bool) -> Self {
        self.capture_outcomes = capture;
        self
    }

    /// Run the load phase: every record `Put` exactly once.
    ///
    /// # Errors
    ///
    /// Propagates connection failures from the factory.
    pub fn run_load(
        &self,
        spec: &BenchSpec,
        factory: &dyn ClientFactory,
    ) -> Result<RunSummary, String> {
        self.drive("load", "load", ops::load_ops(spec), factory)
    }

    /// Run the transaction phase: the spec's role mix.
    ///
    /// # Errors
    ///
    /// Propagates connection failures from the factory.
    pub fn run_transactions(
        &self,
        spec: &BenchSpec,
        factory: &dyn ClientFactory,
    ) -> Result<RunSummary, String> {
        self.drive(spec.role.name(), "run", ops::transaction_ops(spec), factory)
    }

    /// Execute a pre-expanded op stream (used by the differential battery
    /// to drive hand-built streams).
    ///
    /// # Errors
    ///
    /// Propagates connection failures from the factory.
    pub fn run_ops(
        &self,
        workload: &str,
        ops: Vec<GdprOp>,
        factory: &dyn ClientFactory,
    ) -> Result<RunSummary, String> {
        self.drive(workload, "run", ops, factory)
    }

    fn drive(
        &self,
        workload: &str,
        phase: &'static str,
        ops: Vec<GdprOp>,
        factory: &dyn ClientFactory,
    ) -> Result<RunSummary, String> {
        let threads = self.threads.min(ops.len().max(1));
        let capture = self.capture_outcomes;
        let started = Instant::now();
        let results: Vec<Result<ThreadResult, String>> = std::thread::scope(|scope| {
            let ops = &ops;
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads {
                handles.push(scope.spawn(move || {
                    let mut client = factory.connect()?;
                    let mut local = ThreadResult::new(capture);
                    for (i, op) in ops.iter().enumerate().skip(t).step_by(threads) {
                        let begin = Instant::now();
                        let outcome = client.apply(op);
                        let latency = begin.elapsed();
                        local.overall.record(latency);
                        local
                            .per_right
                            .entry(op.right())
                            .or_default()
                            .record(latency);
                        match outcome {
                            Outcome::Ok(_) => {}
                            Outcome::Denied => local.denials += 1,
                            Outcome::Failed => local.failures += 1,
                        }
                        if let Some(captured) = &mut local.outcomes {
                            captured.push((i, outcome));
                        }
                    }
                    Ok(local)
                }));
            }
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err("driver thread panicked".into()))
                })
                .collect()
        });
        let elapsed = started.elapsed();

        let mut overall = LatencyHistogram::new();
        let mut per_right: BTreeMap<&'static str, LatencyHistogram> = BTreeMap::new();
        let mut denials = 0u64;
        let mut failures = 0u64;
        let mut indexed: Vec<(usize, Outcome)> = Vec::new();
        for result in results {
            let local = result?;
            overall.merge(&local.overall);
            for (right, hist) in &local.per_right {
                per_right.entry(right).or_default().merge(hist);
            }
            denials += local.denials;
            failures += local.failures;
            if let Some(captured) = local.outcomes {
                indexed.extend(captured);
            }
        }
        let outcomes = if capture {
            indexed.sort_unstable_by_key(|(i, _)| *i);
            Some(indexed.into_iter().map(|(_, o)| o).collect())
        } else {
            None
        };
        Ok(RunSummary {
            workload: workload.to_string(),
            phase,
            operations: ops.len() as u64,
            denials,
            failures,
            elapsed,
            overall,
            per_right,
            outcomes,
        })
    }
}

struct ThreadResult {
    overall: LatencyHistogram,
    per_right: BTreeMap<&'static str, LatencyHistogram>,
    denials: u64,
    failures: u64,
    outcomes: Option<Vec<(usize, Outcome)>>,
}

impl ThreadResult {
    fn new(capture: bool) -> Self {
        ThreadResult {
            overall: LatencyHistogram::new(),
            per_right: BTreeMap::new(),
            denials: 0,
            failures: 0,
            outcomes: capture.then(Vec::new),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{GdprBenchClient, InProcessFactory};
    use crate::spec::Role;
    use gdpr_core::acl::Grant;
    use gdpr_core::policy::CompliancePolicy;
    use gdpr_core::store::GdprStore;
    use kvstore::config::StoreConfig;
    use std::sync::Arc;

    fn store() -> Arc<GdprStore> {
        let store = GdprStore::open(
            CompliancePolicy::eventual(),
            StoreConfig::in_memory().aof_in_memory().shards(2),
            Box::new(audit::sink::NullSink::new()),
        )
        .expect("store opens");
        for (actor, purpose) in BenchSpec::grants() {
            store.grant(Grant::new(actor, purpose));
        }
        Arc::new(store)
    }

    #[test]
    fn load_then_run_produces_per_right_histograms() {
        let store = store();
        let spec = BenchSpec::new(Role::Regulator, 8, 3, 200).seed(9);
        let runner = Runner::new(2);
        let load = runner
            .run_load(&spec, &InProcessFactory::for_load(Arc::clone(&store)))
            .expect("load runs");
        assert_eq!(load.operations, spec.record_count());
        assert_eq!(load.denials, 0, "loader must never be denied");
        assert_eq!(load.failures, 0);
        let run = runner
            .run_transactions(&spec, &InProcessFactory::for_role(store, Role::Regulator))
            .expect("txns run");
        assert_eq!(run.operations, 200);
        assert_eq!(run.overall.count(), 200);
        assert!(run.per_right.contains_key("keysof"));
        assert!(run.per_right.contains_key("stats"));
        let per_right_total: u64 = run.per_right.values().map(LatencyHistogram::count).sum();
        assert_eq!(per_right_total, 200);
        assert!(run.throughput() > 0.0);
    }

    #[test]
    fn captured_outcomes_are_thread_count_invariant() {
        // A read-only role: with no state mutation in the mix, the outcome
        // stream is a pure function of the op stream, so any thread count
        // must reassemble the identical vector.
        let spec = BenchSpec::new(Role::Processor, 6, 2, 150).seed(3);
        let mut streams = Vec::new();
        for threads in [1usize, 3] {
            let store = store();
            let runner = Runner::new(threads).capture_outcomes(true);
            runner
                .run_load(&spec, &InProcessFactory::for_load(Arc::clone(&store)))
                .expect("load runs");
            let run = runner
                .run_transactions(&spec, &InProcessFactory::for_role(store, Role::Processor))
                .expect("txns run");
            streams.push(run.outcomes.expect("captured"));
        }
        assert_eq!(
            streams[0], streams[1],
            "outcome stream must not depend on thread count"
        );
    }

    #[test]
    fn factory_connect_failure_propagates() {
        struct Refuses;
        impl crate::client::ClientFactory for Refuses {
            fn connect(&self) -> Result<Box<dyn GdprBenchClient + Send>, String> {
                Err("nope".into())
            }
        }
        let spec = BenchSpec::new(Role::Processor, 2, 2, 10);
        let err = Runner::new(1).run_load(&spec, &Refuses).unwrap_err();
        assert!(err.contains("nope"));
    }
}
