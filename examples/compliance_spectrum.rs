//! The compliance spectrum, measured: run the same small YCSB-style
//! workload under the unmodified baseline, eventual compliance and strict
//! compliance, and print the throughput cost of each step — a miniature of
//! the paper's Figure 1 that completes in seconds.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example compliance_spectrum
//! ```

use std::collections::BTreeMap;
use std::error::Error;
use std::time::Instant;

use gdpr_storage::gdpr_core::acl::Grant;
use gdpr_storage::gdpr_core::compliance::assess;
use gdpr_storage::gdpr_core::metadata::PersonalMetadata;
use gdpr_storage::gdpr_core::policy::CompliancePolicy;
use gdpr_storage::gdpr_core::store::{AccessContext, GdprStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const RECORDS: usize = 2_000;
const OPERATIONS: usize = 10_000;

fn run_workload(store: &GdprStore) -> Result<f64, Box<dyn Error>> {
    store.grant(Grant::new("app", "service"));
    let ctx = AccessContext::new("app", "service");
    let mut rng = StdRng::seed_from_u64(7);

    // Load phase.
    let mut fields = BTreeMap::new();
    fields.insert("field0".to_string(), vec![b'x'; 100]);
    for i in 0..RECORDS {
        let meta = PersonalMetadata::new(&format!("subject-{i}")).with_purpose("service");
        store.put_record(&ctx, &format!("user{i:08}"), &fields, meta)?;
    }

    // Transaction phase: 50/50 reads and updates over a uniform keyspace.
    let started = Instant::now();
    for _ in 0..OPERATIONS {
        let key = format!("user{:08}", rng.gen_range(0..RECORDS));
        if rng.gen_bool(0.5) {
            store.get_record(&ctx, &key)?;
        } else {
            store.update_record(&ctx, &key, &fields)?;
        }
    }
    Ok(OPERATIONS as f64 / started.elapsed().as_secs_f64())
}

fn main() -> Result<(), Box<dyn Error>> {
    println!("compliance spectrum — {RECORDS} records, {OPERATIONS} operations (50% reads / 50% updates)\n");
    let mut baseline = 0.0f64;
    for policy in [
        CompliancePolicy::unmodified(),
        CompliancePolicy::eventual(),
        CompliancePolicy::strict(),
    ] {
        let name = policy.name.clone();
        let assessment = assess(&policy);
        let store = GdprStore::open_in_memory(policy)?;
        let throughput = run_workload(&store)?;
        if baseline == 0.0 {
            baseline = throughput;
        }
        println!(
            "{:<12} {:>10.0} ops/s  ({:>5.1}% of baseline)   gaps: {:<2}  strict: {}",
            name,
            throughput,
            throughput / baseline * 100.0,
            assessment.gaps().len(),
            assessment.strict
        );
    }
    println!("\npaper reference: monitoring w/ sync fsync ≈5% of baseline; everysec ≈30%; encryption ≈30%");
    Ok(())
}
