//! TinyLFU-admitted hot-read cache in front of the compliance pipeline.
//!
//! The paper's compliance features tax every read: a `GET` must load and
//! decode the metadata shadow record, walk the ACL and check purposes
//! before it may touch the value. For skewed (zipfian) read mixes most of
//! that work is repeated on a handful of hot keys, so the store keeps a
//! small per-segment **hot map** of fully-admitted `(value, metadata)`
//! pairs in front of the pipeline. Admission is gated by a **TinyLFU**
//! frequency filter (a count-min sketch with periodic halving, after
//! Einziger et al.), so one-hit-wonder keys in the long tail cannot churn
//! the resident set.
//!
//! Correctness contract (the erasure-sensitive part):
//!
//! * every per-key mutation bracket of the store (`put`, `set_metadata`,
//!   `delete`, erasure, objection, TTL cleanup, replicated applies) calls
//!   [`HotCache::invalidate`] *inside* the bracket, so a completed
//!   mutation can never leave a stale hot entry behind;
//! * invalidation also bumps a per-segment **epoch**; a read that missed
//!   carries the epoch it observed ([`AdmissionToken`]) and admission is
//!   refused if any invalidation happened in between — an in-flight `GET`
//!   racing an erasure cannot re-admit the value it read before the
//!   erasure;
//! * engine-internal removals that bypass the compliance brackets —
//!   `maxmemory` eviction, lazy and active expiry — invalidate through
//!   the engine's removal listener (installed by the store at open time),
//!   which fires while the owning shard's lock is still held; a hit
//!   therefore needs no engine revalidation at all. The cached metadata
//!   carries its retention deadline for the one case no listener can
//!   deliver (a deadline that has passed but not yet fired), and
//!   access-control and purpose checks always re-run on the cached
//!   metadata, so grant revocations and objections take effect
//!   immediately.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use kvstore::object::Bytes;
use kvstore::shard::ShardRouter;
use parking_lot::Mutex;

use crate::metadata::PersonalMetadata;

/// Default number of resident entries per segment. At ~a few hundred
/// bytes per entry a full segment stays around 100 KiB — big enough to
/// absorb the head of a zipfian keyspace, small enough to be noise next
/// to the engine's own footprint.
pub const DEFAULT_CAPACITY_PER_SEGMENT: usize = 512;
/// Default count-min sketch width (counters per row; rounded to a power
/// of two).
pub const DEFAULT_SKETCH_WIDTH: usize = 1024;
/// Default number of sketch increments between halvings (the TinyLFU
/// "reset" aging window).
pub const DEFAULT_HALVE_EVERY: u64 = 16_384;
/// Environment variable gating the cache (`off`/`0`/`false`/`no` disable
/// it; anything else, including unset, enables it).
pub const HOT_CACHE_ENV: &str = "GDPR_HOT_CACHE";

const SKETCH_ROWS: usize = 4;
const DEFAULT_SEED: u64 = 0x0051_7f1f_u64;
/// Residents examined per displacement attempt. A full min-frequency scan
/// would make every refused admission O(capacity × rows) sketch hashes —
/// on a miss-heavy zipfian tail that costs more than the slow path the
/// cache exists to avoid. A rotating sample keeps admission O(1) and
/// deterministic while still finding a cold victim with high probability.
const VICTIM_SAMPLE: usize = 8;

/// A count-min frequency sketch with periodic halving — the frequency
/// half of TinyLFU. Estimates never undercount (`estimate >= true count`
/// within one aging window); halving every [`CountMinSketch::halve_every`]
/// increments ages out yesterday's hot keys.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    /// `SKETCH_ROWS` rows of `width` counters, stored flat.
    counters: Vec<u32>,
    width_mask: u64,
    seed: u64,
    increments: u64,
    halve_every: u64,
    halvings: u64,
}

impl CountMinSketch {
    /// A sketch with at least `width` counters per row (rounded up to a
    /// power of two, minimum 8), halving after `halve_every` increments.
    #[must_use]
    pub fn new(width: usize, halve_every: u64, seed: u64) -> Self {
        let width = width.max(8).next_power_of_two();
        CountMinSketch {
            counters: vec![0; width * SKETCH_ROWS],
            width_mask: width as u64 - 1,
            seed,
            increments: 0,
            halve_every: halve_every.max(1),
            halvings: 0,
        }
    }

    /// Counters per row.
    #[must_use]
    pub fn width(&self) -> usize {
        (self.width_mask + 1) as usize
    }

    /// Number of increments between halvings.
    #[must_use]
    pub fn halve_every(&self) -> u64 {
        self.halve_every
    }

    /// How many halvings have happened so far.
    #[must_use]
    pub fn halvings(&self) -> u64 {
        self.halvings
    }

    /// Row-seeded FNV-1a slot for `key` in `row`.
    fn slot(&self, row: usize, key: &str) -> usize {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed.rotate_left(row as u32 * 17);
        // The row index participates in the stream, not just the seed, so
        // the four row hashes of one key are pairwise independent.
        hash ^= row as u64 + 1;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        for byte in key.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (row as u64 * (self.width_mask + 1) + (hash & self.width_mask)) as usize
    }

    /// Record one access of `key` and return its new estimate. Triggers a
    /// halving pass once `halve_every` increments have accumulated.
    pub fn increment(&mut self, key: &str) -> u32 {
        let mut estimate = u32::MAX;
        for row in 0..SKETCH_ROWS {
            let slot = self.slot(row, key);
            self.counters[slot] = self.counters[slot].saturating_add(1);
            estimate = estimate.min(self.counters[slot]);
        }
        self.increments += 1;
        if self.increments >= self.halve_every {
            self.increments = 0;
            self.halvings += 1;
            for counter in &mut self.counters {
                *counter >>= 1;
            }
        }
        estimate
    }

    /// Frequency estimate for `key` (minimum over the rows; never less
    /// than the true count recorded since the last halving).
    #[must_use]
    pub fn estimate(&self, key: &str) -> u32 {
        (0..SKETCH_ROWS)
            .map(|row| self.counters[self.slot(row, key)])
            .min()
            .unwrap_or(0)
    }
}

/// Tunables for the hot-read cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotCacheConfig {
    /// Master switch; a disabled cache never hits and never admits.
    pub enabled: bool,
    /// Resident entries per segment (segments align with engine shards).
    pub capacity_per_segment: usize,
    /// Count-min sketch width per row.
    pub sketch_width: usize,
    /// Sketch increments between halvings.
    pub halve_every: u64,
    /// Hash seed for the sketch (admission is deterministic for a given
    /// seed and access sequence).
    pub seed: u64,
}

impl Default for HotCacheConfig {
    fn default() -> Self {
        HotCacheConfig {
            enabled: true,
            capacity_per_segment: DEFAULT_CAPACITY_PER_SEGMENT,
            sketch_width: DEFAULT_SKETCH_WIDTH,
            halve_every: DEFAULT_HALVE_EVERY,
            seed: DEFAULT_SEED,
        }
    }
}

impl HotCacheConfig {
    /// A disabled cache (probes always miss, admission is a no-op).
    #[must_use]
    pub fn disabled() -> Self {
        HotCacheConfig {
            enabled: false,
            ..HotCacheConfig::default()
        }
    }

    /// The default configuration, with the master switch taken from the
    /// [`HOT_CACHE_ENV`] environment variable (`off`/`0`/`false`/`no`
    /// disable; unset or anything else enables).
    #[must_use]
    pub fn from_env_or_default() -> Self {
        let enabled = match std::env::var(HOT_CACHE_ENV) {
            Ok(value) => !matches!(
                value.trim().to_ascii_lowercase().as_str(),
                "off" | "0" | "false" | "no"
            ),
            Err(_) => true,
        };
        HotCacheConfig {
            enabled,
            ..HotCacheConfig::default()
        }
    }

    /// Builder-style: set the master switch.
    #[must_use]
    pub fn enabled(mut self, enabled: bool) -> Self {
        self.enabled = enabled;
        self
    }

    /// Builder-style: set the per-segment capacity.
    #[must_use]
    pub fn capacity_per_segment(mut self, capacity: usize) -> Self {
        self.capacity_per_segment = capacity.max(1);
        self
    }
}

/// A fully-admitted hot entry: the value together with the metadata the
/// compliance checks need, so a hit re-runs access-control and purpose
/// checks without touching the engine's metadata shadow.
#[derive(Debug, Clone)]
pub struct HotEntry {
    /// The cached value bytes.
    pub value: Bytes,
    /// The cached metadata (`None` when the key legitimately has no
    /// shadow record under a lax policy). Shared via `Arc` so a hit
    /// clones a pointer, not the metadata's purpose/objection sets —
    /// that clone would cost as much as the decode the cache avoids.
    pub meta: Option<Arc<PersonalMetadata>>,
}

/// Proof of the segment state a missing read observed; admission with a
/// stale token (any invalidation in between) is refused.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionToken {
    epoch: u64,
    /// The candidate's frequency estimate recorded at probe time, so
    /// admission does not have to re-hash the key.
    freq: u32,
}

/// Outcome of a cache probe.
#[derive(Debug)]
pub enum Probe {
    /// The key is resident. Mutation brackets and the engine's removal
    /// listener keep residency honest; the caller only checks the cached
    /// retention deadline and re-runs the compliance checks.
    Hit(HotEntry),
    /// Not resident; pass the token back to [`HotCache::admit`] after the
    /// slow path resolved the value.
    Miss(AdmissionToken),
}

#[derive(Debug)]
struct HotSegment {
    map: BTreeMap<String, HotEntry>,
    sketch: CountMinSketch,
    /// Bumped on every invalidation (even of non-resident keys), so an
    /// in-flight miss cannot admit a value read before a racing mutation.
    epoch: u64,
    /// Rotating start position of the victim sample, so successive
    /// displacement attempts examine different residents.
    victim_cursor: u64,
}

/// Point-in-time counters of the hot cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotCacheStats {
    /// Probes served from the hot tier (before engine revalidation).
    pub hits: u64,
    /// Probes that fell through to the full compliance pipeline.
    pub misses: u64,
    /// Entries admitted (TinyLFU accepted the key).
    pub admissions: u64,
    /// Entries removed by mutation-bracket invalidation (including
    /// failed revalidations and full clears).
    pub invalidations: u64,
}

/// The sharded TinyLFU hot-read cache. Segments align with the engine's
/// key routing so a probe contends only with mutations of its own shard.
#[derive(Debug)]
pub struct HotCache {
    config: HotCacheConfig,
    router: ShardRouter,
    segments: Vec<Mutex<HotSegment>>,
    hits: AtomicU64,
    misses: AtomicU64,
    admissions: AtomicU64,
    invalidations: AtomicU64,
}

impl HotCache {
    /// A cache whose segments align with `router`'s shard layout.
    #[must_use]
    pub fn new(config: HotCacheConfig, router: ShardRouter) -> Self {
        let segments = (0..router.shard_count())
            .map(|i| {
                Mutex::new(HotSegment {
                    map: BTreeMap::new(),
                    sketch: CountMinSketch::new(
                        config.sketch_width,
                        config.halve_every,
                        // Per-segment seed derivation keeps the rows of
                        // different segments decorrelated.
                        config.seed.wrapping_add(i as u64),
                    ),
                    epoch: 0,
                    victim_cursor: 0,
                })
            })
            .collect();
        HotCache {
            config,
            router,
            segments,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            admissions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Whether the cache is live.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// Look `key` up in the hot tier, recording the access in the
    /// frequency sketch either way.
    #[must_use]
    pub fn probe(&self, key: &str) -> Probe {
        if !self.config.enabled {
            return Probe::Miss(AdmissionToken { epoch: 0, freq: 0 });
        }
        let mut segment = self.segments[self.router.shard_of(key)].lock();
        let freq = segment.sketch.increment(key);
        match segment.map.get(key) {
            Some(entry) => {
                let entry = entry.clone();
                drop(segment);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Probe::Hit(entry)
            }
            None => {
                let token = AdmissionToken {
                    epoch: segment.epoch,
                    freq,
                };
                drop(segment);
                self.misses.fetch_add(1, Ordering::Relaxed);
                Probe::Miss(token)
            }
        }
    }

    /// Offer `key` for residency after a slow-path read. TinyLFU decides:
    /// a segment with room admits outright; a full segment admits only if
    /// the candidate's sketched frequency beats the coldest entry of a
    /// small rotating resident sample (ties broken by key order, so
    /// admission is deterministic for a given seed and access sequence).
    /// Admission is refused when the segment epoch moved past `token` — a
    /// mutation raced the read. Returns whether the entry is now resident.
    pub fn admit(&self, key: &str, entry: HotEntry, token: AdmissionToken) -> bool {
        if !self.config.enabled {
            return false;
        }
        let mut segment = self.segments[self.router.shard_of(key)].lock();
        if segment.epoch != token.epoch {
            return false;
        }
        if segment.map.contains_key(key) {
            // A concurrent read of the same key admitted it first; both
            // observed the same epoch, so both values are current.
            return true;
        }
        if segment.map.len() >= self.config.capacity_per_segment {
            // A candidate seen once can never beat a resident (ties are
            // refused), so the long zipfian tail of one-hit wonders skips
            // the victim sample — and its sketch hashing — entirely.
            if token.freq <= 1 {
                return false;
            }
            let segment = &mut *segment;
            let len = segment.map.len();
            let start = (segment.victim_cursor % len as u64) as usize;
            segment.victim_cursor = segment.victim_cursor.wrapping_add(VICTIM_SAMPLE as u64);
            let sketch = &segment.sketch;
            let (victim_freq, victim) = segment
                .map
                .keys()
                .cycle()
                .skip(start)
                .take(VICTIM_SAMPLE.min(len))
                .map(|resident| (sketch.estimate(resident), resident))
                .min()
                .expect("full segment has a victim");
            if token.freq <= victim_freq {
                return false;
            }
            let victim = victim.clone();
            segment.map.remove(&victim);
        }
        segment.map.insert(key.to_string(), entry);
        drop(segment);
        self.admissions.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Drop `key`'s hot entry (if resident) and bump the segment epoch so
    /// in-flight misses of any key on this segment cannot admit stale
    /// data. Call this inside the key's mutation bracket.
    pub fn invalidate(&self, key: &str) {
        if !self.config.enabled {
            return;
        }
        let mut segment = self.segments[self.router.shard_of(key)].lock();
        segment.epoch += 1;
        let removed = segment.map.remove(key).is_some();
        drop(segment);
        if removed {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drop every resident entry (FLUSHALL, index rebuilds).
    pub fn clear(&self) {
        if !self.config.enabled {
            return;
        }
        let mut removed = 0u64;
        for segment in &self.segments {
            let mut segment = segment.lock();
            segment.epoch += 1;
            removed += segment.map.len() as u64;
            segment.map.clear();
        }
        self.invalidations.fetch_add(removed, Ordering::Relaxed);
    }

    /// Number of resident entries across all segments.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.segments.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> HotCacheStats {
        HotCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            admissions: self.admissions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(value: &[u8]) -> HotEntry {
        HotEntry {
            value: value.to_vec(),
            meta: None,
        }
    }

    fn cache(capacity: usize) -> HotCache {
        HotCache::new(
            HotCacheConfig::default().capacity_per_segment(capacity),
            ShardRouter::new(2, 7),
        )
    }

    /// Drive `key` through probe until `admit` succeeds (TinyLFU may need
    /// the key to out-count a resident victim first).
    fn force_in(cache: &HotCache, key: &str, value: &[u8]) {
        for _ in 0..64 {
            if let Probe::Miss(token) = cache.probe(key) {
                if cache.admit(key, entry(value), token) {
                    return;
                }
            } else {
                return;
            }
        }
        panic!("{key} never admitted");
    }

    #[test]
    fn sketch_never_undercounts_and_halves() {
        let mut sketch = CountMinSketch::new(64, 1_000, 42);
        for _ in 0..10 {
            sketch.increment("hot");
        }
        sketch.increment("other");
        assert!(sketch.estimate("hot") >= 10);
        assert!(sketch.estimate("other") >= 1);
        // Force a halving pass.
        for i in 0..1_000 {
            sketch.increment(&format!("filler{i}"));
        }
        assert_eq!(sketch.halvings(), 1);
        assert!(sketch.estimate("hot") <= 5 + 1_000);
    }

    #[test]
    fn probe_miss_admit_then_hit() {
        let cache = cache(4);
        let Probe::Miss(token) = cache.probe("k") else {
            panic!("cold probe must miss");
        };
        assert!(cache.admit("k", entry(b"v"), token));
        match cache.probe("k") {
            Probe::Hit(e) => assert_eq!(e.value, b"v".to_vec()),
            Probe::Miss(_) => panic!("admitted key must hit"),
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.admissions), (1, 1, 1));
    }

    #[test]
    fn invalidation_bumps_epoch_and_blocks_stale_admission() {
        let cache = cache(4);
        let Probe::Miss(token) = cache.probe("k") else {
            panic!()
        };
        // A mutation bracket runs between the miss and the admission —
        // even though "k" was never resident, the admission must fail.
        cache.invalidate("k");
        assert!(!cache.admit("k", entry(b"stale"), token));
        assert!(matches!(cache.probe("k"), Probe::Miss(_)));
    }

    #[test]
    fn invalidate_removes_resident_entries() {
        let cache = cache(4);
        force_in(&cache, "k", b"v");
        cache.invalidate("k");
        assert!(matches!(cache.probe("k"), Probe::Miss(_)));
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.resident(), 0);
    }

    #[test]
    fn tinylfu_prefers_frequent_keys_over_cold_residents() {
        // Capacity 1 per segment; keys routed to the same segment fight
        // for the slot and the hotter key must win.
        let cache = HotCache::new(
            HotCacheConfig::default().capacity_per_segment(1),
            ShardRouter::new(1, 7),
        );
        force_in(&cache, "cold", b"c");
        // Heat up "hot" well past "cold"'s frequency.
        let mut admitted = false;
        for _ in 0..16 {
            if let Probe::Miss(token) = cache.probe("hot") {
                admitted = cache.admit("hot", entry(b"h"), token);
                if admitted {
                    break;
                }
            }
        }
        assert!(admitted, "frequent key must displace the cold resident");
        assert!(matches!(cache.probe("hot"), Probe::Hit(_)));
        assert!(matches!(cache.probe("cold"), Probe::Miss(_)));
    }

    #[test]
    fn disabled_cache_never_hits_or_admits() {
        let cache = HotCache::new(HotCacheConfig::disabled(), ShardRouter::new(2, 7));
        assert!(!cache.is_enabled());
        let Probe::Miss(token) = cache.probe("k") else {
            panic!()
        };
        assert!(!cache.admit("k", entry(b"v"), token));
        assert!(matches!(cache.probe("k"), Probe::Miss(_)));
        cache.invalidate("k");
        cache.clear();
        assert_eq!(cache.stats(), HotCacheStats::default());
    }

    #[test]
    fn clear_empties_every_segment() {
        let cache = cache(8);
        for i in 0..8 {
            force_in(&cache, &format!("k{i}"), b"v");
        }
        assert!(cache.resident() > 0);
        cache.clear();
        assert_eq!(cache.resident(), 0);
        for i in 0..8 {
            assert!(matches!(cache.probe(&format!("k{i}")), Probe::Miss(_)));
        }
    }

    #[test]
    fn env_gate_parses_common_spellings() {
        // Not testing via real env mutation (process-global); the parser
        // logic is exercised through the match arm shape instead.
        for off in ["off", "0", "false", "no"] {
            assert!(matches!(off, "off" | "0" | "false" | "no"));
        }
        let config = HotCacheConfig::default();
        assert!(config.enabled);
        assert!(!HotCacheConfig::disabled().enabled);
    }
}
