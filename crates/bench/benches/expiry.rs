//! Figure 2 companion: per-cycle cost of the expiry policies, and the full
//! simulated erasure-delay experiment at a small scale.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdpr_core::retention::ErasureDelayExperiment;
use kvstore::clock::SimClock;
use kvstore::db::Db;
use kvstore::expire::{run_expire_cycle, ActiveExpireConfig, ExpiryMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn populated_db(total: usize, expired_fraction: f64) -> (Db, SimClock) {
    let clock = SimClock::new(0);
    let mut db = Db::new(Arc::new(clock.clone()));
    let expired = (total as f64 * expired_fraction) as usize;
    for i in 0..total {
        let key = format!("key{i:08}");
        db.set(&key, vec![0u8; 64]);
        db.expire_in_millis(&key, if i < expired { 1_000 } else { 1_000_000_000 });
    }
    clock.advance_millis(2_000);
    (db, clock)
}

fn bench_expiry(c: &mut Criterion) {
    let mut group = c.benchmark_group("expiry");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    for &total in &[10_000usize, 50_000] {
        group.bench_with_input(
            BenchmarkId::new("lazy_cycle", total),
            &total,
            |b, &total| {
                b.iter_batched(
                    || populated_db(total, 0.2),
                    |(mut db, _clock)| {
                        let mut rng = StdRng::seed_from_u64(1);
                        run_expire_cycle(
                            &mut db,
                            ExpiryMode::LazyProbabilistic,
                            &ActiveExpireConfig::default(),
                            &mut rng,
                        )
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );

        group.bench_with_input(
            BenchmarkId::new("strict_sweep", total),
            &total,
            |b, &total| {
                b.iter_batched(
                    || populated_db(total, 0.2),
                    |(mut db, _clock)| {
                        let mut rng = StdRng::seed_from_u64(1);
                        run_expire_cycle(
                            &mut db,
                            ExpiryMode::Strict,
                            &ActiveExpireConfig::default(),
                            &mut rng,
                        )
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }

    // Full Figure 2 point (simulated) at 2k keys for both policies.
    for mode in [ExpiryMode::LazyProbabilistic, ExpiryMode::Strict] {
        group.bench_with_input(
            BenchmarkId::new("figure2_simulation_2k", format!("{mode:?}")),
            &mode,
            |b, &mode| {
                b.iter(|| ErasureDelayExperiment::figure2(2_000, mode).run(1));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_expiry);
criterion_main!(benches);
