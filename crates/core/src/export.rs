//! A small JSON writer used for the data-portability export (Article 20).
//!
//! Article 20 requires personal data to be handed over "in a structured,
//! commonly used and machine-readable format"; JSON is the obvious choice.
//! To keep the workspace within its approved dependency set this module
//! implements the tiny subset of JSON generation the export needs (objects,
//! arrays, strings, numbers, booleans) rather than pulling in a full
//! serializer.
//!
//! Besides the [`Json`] tree builder (used for small ad-hoc documents)
//! the module provides the **streaming export renderer**: the portability
//! envelope is written as header → items → footer directly into one
//! reused `String`, so [`crate::store::GdprStore::right_to_portability`]
//! never materializes a value tree, and the paged wire form
//! (`GDPR.EXPORT subject CURSOR c [COUNT n]`, see [`ExportCursor`])
//! produces chunks whose concatenation is byte-identical to the
//! monolithic export.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use kvstore::object::Bytes;

use crate::metadata::PersonalMetadata;

/// Format tag of the portability envelope. `v2` moved `item_count`
/// *after* the `items` array so a paged export can stream items without
/// knowing the final count up front.
pub const EXPORT_FORMAT: &str = "gdpr-portability-export/v2";

/// Default `COUNT` of a paged export when the client does not send one.
pub const DEFAULT_EXPORT_PAGE_ITEMS: usize = 128;

/// Append `value`'s decimal digits directly to `out` (no intermediate
/// `format!` allocation — this runs several times per exported item).
pub fn write_u64(out: &mut String, value: u64) {
    let mut buf = [0u8; 20];
    let mut at = buf.len();
    let mut v = value;
    loop {
        at -= 1;
        buf[at] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[at..]).expect("decimal digits are ASCII"));
}

fn write_i64(out: &mut String, value: i64) {
    if value < 0 {
        out.push('-');
    }
    write_u64(out, value.unsigned_abs());
}

/// Append `s` as a quoted, escaped JSON string.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Streaming form of [`bytes_to_json`]: append the value rendering (UTF-8
/// passthrough, or `"hex:…"` for binary data) directly to `out`.
pub fn write_bytes_value(out: &mut String, bytes: &[u8]) {
    match std::str::from_utf8(bytes) {
        Ok(text) => write_json_string(out, text),
        Err(_) => {
            out.push_str("\"hex:");
            for b in bytes {
                out.push(char::from(HEX_DIGITS[(b >> 4) as usize]));
                out.push(char::from(HEX_DIGITS[(b & 0xf) as usize]));
            }
            out.push('"');
        }
    }
}

const HEX_DIGITS: &[u8; 16] = b"0123456789abcdef";

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    s.as_bytes()
        .chunks(2)
        .map(|pair| {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            Some((hi * 16 + lo) as u8)
        })
        .collect()
}

/// Open the portability envelope: everything up to and including the `[`
/// of the `items` array. Written exactly once, by the first page (or the
/// monolithic export).
pub fn write_export_header(out: &mut String, subject: &str, generated_at_ms: u64) {
    out.push_str("{\"format\":\"");
    out.push_str(EXPORT_FORMAT);
    out.push_str("\",\"subject\":");
    write_json_string(out, subject);
    out.push_str(",\"generated_at_ms\":");
    write_u64(out, generated_at_ms);
    out.push_str(",\"items\":[");
}

/// Close the portability envelope. Written exactly once, by the last page
/// (or the monolithic export); `item_count` is the total across all pages.
pub fn write_export_footer(out: &mut String, item_count: u64) {
    out.push_str("],\"item_count\":");
    write_u64(out, item_count);
    out.push('}');
}

/// Append one exported item. `emitted_before` is the number of items
/// already in the `items` array across *all* pages — it decides whether a
/// separating comma is needed, which is what makes page concatenation
/// byte-identical to the monolithic render.
pub fn write_export_item(
    out: &mut String,
    emitted_before: u64,
    key: &str,
    metadata: &PersonalMetadata,
    value: Option<&[u8]>,
    fields: Option<&BTreeMap<String, Bytes>>,
) {
    if emitted_before > 0 {
        out.push(',');
    }
    out.push_str("{\"key\":");
    write_json_string(out, key);
    out.push_str(",\"subject\":");
    write_json_string(out, &metadata.subject);
    out.push_str(",\"purposes\":[");
    for (i, purpose) in metadata.purposes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(out, purpose);
    }
    out.push_str("],\"recipients\":[");
    for (i, recipient) in metadata.recipients.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(out, recipient);
    }
    out.push_str("],\"origin\":");
    write_json_string(out, &metadata.origin);
    out.push_str(",\"location\":");
    write_json_string(out, metadata.location.as_str());
    out.push_str(",\"expires_at_ms\":");
    match metadata.expires_at_ms {
        Some(ms) => write_u64(out, ms),
        None => out.push_str("null"),
    }
    out.push_str(",\"automated_decisions\":");
    out.push_str(if metadata.automated_decisions {
        "true"
    } else {
        "false"
    });
    if let Some(value) = value {
        out.push_str(",\"value\":");
        write_bytes_value(out, value);
    }
    if let Some(fields) = fields {
        out.push_str(",\"fields\":{");
        for (i, (field, value)) in fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(out, field);
            out.push(':');
            write_bytes_value(out, value);
        }
        out.push('}');
    }
    out.push('}');
}

/// Resumption cursor of a paged export (`GDPR.EXPORT subject CURSOR c`).
///
/// The cursor is a *position in the sorted key list*, identified by the
/// last key the previous page consumed — not by an index — so it stays
/// stable while the keyspace changes underneath:
///
/// * keys **erased after the cursor was handed out** are simply absent
///   when the next page re-reads the index — they may be omitted from the
///   export, but erased data is never served;
/// * keys erased *before* the cursor position cannot shift later keys
///   into or out of a page (resumption is `key > last_key`, and the
///   per-subject key list is always read in sorted order);
/// * keys inserted mid-export are included iff they sort after the
///   cursor position.
///
/// Clients treat the token as opaque: `"0"` starts an export, and each
/// reply carries the token for the next page (`"0"` again when done).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportCursor {
    /// Items rendered by all previous pages (lets the final page close
    /// the envelope with the exact `item_count`, and decides comma
    /// placement so pages concatenate byte-identically).
    pub emitted: u64,
    /// Last key the previous page consumed; the next page resumes at the
    /// first subject key strictly greater than this.
    pub last_key: String,
}

impl ExportCursor {
    /// Encode into the opaque wire token (`v2:<emitted>:<hex(last_key)>`).
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(8 + self.last_key.len() * 2);
        out.push_str("v2:");
        write_u64(&mut out, self.emitted);
        out.push(':');
        for b in self.last_key.as_bytes() {
            out.push(char::from(HEX_DIGITS[(b >> 4) as usize]));
            out.push(char::from(HEX_DIGITS[(b & 0xf) as usize]));
        }
        out
    }

    /// Parse a wire token.
    ///
    /// Returns `None` for a malformed token, `Some(None)` for the start
    /// token `"0"`, and `Some(Some(cursor))` for a resumption point.
    #[must_use]
    pub fn parse(token: &str) -> Option<Option<Self>> {
        if token == "0" {
            return Some(None);
        }
        let rest = token.strip_prefix("v2:")?;
        let (emitted, hex_key) = rest.split_once(':')?;
        let emitted = emitted.parse().ok()?;
        let last_key = String::from_utf8(hex_decode(hex_key)?).ok()?;
        Some(Some(ExportCursor { emitted, last_key }))
    }
}

/// One page produced by [`crate::store::GdprStore::export_page`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportPage {
    /// The rendered chunk. Concatenating every page's chunk in order
    /// yields exactly the monolithic export document.
    pub chunk: String,
    /// Cursor for the next page, or `None` when this page closed the
    /// envelope (the wire layer encodes `None` as the token `"0"`).
    pub next_cursor: Option<ExportCursor>,
    /// Items rendered into this chunk.
    pub items_rendered: u64,
}

/// A JSON value under construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (rendered without a trailing `.0` for integers).
    Number(f64),
    /// A string (escaped on render).
    String(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for a string value.
    pub fn string(s: impl Into<String>) -> Self {
        Json::String(s.into())
    }

    /// Convenience constructor for an integer value.
    #[must_use]
    pub fn integer(value: u64) -> Self {
        Json::Number(value as f64)
    }

    /// Convenience constructor for an empty object builder.
    #[must_use]
    pub fn object() -> JsonObject {
        JsonObject { fields: Vec::new() }
    }

    /// Render to a compact JSON string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write_i64(out, *n as i64);
                } else {
                    // Non-integral numbers are rare (nothing in the export
                    // produces them today); `write!` still appends in place
                    // without a temporary String.
                    let _ = write!(out, "{n}");
                }
            }
            Json::String(s) => write_json_string(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Fluent builder for JSON objects.
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    fields: Vec<(String, Json)>,
}

impl JsonObject {
    /// Add a field.
    #[must_use]
    pub fn field(mut self, key: &str, value: Json) -> Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Finish the object.
    #[must_use]
    pub fn build(self) -> Json {
        Json::Object(self.fields)
    }
}

/// Render arbitrary bytes for inclusion in an export: UTF-8 text is passed
/// through, binary data is hex-encoded with a marker prefix.
#[must_use]
pub fn bytes_to_json(bytes: &[u8]) -> Json {
    match std::str::from_utf8(bytes) {
        Ok(text) => Json::string(text),
        Err(_) => Json::string(format!("hex:{}", gdpr_crypto::sha256::to_hex(bytes))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Bool(false).render(), "false");
        assert_eq!(Json::integer(42).render(), "42");
        assert_eq!(Json::Number(1.5).render(), "1.5");
        assert_eq!(Json::string("hi").render(), "\"hi\"");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::string("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::string("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn arrays_and_objects_render() {
        let value = Json::object()
            .field("subject", Json::string("alice"))
            .field(
                "keys",
                Json::Array(vec![Json::string("k1"), Json::string("k2")]),
            )
            .field("count", Json::integer(2))
            .field("complete", Json::Bool(true))
            .build();
        assert_eq!(
            value.render(),
            "{\"subject\":\"alice\",\"keys\":[\"k1\",\"k2\"],\"count\":2,\"complete\":true}"
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Array(vec![]).render(), "[]");
        assert_eq!(Json::object().build().render(), "{}");
    }

    #[test]
    fn bytes_conversion() {
        assert_eq!(bytes_to_json(b"plain text").render(), "\"plain text\"");
        let binary = bytes_to_json(&[0xff, 0xfe, 0x00]);
        assert!(binary.render().starts_with("\"hex:"));
    }

    #[test]
    fn large_integers_keep_integer_form() {
        assert_eq!(Json::integer(1_700_000_000_000).render(), "1700000000000");
    }

    #[test]
    fn write_u64_matches_display() {
        for v in [0u64, 1, 9, 10, 42, 999, 1_000, u64::MAX] {
            let mut out = String::new();
            write_u64(&mut out, v);
            assert_eq!(out, v.to_string());
        }
    }

    #[test]
    fn negative_numbers_render() {
        assert_eq!(Json::Number(-42.0).render(), "-42");
        assert_eq!(Json::Number(-1.5).render(), "-1.5");
    }

    #[test]
    fn streamed_bytes_match_tree_renderer() {
        for case in [&b"plain text"[..], &[0xff, 0xfe, 0x00], b"quo\"te\n"] {
            let mut streamed = String::new();
            write_bytes_value(&mut streamed, case);
            assert_eq!(streamed, bytes_to_json(case).render());
        }
    }

    #[test]
    fn export_cursor_roundtrips() {
        let cursor = ExportCursor {
            emitted: 17,
            last_key: "user:alice:email \u{1F512}".to_string(),
        };
        let token = cursor.encode();
        assert_eq!(ExportCursor::parse(&token), Some(Some(cursor)));
        assert_eq!(ExportCursor::parse("0"), Some(None));
    }

    #[test]
    fn malformed_cursors_are_rejected() {
        for bad in ["", "1", "v2:", "v2:abc", "v2:1:zz", "v2:1:abc", "v1:1:ab"] {
            assert_eq!(ExportCursor::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn export_envelope_streams_to_valid_shape() {
        let mut out = String::new();
        write_export_header(&mut out, "alice", 1_000);
        let meta = PersonalMetadata::new("alice").with_purpose("billing");
        write_export_item(&mut out, 0, "k1", &meta, Some(b"v1"), None);
        write_export_item(&mut out, 1, "k2", &meta, Some(b"v2"), None);
        write_export_footer(&mut out, 2);
        assert!(out.starts_with("{\"format\":\"gdpr-portability-export/v2\""));
        assert!(out.contains("\"items\":[{\"key\":\"k1\""));
        assert!(out.contains("},{\"key\":\"k2\""));
        assert!(out.ends_with("],\"item_count\":2}"));
    }
}
