//! Option strategies.

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy producing `Option`s of another strategy's values.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

/// `Some` with probability 3/4, `None` otherwise.
#[must_use]
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.gen_bool(0.75) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
