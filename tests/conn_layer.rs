//! Connection-layer regression battery, run against BOTH transports:
//! over-limit refusal with a final error frame, slow-loris idle
//! enforcement, partial-frame-at-shutdown drain semantics, and the
//! `# Clients` / `clients_*=` stats surfaces.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gdpr_server::client::TcpRemoteClient;
use gdpr_server::dispatch::Dispatcher;
use gdpr_server::tcp::{ServerConfig, TcpServer, TcpServerHandle, Transport};
use gdpr_storage::gdpr_core::acl::Grant;
use gdpr_storage::gdpr_core::policy::CompliancePolicy;
use gdpr_storage::gdpr_core::store::GdprStore;
use gdpr_storage::kvstore::config::StoreConfig;
use gdpr_storage::kvstore::store::KvStore;
use gdpr_storage::resp::command::GdprRequest;
use gdpr_storage::resp::encode::encode_frame;
use gdpr_storage::resp::Frame;

const BOTH: [Transport; 2] = [Transport::Reactor, Transport::Threads];

fn kv_server(transport: Transport, mutate: impl FnOnce(&mut ServerConfig)) -> TcpServerHandle {
    let mut config = ServerConfig {
        transport,
        ..ServerConfig::default()
    };
    mutate(&mut config);
    let dispatcher = Dispatcher::kv(KvStore::open(StoreConfig::in_memory()).unwrap());
    TcpServer::bind(dispatcher, "127.0.0.1:0", config).unwrap()
}

/// Wait (bounded) until `probe` returns true; panics with `what` if not.
fn eventually(what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if probe() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("timed out waiting for: {what}");
}

#[test]
fn over_limit_clients_get_a_final_error_frame_then_the_slot_frees_up() {
    for transport in BOTH {
        let server = kv_server(transport, |c| c.max_connections = 2);
        let addr = server.local_addr();
        let mut a = TcpRemoteClient::connect(addr).unwrap();
        let mut b = TcpRemoteClient::connect(addr).unwrap();
        a.ping().unwrap();
        b.ping().unwrap();

        // The third client is not silently dropped: it receives a final
        // RESP error frame before the close.
        let mut refused = TcpStream::connect(addr).unwrap();
        refused
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut raw = Vec::new();
        refused.read_to_end(&mut raw).unwrap(); // close follows the frame
        assert_eq!(
            String::from_utf8_lossy(&raw),
            "-ERR max connections reached\r\n",
            "{transport}"
        );
        assert_eq!(server.transport_stats().rejected, 1, "{transport}");

        // Closing one served connection frees the slot for a newcomer.
        drop(b);
        eventually("freed slot is accepted again", || {
            TcpRemoteClient::connect(addr)
                .ok()
                .is_some_and(|mut c| c.ping().is_ok())
        });
        a.ping().unwrap();
        server.shutdown();
    }
}

#[test]
fn slow_loris_trickler_is_timed_out_without_stalling_other_connections() {
    for transport in BOTH {
        let server = kv_server(transport, |c| {
            c.read_timeout = Duration::from_millis(200);
            c.poll_interval = Duration::from_millis(10);
        });
        let addr = server.local_addr();

        // The trickler drips a single PING frame one byte at a time, each
        // byte well inside the idle timeout but the complete frame far
        // outside it. Only complete frames count as activity, so it must
        // be disconnected on schedule.
        let trickler = std::thread::spawn(move || {
            let mut socket = TcpStream::connect(addr).unwrap();
            for byte in b"*1\r\n$4\r\nPING\r\n" {
                if socket.write_all(&[*byte]).is_err() {
                    return; // server already closed us: expected
                }
                std::thread::sleep(Duration::from_millis(40));
            }
        });

        // Meanwhile other connections are served normally: existing ones
        // keep round-tripping and brand-new ones are still accepted (the
        // trickler must not pin the accept loop or the event loop).
        let mut steady = TcpRemoteClient::connect(addr).unwrap();
        for i in 0..10 {
            steady.set(&format!("k{i}"), b"v").unwrap();
            std::thread::sleep(Duration::from_millis(30));
        }
        let mut fresh = TcpRemoteClient::connect(addr).unwrap();
        fresh.ping().unwrap();

        eventually("trickler idle timeout recorded", || {
            server.dispatcher().client_stats().idle_timeouts >= 1
        });
        trickler.join().unwrap();
        steady.ping().unwrap();
        server.shutdown();
    }
}

#[test]
fn shutdown_answers_the_complete_frame_and_drops_the_partial_one() {
    for transport in BOTH {
        let server = kv_server(transport, |_| {});
        let addr = server.local_addr();

        // One complete SET plus the dangling prefix of a second frame in
        // a single segment: the complete request must be answered, the
        // partial one dropped, and the drain must not wait for its
        // missing bytes.
        let mut socket = TcpStream::connect(addr).unwrap();
        let mut payload = encode_frame(&Frame::command(["SET", "k", "v"]));
        payload.extend_from_slice(b"*3\r\n$3\r\nSET\r\n$7\r\npartial");
        socket.write_all(&payload).unwrap();
        std::thread::sleep(Duration::from_millis(50));

        let started = Instant::now();
        server.request_shutdown();
        socket
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut raw = Vec::new();
        socket.read_to_end(&mut raw).unwrap();
        assert_eq!(String::from_utf8_lossy(&raw), "+OK\r\n", "{transport}");
        server.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "{transport}: drain hung on a partial frame"
        );
    }
}

#[test]
fn client_counters_surface_in_info_and_gdpr_stats() {
    for transport in BOTH {
        let store = Arc::new(
            GdprStore::open(
                CompliancePolicy::eventual(),
                StoreConfig::in_memory().aof_in_memory(),
                Box::new(gdpr_storage::audit::sink::MemorySink::new()),
            )
            .unwrap(),
        );
        store.grant(Grant::new("app", "billing"));
        let server = TcpServer::bind(
            Dispatcher::gdpr(Arc::clone(&store)),
            "127.0.0.1:0",
            ServerConfig {
                transport,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = TcpRemoteClient::connect(server.local_addr()).unwrap();
        client.auth("app", "billing").unwrap();
        client.set("k", b"v").unwrap();

        let info = match client.roundtrip(&Frame::command(["INFO"])).unwrap() {
            Frame::Bulk(bytes) => String::from_utf8(bytes).unwrap(),
            other => panic!("unexpected {other:?}"),
        };
        for needle in [
            "# Clients",
            "clients_connected:1",
            "clients_accepted:1",
            "clients_rejected_over_limit:0",
            "clients_idle_timeouts:0",
        ] {
            assert!(
                info.contains(needle),
                "{transport}: missing {needle}\n{info}"
            );
        }

        let stats: Vec<String> = match client.gdpr(&GdprRequest::Stats).unwrap() {
            Frame::Array(items) => items
                .iter()
                .map(|f| match f {
                    Frame::Bulk(b) => String::from_utf8_lossy(b).into_owned(),
                    other => panic!("unexpected {other:?}"),
                })
                .collect(),
            other => panic!("unexpected {other:?}"),
        };
        let line_value = |prefix: &str| -> u64 {
            stats
                .iter()
                .find_map(|l| l.strip_prefix(prefix))
                .unwrap_or_else(|| panic!("{transport}: no {prefix} line in {stats:?}"))
                .parse()
                .unwrap()
        };
        assert_eq!(line_value("clients_connected="), 1, "{transport}");
        assert_eq!(line_value("clients_accepted="), 1, "{transport}");
        let wakeups = line_value("clients_reactor_wakeups=");
        let queue_hwm = line_value("clients_worker_queue_hwm=");
        match transport {
            // The reactor woke for every accept/read/completion, and the
            // worker queue carried at least one batch.
            Transport::Reactor => {
                assert!(wakeups > 0, "{transport}");
                assert!(queue_hwm >= 1, "{transport}");
            }
            // Thread-per-connection has neither a reactor nor a queue.
            Transport::Threads => {
                assert_eq!(wakeups, 0, "{transport}");
                assert_eq!(queue_hwm, 0, "{transport}");
            }
        }
        server.shutdown();
    }
}
