//! [`ycsb::client::KvInterface`] adapters for every layer of the stack.
//!
//! * [`EmbeddedAdapter`] — the raw engine (Figure 1's "Unmodified" and the
//!   AOF fsync configurations);
//! * [`GdprAdapter`] — the full compliance layer (metadata, ACL, audit);
//! * [`RemoteAdapter`] — the simulated network path with the optional
//!   TLS-style channel (Figure 1's "LUKS + TLS" configuration runs the
//!   engine on an encrypted device *behind* this adapter).

use std::collections::BTreeMap;

use gdpr_core::acl::Grant;
use gdpr_core::metadata::PersonalMetadata;
use gdpr_core::store::{AccessContext, GdprStore};
use kvstore::store::KvStore;
use netsim::client::RemoteClient;
use ycsb::client::KvInterface;
use ycsb::concurrent::SharedKvInterface;
use ycsb::{Result, WorkloadError};

// The single-blob field codec lives with the TCP client so the simulated
// and real remote adapters share one wire representation by construction.
pub use gdpr_server::client::{decode_fields, encode_fields};

// ---------------------------------------------------------------------------

/// YCSB directly against the embedded engine.
#[derive(Debug)]
pub struct EmbeddedAdapter {
    store: KvStore,
}

impl EmbeddedAdapter {
    /// Wrap an opened engine.
    #[must_use]
    pub fn new(store: KvStore) -> Self {
        EmbeddedAdapter { store }
    }

    /// The wrapped engine.
    #[must_use]
    pub fn store(&self) -> &KvStore {
        &self.store
    }
}

impl KvInterface for EmbeddedAdapter {
    fn insert(&mut self, key: &str, fields: &BTreeMap<String, Vec<u8>>) -> Result<()> {
        SharedKvInterface::insert(self, key, fields)
    }

    fn read(&mut self, key: &str) -> Result<Option<BTreeMap<String, Vec<u8>>>> {
        SharedKvInterface::read(self, key)
    }

    fn update(&mut self, key: &str, fields: &BTreeMap<String, Vec<u8>>) -> Result<()> {
        SharedKvInterface::update(self, key, fields)
    }

    fn scan(&mut self, start_key: &str, count: usize) -> Result<Vec<String>> {
        SharedKvInterface::scan(self, start_key, count)
    }

    fn tick(&mut self) -> Result<()> {
        SharedKvInterface::tick(self)
    }
}

/// The engine handle is internally synchronized (sharded locks), so the
/// same adapter also serves the multi-threaded driver.
impl SharedKvInterface for EmbeddedAdapter {
    fn insert(&self, key: &str, fields: &BTreeMap<String, Vec<u8>>) -> Result<()> {
        self.store
            .hset_multi(key, fields)
            .map_err(WorkloadError::new)
    }

    fn read(&self, key: &str) -> Result<Option<BTreeMap<String, Vec<u8>>>> {
        self.store.hgetall(key).map_err(WorkloadError::new)
    }

    fn update(&self, key: &str, fields: &BTreeMap<String, Vec<u8>>) -> Result<()> {
        self.store
            .hset_multi(key, fields)
            .map_err(WorkloadError::new)
    }

    fn scan(&self, start_key: &str, count: usize) -> Result<Vec<String>> {
        self.store
            .scan(start_key, count)
            .map_err(WorkloadError::new)
    }

    fn tick(&self) -> Result<()> {
        self.store.tick().map(|_| ()).map_err(WorkloadError::new)
    }
}

// ---------------------------------------------------------------------------

/// YCSB against the full GDPR compliance layer.
#[derive(Debug)]
pub struct GdprAdapter {
    store: GdprStore,
    ctx: AccessContext,
    subject_of_key: fn(&str) -> String,
}

impl GdprAdapter {
    /// Wrap a compliance store; installs a grant so the benchmark actor is
    /// allowed to operate, and derives the data subject from the key (every
    /// YCSB record key doubles as its subject id).
    #[must_use]
    pub fn new(store: GdprStore) -> Self {
        let ctx = AccessContext::new("ycsb-driver", "benchmarking");
        store.grant(Grant::new("ycsb-driver", "benchmarking"));
        GdprAdapter {
            store,
            ctx,
            subject_of_key: |key| key.to_string(),
        }
    }

    /// The wrapped compliance store.
    #[must_use]
    pub fn store(&self) -> &GdprStore {
        &self.store
    }

    fn metadata_for(&self, key: &str) -> PersonalMetadata {
        PersonalMetadata::new(&(self.subject_of_key)(key)).with_purpose("benchmarking")
    }
}

impl KvInterface for GdprAdapter {
    fn insert(&mut self, key: &str, fields: &BTreeMap<String, Vec<u8>>) -> Result<()> {
        SharedKvInterface::insert(self, key, fields)
    }

    fn read(&mut self, key: &str) -> Result<Option<BTreeMap<String, Vec<u8>>>> {
        SharedKvInterface::read(self, key)
    }

    fn update(&mut self, key: &str, fields: &BTreeMap<String, Vec<u8>>) -> Result<()> {
        SharedKvInterface::update(self, key, fields)
    }

    fn scan(&mut self, start_key: &str, count: usize) -> Result<Vec<String>> {
        SharedKvInterface::scan(self, start_key, count)
    }

    fn tick(&mut self) -> Result<()> {
        SharedKvInterface::tick(self)
    }
}

/// The compliance layer takes `&self` throughout (sharded engine, sharded
/// index segments, atomic counters), so it serves concurrent clients too.
impl SharedKvInterface for GdprAdapter {
    fn insert(&self, key: &str, fields: &BTreeMap<String, Vec<u8>>) -> Result<()> {
        self.store
            .put_record(&self.ctx, key, fields, self.metadata_for(key))
            .map_err(WorkloadError::new)
    }

    fn read(&self, key: &str) -> Result<Option<BTreeMap<String, Vec<u8>>>> {
        self.store
            .get_record(&self.ctx, key)
            .map_err(WorkloadError::new)
    }

    fn update(&self, key: &str, fields: &BTreeMap<String, Vec<u8>>) -> Result<()> {
        self.store
            .update_record(&self.ctx, key, fields)
            .map_err(WorkloadError::new)
    }

    fn scan(&self, start_key: &str, count: usize) -> Result<Vec<String>> {
        self.store
            .scan(&self.ctx, start_key, count)
            .map_err(WorkloadError::new)
    }

    fn tick(&self) -> Result<()> {
        self.store.tick().map(|_| ()).map_err(WorkloadError::new)
    }
}

// ---------------------------------------------------------------------------

/// YCSB through the simulated network path (optionally TLS-encrypted).
#[derive(Debug)]
pub struct RemoteAdapter {
    client: RemoteClient,
}

impl RemoteAdapter {
    /// Wrap a connected client.
    #[must_use]
    pub fn new(client: RemoteClient) -> Self {
        RemoteAdapter { client }
    }

    /// The wrapped client (for link statistics).
    #[must_use]
    pub fn client(&self) -> &RemoteClient {
        &self.client
    }
}

impl KvInterface for RemoteAdapter {
    fn insert(&mut self, key: &str, fields: &BTreeMap<String, Vec<u8>>) -> Result<()> {
        self.client
            .set(key, &encode_fields(fields))
            .map_err(WorkloadError::new)
    }

    fn read(&mut self, key: &str) -> Result<Option<BTreeMap<String, Vec<u8>>>> {
        match self.client.get(key).map_err(WorkloadError::new)? {
            Some(bytes) => Ok(decode_fields(&bytes)),
            None => Ok(None),
        }
    }

    fn update(&mut self, key: &str, fields: &BTreeMap<String, Vec<u8>>) -> Result<()> {
        // A faithful reproduction of the read-merge-write the single-blob
        // encoding forces on the client side.
        let mut merged = self.read(key)?.unwrap_or_default();
        for (f, v) in fields {
            merged.insert(f.clone(), v.clone());
        }
        self.client
            .set(key, &encode_fields(&merged))
            .map_err(WorkloadError::new)
    }

    fn scan(&mut self, start_key: &str, count: usize) -> Result<Vec<String>> {
        self.client
            .scan(start_key, count)
            .map_err(WorkloadError::new)
    }

    fn tick(&mut self) -> Result<()> {
        self.client
            .server()
            .store()
            .tick()
            .map(|_| ())
            .map_err(WorkloadError::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdpr_core::policy::CompliancePolicy;
    use kvstore::config::StoreConfig;
    use netsim::link::LinkConfig;
    use netsim::server::RespKvServer;
    use ycsb::client::Driver;
    use ycsb::workload::WorkloadSpec;

    fn fields() -> BTreeMap<String, Vec<u8>> {
        let mut f = BTreeMap::new();
        f.insert("field0".to_string(), b"v0".to_vec());
        f.insert("field1".to_string(), b"v1".to_vec());
        f
    }

    #[test]
    fn field_blob_roundtrip() {
        let f = fields();
        assert_eq!(decode_fields(&encode_fields(&f)).unwrap(), f);
        assert!(decode_fields(b"garbage").is_none());
    }

    #[test]
    fn embedded_adapter_supports_all_operations() {
        let adapter = EmbeddedAdapter::new(KvStore::open(StoreConfig::in_memory()).unwrap());
        adapter.insert("user1", &fields()).unwrap();
        assert_eq!(adapter.read("user1").unwrap().unwrap().len(), 2);
        let mut update = BTreeMap::new();
        update.insert("field0".to_string(), b"new".to_vec());
        adapter.update("user1", &update).unwrap();
        assert_eq!(
            adapter.read("user1").unwrap().unwrap()["field0"],
            b"new".to_vec()
        );
        assert_eq!(adapter.scan("user", 10).unwrap(), vec!["user1"]);
        adapter.tick().unwrap();
        assert_eq!(adapter.store().len(), 1);
    }

    #[test]
    fn gdpr_adapter_runs_a_small_workload() {
        let store = GdprStore::open_in_memory(CompliancePolicy::eventual()).unwrap();
        let mut adapter = GdprAdapter::new(store);
        let mut driver = Driver::new(WorkloadSpec::workload_a(50, 100), 11);
        let load = driver.run_load(&mut adapter).unwrap();
        assert_eq!(load.errors, 0);
        let run = driver.run_transactions(&mut adapter).unwrap();
        assert_eq!(run.errors, 0);
        assert!(adapter.store().stats().allowed_ops > 0);
    }

    #[test]
    fn remote_adapter_runs_a_small_workload_over_tls_sim() {
        let server = RespKvServer::new(KvStore::open(StoreConfig::in_memory()).unwrap());
        let client =
            RemoteClient::connect_secure(server, LinkConfig::tls_proxied_4_9gbps(), b"bench");
        let mut adapter = RemoteAdapter::new(client);
        let mut driver = Driver::new(WorkloadSpec::workload_b(30, 60), 13);
        assert_eq!(driver.run_load(&mut adapter).unwrap().errors, 0);
        assert_eq!(driver.run_transactions(&mut adapter).unwrap().errors, 0);
        assert!(adapter.client().requests() > 0);
    }
}
