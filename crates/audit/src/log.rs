//! The audit log front object.
//!
//! [`AuditLog`] assigns sequence numbers, maintains the optional hash
//! chain, buffers lines and flushes them to an [`AuditSink`] according to a
//! [`FlushPolicy`]. For deployments that want the logging cost off the
//! request path entirely (at the price of a wider evidence-loss window),
//! [`AsyncAuditLog`] moves the sink behind a crossbeam channel and a
//! background writer thread.

use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Sender};

use crate::chain::{ChainState, ChainedRecord};
use crate::policy::FlushPolicy;
use crate::record::AuditRecord;
use crate::sink::{AuditSink, SinkStats};
use crate::Result;

/// Counters describing audit-log activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditLogStats {
    /// Records accepted by the log.
    pub records: u64,
    /// Flush operations performed (each ends in a sink sync).
    pub flushes: u64,
    /// Records currently buffered and therefore volatile.
    pub buffered: usize,
}

/// A synchronous audit log writing to a single sink.
#[derive(Debug)]
pub struct AuditLog {
    sink: Box<dyn AuditSink>,
    policy: FlushPolicy,
    chain: Option<ChainState>,
    buffer: Vec<String>,
    next_sequence: u64,
    last_flush_ms: u64,
    stats: AuditLogStats,
}

impl AuditLog {
    /// Create a log over `sink` with the given flush policy. Hash chaining
    /// is enabled by default; disable it with [`Self::without_chain`] to
    /// measure its cost.
    pub fn new(sink: Box<dyn AuditSink>, policy: FlushPolicy) -> Self {
        AuditLog {
            sink,
            policy,
            chain: Some(ChainState::new()),
            buffer: Vec::new(),
            next_sequence: 0,
            last_flush_ms: 0,
            stats: AuditLogStats::default(),
        }
    }

    /// Builder-style: disable hash chaining.
    #[must_use]
    pub fn without_chain(mut self) -> Self {
        self.chain = None;
        self
    }

    /// The configured flush policy.
    #[must_use]
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// Change the flush policy at runtime.
    pub fn set_policy(&mut self, policy: FlushPolicy) {
        self.policy = policy;
    }

    /// Activity counters (includes current buffer occupancy).
    #[must_use]
    pub fn stats(&self) -> AuditLogStats {
        AuditLogStats {
            buffered: self.buffer.len(),
            ..self.stats
        }
    }

    /// Counters of the underlying sink.
    #[must_use]
    pub fn sink_stats(&self) -> SinkStats {
        self.sink.stats()
    }

    /// Digest of the chain tip, if chaining is enabled.
    #[must_use]
    pub fn chain_tip(&self) -> Option<String> {
        self.chain.as_ref().map(|c| c.tip().to_string())
    }

    /// Record one interaction. Returns the sequence number assigned.
    ///
    /// # Errors
    ///
    /// Propagates sink errors raised while flushing.
    pub fn record(&mut self, mut record: AuditRecord) -> Result<u64> {
        record.sequence = self.next_sequence;
        self.next_sequence += 1;
        self.stats.records += 1;

        // Serialize exactly once: the same line feeds the chain digest and
        // the sink, so this is byte-identical to hashing the record itself.
        let mut line = record.to_line();
        if let Some(chain) = &mut self.chain {
            let digest = chain.append_line(&line);
            line.push('#');
            line.push_str(&digest);
        }
        let timestamp = record.timestamp_ms;
        self.buffer.push(line);

        match self.policy {
            FlushPolicy::Synchronous => self.flush()?,
            FlushPolicy::Periodic { interval_ms } => {
                if timestamp.saturating_sub(self.last_flush_ms) >= interval_ms {
                    self.flush()?;
                    self.last_flush_ms = timestamp;
                }
            }
            FlushPolicy::Batched { max_records } => {
                if self.buffer.len() >= max_records {
                    self.flush()?;
                }
            }
            FlushPolicy::Manual => {}
        }
        Ok(record.sequence)
    }

    /// Flush all buffered lines to the sink and sync it.
    ///
    /// # Errors
    ///
    /// Propagates sink errors.
    pub fn flush(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        for line in self.buffer.drain(..) {
            self.sink.write_line(&line)?;
        }
        self.sink.sync()?;
        self.stats.flushes += 1;
        Ok(())
    }

    /// Number of records accepted but not yet durable.
    #[must_use]
    pub fn at_risk(&self) -> usize {
        self.buffer.len()
    }
}

impl Drop for AuditLog {
    fn drop(&mut self) {
        // Best-effort final flush; errors cannot be reported from drop.
        let _ = self.flush();
    }
}

/// Parse a persisted line back into `(record, digest)`; the digest part is
/// absent when chaining was disabled.
#[must_use]
pub fn parse_chained_line(line: &str) -> Option<ChainedRecord> {
    match line.rsplit_once('#') {
        Some((record_part, digest)) if digest.len() == 64 => AuditRecord::from_line(record_part)
            .map(|record| ChainedRecord {
                record,
                digest: digest.to_string(),
            }),
        _ => AuditRecord::from_line(line).map(|record| ChainedRecord {
            record,
            digest: String::new(),
        }),
    }
}

// ---------------------------------------------------------------------------

enum WriterMessage {
    Line(String),
    Flush,
    Shutdown,
}

/// An audit log whose sink runs on a background thread.
///
/// Records are handed over through a bounded channel, so a slow disk
/// back-pressures the caller instead of growing memory without bound. The
/// loss window is "whatever is still in the channel plus the writer's
/// buffer", which is why this variant only qualifies as *eventual*
/// compliance.
#[derive(Debug)]
pub struct AsyncAuditLog {
    sender: Sender<WriterMessage>,
    handle: Option<JoinHandle<()>>,
    next_sequence: u64,
    chain: Option<ChainState>,
}

impl std::fmt::Debug for WriterMessage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriterMessage::Line(_) => f.write_str("Line"),
            WriterMessage::Flush => f.write_str("Flush"),
            WriterMessage::Shutdown => f.write_str("Shutdown"),
        }
    }
}

impl AsyncAuditLog {
    /// Spawn the background writer over `sink`. `queue_depth` bounds the
    /// number of in-flight records.
    pub fn spawn(mut sink: Box<dyn AuditSink>, queue_depth: usize) -> Self {
        let (sender, receiver) = bounded::<WriterMessage>(queue_depth.max(1));
        let handle = std::thread::spawn(move || {
            while let Ok(message) = receiver.recv() {
                match message {
                    WriterMessage::Line(line) => {
                        let _ = sink.write_line(&line);
                    }
                    WriterMessage::Flush => {
                        let _ = sink.sync();
                    }
                    WriterMessage::Shutdown => {
                        let _ = sink.sync();
                        break;
                    }
                }
            }
        });
        AsyncAuditLog {
            sender,
            handle: Some(handle),
            next_sequence: 0,
            chain: Some(ChainState::new()),
        }
    }

    /// Record one interaction; returns the assigned sequence number.
    pub fn record(&mut self, mut record: AuditRecord) -> u64 {
        record.sequence = self.next_sequence;
        self.next_sequence += 1;
        // Serialize exactly once: the same line feeds the chain digest and
        // the sink, so this is byte-identical to hashing the record itself.
        let mut line = record.to_line();
        if let Some(chain) = &mut self.chain {
            let digest = chain.append_line(&line);
            line.push('#');
            line.push_str(&digest);
        }
        // A full queue blocks, which is the intended back-pressure.
        let _ = self.sender.send(WriterMessage::Line(line));
        record.sequence
    }

    /// Ask the writer to sync its sink.
    pub fn request_flush(&self) {
        let _ = self.sender.send(WriterMessage::Flush);
    }

    /// Shut the writer down, waiting for all queued records to be written.
    pub fn shutdown(mut self) {
        let _ = self.sender.send(WriterMessage::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for AsyncAuditLog {
    fn drop(&mut self) {
        let _ = self.sender.send(WriterMessage::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Operation, Outcome};
    use crate::sink::MemorySink;

    fn rec(ts: u64) -> AuditRecord {
        AuditRecord::new(ts, "tester", Operation::Read)
            .key("k")
            .outcome(Outcome::Allowed)
    }

    #[test]
    fn synchronous_policy_flushes_every_record() {
        let sink = MemorySink::new();
        let view = sink.share();
        let mut log = AuditLog::new(Box::new(sink), FlushPolicy::Synchronous);
        log.record(rec(1)).unwrap();
        log.record(rec(2)).unwrap();
        assert_eq!(view.lines().len(), 2);
        assert_eq!(log.at_risk(), 0);
        assert_eq!(log.stats().flushes, 2);
        assert_eq!(log.sink_stats().syncs, 2);
    }

    #[test]
    fn periodic_policy_batches_within_the_window() {
        let sink = MemorySink::new();
        let view = sink.share();
        let mut log = AuditLog::new(Box::new(sink), FlushPolicy::every_second());
        for ts in [10, 20, 30] {
            log.record(rec(ts)).unwrap();
        }
        // Note: the very first record flushes because last_flush_ms starts
        // at 0 and 10 - 0 >= 1000 is false — so nothing flushed yet.
        assert_eq!(view.lines().len(), 0);
        assert_eq!(log.at_risk(), 3);
        log.record(rec(1_500)).unwrap();
        assert_eq!(view.lines().len(), 4, "window elapsed, everything flushed");
        assert_eq!(log.at_risk(), 0);
    }

    #[test]
    fn batched_policy_flushes_at_capacity() {
        let sink = MemorySink::new();
        let view = sink.share();
        let mut log = AuditLog::new(Box::new(sink), FlushPolicy::Batched { max_records: 3 });
        log.record(rec(1)).unwrap();
        log.record(rec(2)).unwrap();
        assert_eq!(view.lines().len(), 0);
        log.record(rec(3)).unwrap();
        assert_eq!(view.lines().len(), 3);
    }

    #[test]
    fn manual_policy_needs_explicit_flush_and_drop_flushes() {
        let sink = MemorySink::new();
        let view = sink.share();
        {
            let mut log = AuditLog::new(Box::new(sink), FlushPolicy::Manual);
            log.record(rec(1)).unwrap();
            assert_eq!(view.lines().len(), 0);
            log.flush().unwrap();
            assert_eq!(view.lines().len(), 1);
            log.record(rec(2)).unwrap();
            // dropped here
        }
        assert_eq!(view.lines().len(), 2, "drop flushes the remainder");
    }

    #[test]
    fn sequence_numbers_are_monotonic() {
        let mut log = AuditLog::new(Box::new(MemorySink::new()), FlushPolicy::Manual);
        let a = log.record(rec(1)).unwrap();
        let b = log.record(rec(2)).unwrap();
        let c = log.record(rec(3)).unwrap();
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(log.stats().records, 3);
    }

    #[test]
    fn chained_lines_roundtrip_and_verify() {
        let sink = MemorySink::new();
        let view = sink.share();
        let mut log = AuditLog::new(Box::new(sink), FlushPolicy::Synchronous);
        for ts in 0..5 {
            log.record(rec(ts)).unwrap();
        }
        let tip = log.chain_tip().unwrap();
        let chained: Vec<_> = view
            .lines()
            .iter()
            .map(|l| parse_chained_line(l).unwrap())
            .collect();
        let verified_tip = crate::chain::verify_chain(&chained).unwrap();
        assert_eq!(verified_tip, tip);
    }

    #[test]
    fn without_chain_lines_have_no_digest() {
        let sink = MemorySink::new();
        let view = sink.share();
        let mut log = AuditLog::new(Box::new(sink), FlushPolicy::Synchronous).without_chain();
        log.record(rec(7)).unwrap();
        assert!(log.chain_tip().is_none());
        let line = view.lines()[0].clone();
        let parsed = parse_chained_line(&line).unwrap();
        assert!(parsed.digest.is_empty());
        assert_eq!(parsed.record.timestamp_ms, 7);
    }

    #[test]
    fn policy_can_be_changed_at_runtime() {
        let sink = MemorySink::new();
        let view = sink.share();
        let mut log = AuditLog::new(Box::new(sink), FlushPolicy::Manual);
        log.record(rec(1)).unwrap();
        assert_eq!(view.lines().len(), 0);
        log.set_policy(FlushPolicy::Synchronous);
        assert!(log.policy().is_real_time());
        log.record(rec(2)).unwrap();
        assert_eq!(
            view.lines().len(),
            2,
            "flush drains earlier buffered records too"
        );
    }

    #[test]
    fn async_log_writes_everything_by_shutdown() {
        let sink = MemorySink::new();
        let view = sink.share();
        let mut log = AsyncAuditLog::spawn(Box::new(sink), 64);
        for ts in 0..100 {
            log.record(rec(ts));
        }
        log.request_flush();
        log.shutdown();
        assert_eq!(view.lines().len(), 100);
        // Chain verifies across the async path too.
        let chained: Vec<_> = view
            .lines()
            .iter()
            .map(|l| parse_chained_line(l).unwrap())
            .collect();
        assert!(crate::chain::verify_chain(&chained).is_ok());
    }
}
