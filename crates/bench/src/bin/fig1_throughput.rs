//! Reproduces **Figure 1** of the paper: YCSB throughput (Load-A, A, B, C,
//! D, Load-E, E, F) for the unmodified engine, the monitoring-on-AOF
//! configurations (everysec and sync), the LUKS+TLS encryption
//! configuration and the full strict GDPR layer.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin fig1_throughput [records=N] [ops=N] [realistic=1]
//! ```
//!
//! `realistic=1` makes the simulated link impose its modelled transfer
//! time, which pulls the unmodified baseline down to testbed-like
//! throughput (at the cost of a longer run).

use bench::fig1::{render_table, run_figure1, Fig1Config, Fig1Params};
use bench::{arg_value, cleanup_scratch, scratch_dir};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let params = Fig1Params {
        record_count: arg_value(&args, "records").unwrap_or(5_000),
        operation_count: arg_value(&args, "ops").unwrap_or(10_000),
        impose_link_delay: arg_value(&args, "realistic").unwrap_or(0) == 1,
        seed: arg_value(&args, "seed").unwrap_or(42),
    };

    println!("Figure 1 reproduction — YCSB throughput under GDPR compliance configurations");
    println!(
        "records per workload: {}   operations per phase: {}   link delay imposed: {}\n",
        params.record_count, params.operation_count, params.impose_link_delay
    );

    let dir = scratch_dir("fig1");
    let configs = Fig1Config::all();
    let cells = run_figure1(&configs, &dir, &params);

    println!("{}", render_table(&cells));

    println!("per-phase details:");
    for cell in &cells {
        println!("  [{:>12}] {}", cell.config.label(), cell.report.summary());
    }

    // The paper's headline claims, checked against this run.
    let ratio = |phase: &str, config: Fig1Config| -> Option<f64> {
        let base = cells
            .iter()
            .find(|c| c.phase == phase && c.config == Fig1Config::Unmodified)?
            .throughput;
        let other = cells
            .iter()
            .find(|c| c.phase == phase && c.config == config)?
            .throughput;
        if base > 0.0 {
            Some(other / base)
        } else {
            None
        }
    };
    println!("\nheadline ratios (workload A, fraction of unmodified throughput):");
    for config in [
        Fig1Config::AofEverySec,
        Fig1Config::AofSync,
        Fig1Config::LuksTls,
        Fig1Config::StrictGdpr,
    ] {
        if let Some(r) = ratio("A", config) {
            println!(
                "  {:<14} {:>6.1}%   (paper: everysec ≈30%, sync ≈5%, luks+tls ≈30%)",
                config.label(),
                r * 100.0
            );
        }
    }

    cleanup_scratch(&dir);
}
