//! Offline stand-in for `criterion`: a wall-clock micro-benchmark harness
//! with the group/bencher API shape the workspace's benches use.
//!
//! Statistics are intentionally simple (median of timed batches); the
//! benches exist to compare configurations relative to each other, and the
//! full criterion experience is unavailable without registry access.
//! Passing `--test` (as `cargo test --benches` does) runs every benchmark
//! body once for a smoke check instead of timing it.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup allocations (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark (accepted, echoed in output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id like `name/parameter`.
    #[must_use]
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Build an id from a parameter alone.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    smoke_only: bool,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            smoke_only: std::env::args().any(|a| a == "--test"),
        }
    }
}

/// The benchmark manager handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings,
            _parent: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.settings, f);
        self
    }
}

/// A group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.settings.sample_size = samples.max(1);
        self
    }

    /// Target measurement time per benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.settings.measurement_time = time;
        self
    }

    /// Warm-up time (accepted, folded into the first sample).
    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{id}", self.name), self.settings, f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{id}", self.name), self.settings, |b| {
            f(b, input)
        });
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// The per-benchmark timing handle.
#[derive(Debug)]
pub struct Bencher {
    settings: Settings,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.settings.smoke_only {
            black_box(routine());
            return;
        }
        let per_sample = self.settings.measurement_time / self.settings.sample_size as u32;
        for _ in 0..self.settings.sample_size {
            let started = Instant::now();
            let mut iters = 0u32;
            while started.elapsed() < per_sample || iters == 0 {
                black_box(routine());
                iters += 1;
            }
            self.samples.push(started.elapsed() / iters);
        }
    }

    /// Time `routine` over fresh inputs produced by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.settings.smoke_only {
            black_box(routine(setup()));
            return;
        }
        for _ in 0..self.settings.sample_size {
            let input = setup();
            let started = Instant::now();
            black_box(routine(input));
            self.samples.push(started.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, settings: Settings, mut f: F) {
    let mut bencher = Bencher {
        settings,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if settings.smoke_only {
        println!("bench {label}: ok (smoke)");
        return;
    }
    let mut samples = bencher.samples;
    samples.sort();
    let median = samples.get(samples.len() / 2).copied().unwrap_or_default();
    println!(
        "bench {label}: median {median:?} over {} samples",
        samples.len()
    );
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        c.settings.sample_size = 2;
        c.settings.measurement_time = Duration::from_millis(4);
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(4));
        let mut count = 0u64;
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.bench_with_input(BenchmarkId::new("with", 3), &3u64, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::SmallInput);
        });
        group.finish();
        assert!(count > 0);
    }
}
