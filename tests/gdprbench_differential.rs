//! The cross-transport differential battery (GDPRbench tentpole pin).
//!
//! One seeded customer + regulator workload is driven through four
//! different paths to the *same kind* of store:
//!
//! 1. in-process calls on [`GdprStore`];
//! 2. RESP frames over the simulated network (netsim);
//! 3. RESP frames over live TCP on the reactor transport;
//! 4. RESP frames over live TCP on the thread-per-connection transport.
//!
//! Every leg gets its own pinned-clock store (`SimClock`, so exports and
//! metadata timestamps are identical by construction), the same grants and
//! the same op stream. The legs must agree twice over:
//!
//! * **per-op**: the captured [`Outcome`] vectors are equal element-wise —
//!   every denial, every miss, every fan-out size, every export byte
//!   count matches across transports;
//! * **final state**: the `DIGEST` of each store (SHA-256 over the
//!   canonical keyspace serialization) is byte-identical.
//!
//! [`GdprStore`]: gdpr_storage::gdpr_core::store::GdprStore

use std::sync::Arc;

use gdpr_storage::gdpr_core::acl::Grant;
use gdpr_storage::gdpr_core::policy::CompliancePolicy;
use gdpr_storage::gdpr_core::store::GdprStore;
use gdpr_storage::gdpr_server::client::TcpRemoteClient;
use gdpr_storage::gdpr_server::dispatch::Dispatcher;
use gdpr_storage::gdpr_server::tcp::{ServerConfig, TcpServer, Transport};
use gdpr_storage::gdprbench::{
    BenchSpec, ClientFactory, InProcessFactory, NetsimFactory, Outcome, Role, Runner, TcpFactory,
};
use gdpr_storage::kvstore::clock::SimClock;
use gdpr_storage::kvstore::config::StoreConfig;
use gdpr_storage::netsim::client::RemoteClient;
use gdpr_storage::netsim::link::LinkConfig;
use gdpr_storage::netsim::server::RespKvServer;
use gdpr_storage::resp::Frame;

const SHARDS: usize = 2;
const CLOCK_MS: u64 = 1_000_000;

fn open_store() -> Arc<GdprStore> {
    let config = StoreConfig::in_memory()
        .aof_in_memory()
        .shards(SHARDS)
        .clock(SimClock::new(CLOCK_MS));
    let store = GdprStore::open(
        CompliancePolicy::eventual(),
        config,
        Box::new(gdpr_storage::audit::sink::NullSink::new()),
    )
    .expect("store opens");
    for (actor, purpose) in BenchSpec::grants() {
        store.grant(Grant::new(actor, purpose));
    }
    Arc::new(store)
}

fn specs() -> Vec<BenchSpec> {
    vec![
        BenchSpec::new(Role::Customer, 16, 4, 300).seed(77),
        BenchSpec::new(Role::Regulator, 16, 4, 300).seed(77),
    ]
}

/// One leg's observable behaviour: outcome vectors per phase + digest.
#[derive(Debug, PartialEq, Eq)]
struct LegResult {
    load: Vec<Outcome>,
    phases: Vec<Vec<Outcome>>,
    digest: String,
}

/// Drive load + both role phases through `factories` and digest via
/// `digest_fn`. The factory for each phase carries its own credentials.
fn drive_leg(
    load_factory: &dyn ClientFactory,
    role_factory: impl Fn(Role) -> Box<dyn ClientFactory>,
    digest_fn: impl FnOnce() -> String,
) -> LegResult {
    let runner = Runner::new(1).capture_outcomes(true);
    let all = specs();
    let load = runner
        .run_load(&all[0], load_factory)
        .expect("load runs")
        .outcomes
        .expect("captured");
    let mut phases = Vec::new();
    for spec in &all {
        let factory = role_factory(spec.role);
        let run = runner
            .run_transactions(spec, factory.as_ref())
            .expect("txns run");
        phases.push(run.outcomes.expect("captured"));
    }
    LegResult {
        load,
        phases,
        digest: digest_fn(),
    }
}

fn in_process_leg() -> LegResult {
    let store = open_store();
    let digest_store = Arc::clone(&store);
    drive_leg(
        &InProcessFactory::for_load(Arc::clone(&store)),
        move |role| Box::new(InProcessFactory::for_role(Arc::clone(&store), role)),
        move || Dispatcher::gdpr(digest_store).state_digest_hex(),
    )
}

fn netsim_leg(link: LinkConfig, secret: Option<&'static [u8]>) -> LegResult {
    let store = open_store();
    let server = RespKvServer::gdpr(store);
    let digest_server = server.clone();
    let load_factory = match secret {
        Some(s) => NetsimFactory::for_load(server.clone(), link).secure(s),
        None => NetsimFactory::for_load(server.clone(), link),
    };
    drive_leg(
        &load_factory,
        move |role| {
            let f = NetsimFactory::for_role(server.clone(), link, role);
            Box::new(match secret {
                Some(s) => f.secure(s),
                None => f,
            })
        },
        move || {
            // The digest needs an authenticated session on the compliance
            // engine; reuse the regulator's credentials over the wire.
            let mut client = RemoteClient::connect_plain(digest_server, link);
            client
                .roundtrip(
                    &gdpr_storage::resp::command::GdprRequest::Auth {
                        actor: Role::Regulator.actor().to_string(),
                        purpose: Role::Regulator.purpose().to_string(),
                    }
                    .to_frame(),
                )
                .expect("auth for digest");
            match client
                .roundtrip(&Frame::command(["DIGEST"]))
                .expect("digest")
            {
                Frame::Bulk(hex) => String::from_utf8(hex).expect("utf8 digest"),
                other => panic!("unexpected DIGEST reply {other:?}"),
            }
        },
    )
}

fn tcp_leg(transport: Transport) -> LegResult {
    let store = open_store();
    let config = ServerConfig {
        transport,
        ..ServerConfig::default()
    };
    let handle =
        TcpServer::bind(Dispatcher::gdpr(store), "127.0.0.1:0", config).expect("tcp server binds");
    let addr = handle.local_addr();
    let result = drive_leg(
        &TcpFactory::for_load(addr),
        move |role| Box::new(TcpFactory::for_role(addr, role)),
        move || {
            let mut client = TcpRemoteClient::connect(addr).expect("digest connection");
            client
                .auth(Role::Regulator.actor(), Role::Regulator.purpose())
                .expect("auth for digest");
            match client
                .roundtrip(&Frame::command(["DIGEST"]))
                .expect("digest")
            {
                Frame::Bulk(hex) => String::from_utf8(hex).expect("utf8 digest"),
                other => panic!("unexpected DIGEST reply {other:?}"),
            }
        },
    );
    handle.shutdown();
    result
}

#[test]
fn all_transports_agree_per_op_and_on_the_final_digest() {
    let reference = in_process_leg();
    assert!(
        reference.load.iter().all(|o| *o == Outcome::Ok(1)),
        "the load phase must succeed everywhere"
    );
    // Sanity: the customer phase actually exercised denials/fan-outs, so
    // the agreement below is about a non-trivial stream.
    assert!(reference.phases[0]
        .iter()
        .any(|o| matches!(o, Outcome::Ok(n) if *n > 1)));

    let legs = [
        ("netsim/plain", netsim_leg(LinkConfig::plain_44gbps(), None)),
        (
            "netsim/secure",
            netsim_leg(
                LinkConfig::tls_proxied_4_9gbps(),
                Some(b"differential-battery"),
            ),
        ),
        ("tcp/reactor", tcp_leg(Transport::Reactor)),
        ("tcp/threads", tcp_leg(Transport::Threads)),
    ];
    for (name, leg) in &legs {
        assert_eq!(
            &reference.load, &leg.load,
            "{name}: load outcomes diverge from in-process"
        );
        for (i, (a, b)) in reference.phases.iter().zip(leg.phases.iter()).enumerate() {
            assert_eq!(a, b, "{name}: phase {i} outcomes diverge from in-process");
        }
        assert_eq!(
            &reference.digest, &leg.digest,
            "{name}: final state digest diverges from in-process"
        );
    }
}
