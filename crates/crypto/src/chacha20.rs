//! The ChaCha20 stream cipher (RFC 8439).
//!
//! This is the work-horse of both encryption paths in the reproduction:
//! the "LUKS" device layer XORs every persisted block with a ChaCha20
//! keystream, and the "TLS" proxy in the network simulator encrypts every
//! frame with [`crate::aead::ChaCha20Poly1305`], which is built on top of
//! this module.

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes (the IETF 96-bit variant).
pub const NONCE_LEN: usize = 12;
/// Keystream block length in bytes.
pub const BLOCK_LEN: usize = 64;

/// The ChaCha20 quarter round, operating on four words of the state.
#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] ^= state[a];
    state[d] = state[d].rotate_left(16);

    state[c] = state[c].wrapping_add(state[d]);
    state[b] ^= state[c];
    state[b] = state[b].rotate_left(12);

    state[a] = state[a].wrapping_add(state[b]);
    state[d] ^= state[a];
    state[d] = state[d].rotate_left(8);

    state[c] = state[c].wrapping_add(state[d]);
    state[b] ^= state[c];
    state[b] = state[b].rotate_left(7);
}

/// A ChaCha20 cipher instance bound to a key and nonce.
///
/// The cipher is a pure keystream generator: encryption and decryption are
/// the same XOR operation, exposed as [`ChaCha20::apply_keystream`].
///
/// # Example
///
/// ```
/// use gdpr_crypto::chacha20::ChaCha20;
///
/// let key = [0u8; 32];
/// let nonce = [0u8; 12];
/// let mut data = *b"attack at dawn";
/// ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut data);
/// assert_ne!(&data, b"attack at dawn");
/// ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut data);
/// assert_eq!(&data, b"attack at dawn");
/// ```
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    /// The 16-word initial state (constants, key, counter, nonce).
    state: [u32; 16],
    /// Leftover keystream bytes from the current block.
    keystream: [u8; BLOCK_LEN],
    /// Number of keystream bytes already consumed from `keystream`
    /// (BLOCK_LEN means "none available").
    used: usize,
}

impl ChaCha20 {
    /// Create a cipher from a 256-bit key, a 96-bit nonce and an initial
    /// 32-bit block counter.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes([
                nonce[i * 4],
                nonce[i * 4 + 1],
                nonce[i * 4 + 2],
                nonce[i * 4 + 3],
            ]);
        }
        ChaCha20 {
            state,
            keystream: [0u8; BLOCK_LEN],
            used: BLOCK_LEN,
        }
    }

    /// Compute one 64-byte keystream block for the *current* counter value
    /// and advance the counter.
    fn next_block(&mut self) {
        let block = chacha20_block(&self.state);
        self.keystream = block;
        self.used = 0;
        // Counter wrap is allowed by the RFC for our purposes (the device
        // layer re-nonces well before 256 GiB of keystream).
        self.state[12] = self.state[12].wrapping_add(1);
    }

    /// XOR the keystream into `data` in place (encrypts or decrypts).
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        for byte in data.iter_mut() {
            if self.used == BLOCK_LEN {
                self.next_block();
            }
            *byte ^= self.keystream[self.used];
            self.used += 1;
        }
    }

    /// Produce `len` keystream bytes (used by the AEAD to derive the
    /// Poly1305 one-time key from block 0).
    #[must_use]
    pub fn keystream_bytes(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.apply_keystream(&mut out);
        out
    }
}

/// The ChaCha20 block function: 20 rounds over the given state, followed by
/// the feed-forward addition, serialized little-endian.
#[must_use]
pub fn chacha20_block(initial: &[u32; 16]) -> [u8; BLOCK_LEN] {
    let mut working = *initial;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = working[i].wrapping_add(initial[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    /// RFC 8439 §2.1.1 quarter-round test vector.
    #[test]
    fn quarter_round_vector() {
        let mut state = [0u32; 16];
        state[0] = 0x1111_1111;
        state[1] = 0x0102_0304;
        state[2] = 0x9b8d_6f43;
        state[3] = 0x0123_4567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a_92f4);
        assert_eq!(state[1], 0xcb1c_f8ce);
        assert_eq!(state[2], 0x4581_472e);
        assert_eq!(state[3], 0x5881_c4bb);
    }

    /// RFC 8439 §2.3.2 block-function test vector.
    #[test]
    fn block_function_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let cipher = ChaCha20::new(&key, &nonce, 1);
        let block = chacha20_block(&cipher.state);
        assert_eq!(
            to_hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    /// RFC 8439 §2.4.2 encryption test vector ("sunscreen" plaintext).
    #[test]
    fn encryption_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        ChaCha20::new(&key, &nonce, 1).apply_keystream(&mut data);
        assert_eq!(
            to_hex(&data[..64]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
        );
        // Round-trip.
        ChaCha20::new(&key, &nonce, 1).apply_keystream(&mut data);
        assert_eq!(&data[..], &plaintext[..]);
    }

    #[test]
    fn keystream_is_deterministic_and_splittable() {
        let key = [9u8; 32];
        let nonce = [3u8; 12];
        let mut whole = vec![0u8; 300];
        ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut whole);

        let mut split = vec![0u8; 300];
        let mut c = ChaCha20::new(&key, &nonce, 0);
        c.apply_keystream(&mut split[..1]);
        c.apply_keystream(&mut split[1..65]);
        c.apply_keystream(&mut split[65..]);
        assert_eq!(whole, split);
    }

    #[test]
    fn different_nonce_gives_different_stream() {
        let key = [9u8; 32];
        let a = ChaCha20::new(&key, &[0u8; 12], 0).keystream_bytes(64);
        let b = ChaCha20::new(&key, &[1u8; 12], 0).keystream_bytes(64);
        assert_ne!(a, b);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let mut c = ChaCha20::new(&key, &nonce, 0);
        let first = c.keystream_bytes(64);
        let second = c.keystream_bytes(64);
        assert_ne!(first, second);
    }
}
