//! Fixed-size array strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy producing `[T; N]` from an element strategy.
#[derive(Debug, Clone)]
pub struct UniformArrayStrategy<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}

macro_rules! uniform_fn {
    ($($name:ident => $n:literal),* $(,)?) => {$(
        /// An array of the given size filled from `element`.
        #[must_use]
        pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
            UniformArrayStrategy { element }
        }
    )*};
}

uniform_fn! {
    uniform12 => 12,
    uniform16 => 16,
    uniform24 => 24,
    uniform32 => 32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn arrays_have_the_right_size_and_vary() {
        let mut rng = TestRng::deterministic("array");
        let a: [u8; 32] = uniform32(any::<u8>()).generate(&mut rng);
        let b: [u8; 32] = uniform32(any::<u8>()).generate(&mut rng);
        assert_ne!(a, b, "two draws should differ");
        let _: [u8; 12] = uniform12(any::<u8>()).generate(&mut rng);
    }
}
