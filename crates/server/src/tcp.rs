//! The thread-per-connection RESP2 server over `std::net`.
//!
//! The container this repository builds in has no async runtime available,
//! so the server follows the classic Redis-era shape instead: one accept
//! thread, one OS thread per connection, blocking reads with a short poll
//! timeout so every thread notices the shutdown flag promptly. What the
//! paper's Redis deployment got from its event loop — pipelining — is kept:
//! each read drains the incremental [`Decoder`] completely and all replies
//! of the batch are written back in a single syscall.
//!
//! Shutdown protocol: [`TcpServerHandle::request_shutdown`] raises a flag
//! and wakes the accept loop with a loopback connection. Connection
//! threads keep serving until their *next idle* read (so every request
//! whose bytes already reached the server is answered — nothing in flight
//! is dropped), then close. [`TcpServerHandle::shutdown`] joins them all.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use resp::decode::Decoder;
use resp::encode::encode_frame;
use resp::Frame;

use crate::dispatch::{Dispatcher, Session};

/// Tunables of the TCP front-end.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrently served connections; further clients receive an
    /// error frame and are disconnected.
    pub max_connections: usize,
    /// Drop a connection after this long without receiving a complete
    /// request.
    pub read_timeout: Duration,
    /// Socket write timeout for replies.
    pub write_timeout: Duration,
    /// Largest request frame accepted before the connection is dropped
    /// with a protocol error (see [`resp::decode::Decoder`]).
    pub max_frame_bytes: usize,
    /// How often blocked reads wake up to check the shutdown flag.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_frame_bytes: 8 * 1024 * 1024,
            poll_interval: Duration::from_millis(25),
        }
    }
}

/// Counters describing transport-level activity (the dispatcher keeps the
/// request/error counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Connections accepted and served.
    pub accepted: u64,
    /// Connections refused because the limit was reached.
    pub rejected: u64,
    /// Connections currently open.
    pub active: usize,
}

struct Shared {
    dispatcher: Dispatcher,
    config: ServerConfig,
    addr: SocketAddr,
    shutdown: AtomicBool,
    active: AtomicUsize,
    accepted: AtomicU64,
    rejected: AtomicU64,
}

/// A running TCP server.
///
/// Dropping the handle requests shutdown but does not wait for the
/// threads; call [`TcpServerHandle::shutdown`] for a clean join.
pub struct TcpServer {
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    connections: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

/// Public alias: the value returned by [`TcpServer::bind`] acts as the
/// handle to the running server.
pub type TcpServerHandle = TcpServer;

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServer")
            .field("addr", &self.shared.addr)
            .field("active", &self.shared.active.load(Ordering::Relaxed))
            .finish()
    }
}

impl TcpServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// the dispatcher's engine.
    ///
    /// # Errors
    ///
    /// Returns the bind/listen error.
    pub fn bind(
        dispatcher: Dispatcher,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<TcpServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            dispatcher,
            config,
            addr: local,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        });
        let connections: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));

        let accept_shared = Arc::clone(&shared);
        let accept_connections = Arc::clone(&connections);
        let accept_thread = std::thread::Builder::new()
            .name("gdpr-server-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared, &accept_connections))
            .expect("spawn accept thread");

        Ok(TcpServer {
            shared,
            accept_thread: Some(accept_thread),
            connections,
        })
    }

    /// The address the server actually listens on.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The dispatcher serving this listener.
    #[must_use]
    pub fn dispatcher(&self) -> &Dispatcher {
        &self.shared.dispatcher
    }

    /// Whether shutdown has been requested (by [`Self::request_shutdown`]
    /// or a client's `SHUTDOWN` command).
    #[must_use]
    pub fn is_shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Transport-level counters.
    #[must_use]
    pub fn transport_stats(&self) -> TransportStats {
        TransportStats {
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            active: self.shared.active.load(Ordering::Relaxed),
        }
    }

    /// Raise the shutdown flag and wake the accept loop. Safe to call from
    /// any thread (including connection handlers); returns immediately.
    pub fn request_shutdown(&self) {
        request_shutdown(&self.shared);
    }

    /// Request shutdown and join the accept thread and every connection
    /// thread. In-flight requests already received by the server are
    /// answered before their connections close.
    pub fn shutdown(mut self) {
        self.request_shutdown();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let handles: Vec<_> = std::mem::take(&mut *self.connections.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Block until shutdown is requested (used by the server binary's main
    /// thread), polling every `interval`.
    pub fn wait_for_shutdown_request(&self, interval: Duration) {
        while !self.is_shutdown_requested() {
            std::thread::sleep(interval);
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        // Best effort: stop the threads, but do not block in drop.
        request_shutdown(&self.shared);
    }
}

fn request_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    // Wake the accept loop with a throwaway loopback connection.
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_millis(250));
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    connections: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if shared.active.load(Ordering::SeqCst) >= shared.config.max_connections {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let _ = stream.write_all(&encode_frame(&Frame::Error(
                "ERR max connections reached".to_string(),
            )));
            continue;
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        shared.accepted.fetch_add(1, Ordering::Relaxed);
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("gdpr-server-conn".to_string())
            .spawn(move || {
                serve_connection(stream, &conn_shared);
                conn_shared.active.fetch_sub(1, Ordering::SeqCst);
            })
            .expect("spawn connection thread");
        let mut conns = connections.lock();
        // Reap finished handlers so long-running servers do not accumulate
        // one JoinHandle per historical connection.
        conns.retain(|h| !h.is_finished());
        conns.push(handle);
    }
}

/// Serve one connection until the client disconnects, errors, idles out or
/// the server shuts down. Every read drains the decoder completely and the
/// whole batch of replies is written back in one syscall (pipelining).
fn serve_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));

    let mut decoder = Decoder::with_max_frame_bytes(shared.config.max_frame_bytes);
    let mut session = Session::new();
    let mut read_buf = [0u8; 16 * 1024];
    let mut last_activity = Instant::now();

    loop {
        // Sample the flag *before* reading: when shutdown is requested we
        // still perform one more read, so bytes already queued on the
        // socket are served before the connection closes.
        let stopping = shared.shutdown.load(Ordering::SeqCst);
        match stream.read(&mut read_buf) {
            Ok(0) => return,
            Ok(n) => {
                last_activity = Instant::now();
                decoder.feed(&read_buf[..n]);
                let mut replies = Vec::new();
                let mut shutdown_seen = false;
                loop {
                    match decoder.next_frame() {
                        Ok(Some(frame)) => {
                            if resp::repl::is_replsync_command(&frame) {
                                // The connection becomes a replication
                                // stream: answer everything already
                                // pipelined ahead of the handshake, then
                                // hand the socket to the feeder until the
                                // replica disconnects or we shut down.
                                if !replies.is_empty() && stream.write_all(&replies).is_err() {
                                    return;
                                }
                                crate::replication::serve_stream(
                                    &mut stream,
                                    &shared.dispatcher,
                                    &shared.shutdown,
                                    shared.config.poll_interval,
                                );
                                return;
                            }
                            if is_shutdown_command(&frame) {
                                shutdown_seen = true;
                            }
                            let reply = shared.dispatcher.handle_frame(&frame, &mut session);
                            replies.extend_from_slice(&encode_frame(&reply));
                        }
                        Ok(None) => break,
                        Err(e) => {
                            // Protocol error: answer with an error frame and
                            // drop the connection (the stream offset is
                            // unrecoverable).
                            replies.extend_from_slice(&encode_frame(&Frame::Error(format!(
                                "ERR {e}"
                            ))));
                            let _ = stream.write_all(&replies);
                            return;
                        }
                    }
                }
                if !replies.is_empty() && stream.write_all(&replies).is_err() {
                    return;
                }
                if shutdown_seen {
                    request_shutdown(shared);
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stopping {
                    return;
                }
                if last_activity.elapsed() > shared.config.read_timeout {
                    let _ = stream
                        .write_all(&encode_frame(&Frame::Error("ERR idle timeout".to_string())));
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Whether a decoded frame is the `SHUTDOWN` command (checked at the
/// transport layer, which owns the shutdown flag).
fn is_shutdown_command(frame: &Frame) -> bool {
    match frame {
        Frame::Array(items) => matches!(
            items.first(),
            Some(Frame::Bulk(name)) if name.eq_ignore_ascii_case(b"SHUTDOWN")
        ),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::TcpRemoteClient;
    use kvstore::config::StoreConfig;
    use kvstore::store::KvStore;

    fn kv_server(config: ServerConfig) -> TcpServerHandle {
        let dispatcher = Dispatcher::kv(KvStore::open(StoreConfig::in_memory()).unwrap());
        TcpServer::bind(dispatcher, "127.0.0.1:0", config).unwrap()
    }

    #[test]
    fn serves_basic_roundtrips_over_a_real_socket() {
        let server = kv_server(ServerConfig::default());
        let mut client = TcpRemoteClient::connect(server.local_addr()).unwrap();
        client.set("k", b"v").unwrap();
        assert_eq!(client.get("k").unwrap(), Some(b"v".to_vec()));
        assert_eq!(client.get("missing").unwrap(), None);
        assert!(client.delete("k").unwrap());
        assert_eq!(server.dispatcher().stats().requests, 4);
        server.shutdown();
    }

    #[test]
    fn pipelined_batch_returns_every_reply_in_order() {
        let server = kv_server(ServerConfig::default());
        let mut client = TcpRemoteClient::connect(server.local_addr()).unwrap();
        let frames: Vec<Frame> = (0..50)
            .map(|i| Frame::command(["SET", &format!("k{i}"), &format!("v{i}")]))
            .collect();
        let replies = client.pipeline(&frames).unwrap();
        assert_eq!(replies.len(), 50);
        assert!(replies.iter().all(|r| *r == Frame::Simple("OK".into())));
        let frames: Vec<Frame> = (0..50)
            .map(|i| Frame::command(["GET", &format!("k{i}")]))
            .collect();
        let replies = client.pipeline(&frames).unwrap();
        for (i, reply) in replies.iter().enumerate() {
            assert_eq!(*reply, Frame::Bulk(format!("v{i}").into_bytes()));
        }
        server.shutdown();
    }

    #[test]
    fn connection_limit_rejects_excess_clients() {
        let config = ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        };
        let server = kv_server(config);
        let mut first = TcpRemoteClient::connect(server.local_addr()).unwrap();
        first.ping().unwrap();
        // The second client is rejected with an error frame.
        let mut second = TcpRemoteClient::connect(server.local_addr()).unwrap();
        let err = second.ping().unwrap_err();
        assert!(
            matches!(err, crate::ServerError::Server(ref m) if m.contains("max connections")),
            "{err}"
        );
        assert_eq!(server.transport_stats().rejected, 1);
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_dropped_after_the_read_timeout() {
        let config = ServerConfig {
            read_timeout: Duration::from_millis(100),
            poll_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        };
        let server = kv_server(config);
        let mut client = TcpRemoteClient::connect(server.local_addr()).unwrap();
        client.ping().unwrap();
        std::thread::sleep(Duration::from_millis(400));
        // The server has either sent the idle-timeout error or closed the
        // socket; either way the next roundtrip fails.
        assert!(client.ping().is_err());
        server.shutdown();
    }

    #[test]
    fn oversized_frames_poison_only_their_connection() {
        let config = ServerConfig {
            max_frame_bytes: 1024,
            ..ServerConfig::default()
        };
        let server = kv_server(config);
        let mut bad = TcpRemoteClient::connect(server.local_addr()).unwrap();
        let huge = vec![b'x'; 4096];
        let err = bad
            .roundtrip(&Frame::command([b"SET".to_vec(), b"k".to_vec(), huge]))
            .unwrap_err();
        assert!(matches!(err, crate::ServerError::Server(_)), "{err}");
        // A fresh connection still works.
        let mut good = TcpRemoteClient::connect(server.local_addr()).unwrap();
        good.set("k", b"small").unwrap();
        server.shutdown();
    }

    #[test]
    fn shutdown_command_stops_the_server() {
        let server = kv_server(ServerConfig::default());
        let mut client = TcpRemoteClient::connect(server.local_addr()).unwrap();
        client.set("k", b"v").unwrap();
        client.shutdown_server().unwrap();
        server.wait_for_shutdown_request(Duration::from_millis(5));
        assert!(server.is_shutdown_requested());
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_requests_already_on_the_wire() {
        let server = kv_server(ServerConfig::default());
        let addr = server.local_addr();
        let mut client = TcpRemoteClient::connect(addr).unwrap();
        // Write a large pipelined batch and only then request shutdown:
        // the bytes are already queued on the server socket, so every
        // reply must still arrive.
        let frames: Vec<Frame> = (0..200)
            .map(|i| Frame::command(["SET", &format!("k{i}"), "v"]))
            .collect();
        client.send_batch(&frames).unwrap();
        // Give loopback delivery a moment so the batch is queued on the
        // server socket before the flag goes up; the drain guarantee is
        // about bytes the server has already received.
        std::thread::sleep(Duration::from_millis(50));
        server.request_shutdown();
        let replies = client.read_replies(frames.len()).unwrap();
        assert_eq!(replies.len(), 200);
        assert!(replies.iter().all(|r| *r == Frame::Simple("OK".into())));
        server.shutdown();
    }

    #[test]
    fn accept_after_shutdown_is_refused() {
        let server = kv_server(ServerConfig::default());
        let addr = server.local_addr();
        server.shutdown();
        // The listener is gone; connecting now fails (or is dropped
        // immediately by the OS backlog).
        let client = TcpRemoteClient::connect(addr);
        if let Ok(mut c) = client {
            assert!(c.ping().is_err());
        }
    }
}
