//! Figure 2: delay until expired keys are actually erased.
//!
//! The paper loads 1k–128k keys, gives 20 % of them a 5-minute TTL and the
//! rest a 5-day TTL, waits the 5 minutes, and measures how long stock Redis
//! takes to physically erase the expired 20 % (41 s at 1k keys, 10 728 s at
//! 128k). Its modified Redis ("fast active expiry" backed by an index over
//! expiry times) erases them in under a second even at one million keys.
//!
//! [`run_figure2`] replays that experiment on the simulated clock, so the
//! multi-hour measurements complete in milliseconds of real time while the
//! reported quantity (simulated seconds until the last expired key is
//! gone) is the same one the paper plots.

use gdpr_core::retention::ErasureDelayExperiment;
use kvstore::expire::ExpiryMode;

/// The paper's reported erasure delays (seconds) for the lazy policy, used
/// for side-by-side comparison in the output.
pub const PAPER_LAZY_SECONDS: &[(usize, f64)] = &[
    (1_000, 41.0),
    (2_000, 94.0),
    (4_000, 256.0),
    (8_000, 511.0),
    (16_000, 1_090.0),
    (32_000, 2_228.0),
    (64_000, 4_830.0),
    (128_000, 10_728.0),
];

/// One measured point of the Figure 2 sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig2Point {
    /// Total keys in the datastore.
    pub total_keys: usize,
    /// Expiry policy measured.
    pub mode: ExpiryMode,
    /// Simulated seconds from TTL expiry until the last expired key was
    /// erased.
    pub erase_seconds: f64,
    /// Number of keys that had to be erased (20 % of the total).
    pub erased_keys: usize,
    /// Expiry cycles the policy needed.
    pub cycles: u64,
}

/// Run the Figure 2 sweep for the given sizes and policy.
#[must_use]
pub fn run_sweep(sizes: &[usize], mode: ExpiryMode, seed: u64) -> Vec<Fig2Point> {
    sizes
        .iter()
        .map(|&total_keys| {
            let report = ErasureDelayExperiment::figure2(total_keys, mode).run(seed);
            Fig2Point {
                total_keys,
                mode,
                erase_seconds: report.erase_seconds(),
                erased_keys: report.erased_keys,
                cycles: report.cycles,
            }
        })
        .collect()
}

/// Run the full Figure 2 experiment: the paper's 1k–128k lazy sweep plus
/// the strict policy at the same sizes and at 1 M keys.
#[must_use]
pub fn run_figure2(seed: u64) -> (Vec<Fig2Point>, Vec<Fig2Point>) {
    let sizes: Vec<usize> = PAPER_LAZY_SECONDS.iter().map(|(n, _)| *n).collect();
    let lazy = run_sweep(&sizes, ExpiryMode::LazyProbabilistic, seed);
    let mut strict_sizes = sizes;
    strict_sizes.push(1_000_000);
    let strict = run_sweep(&strict_sizes, ExpiryMode::Strict, seed);
    (lazy, strict)
}

/// Render the Figure 2 table with the paper's numbers alongside.
#[must_use]
pub fn render_table(lazy: &[Fig2Point], strict: &[Fig2Point]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>10} | {:>16} | {:>16} | {:>18} | {:>10}\n",
        "total keys", "paper lazy (s)", "measured lazy (s)", "measured strict (s)", "erased keys"
    ));
    out.push_str(&"-".repeat(84));
    out.push('\n');
    for point in lazy {
        let paper = PAPER_LAZY_SECONDS
            .iter()
            .find(|(n, _)| *n == point.total_keys)
            .map(|(_, s)| *s);
        let strict_point = strict.iter().find(|p| p.total_keys == point.total_keys);
        out.push_str(&format!(
            "{:>10} | {:>16} | {:>17.1} | {:>18} | {:>10}\n",
            point.total_keys,
            paper.map_or_else(|| "-".to_string(), |s| format!("{s:.0}")),
            point.erase_seconds,
            strict_point.map_or_else(|| "-".to_string(), |p| format!("{:.3}", p.erase_seconds)),
            point.erased_keys,
        ));
    }
    // Strict-only sizes (the 1 M point).
    for point in strict
        .iter()
        .filter(|p| !lazy.iter().any(|l| l.total_keys == p.total_keys))
    {
        out.push_str(&format!(
            "{:>10} | {:>16} | {:>17} | {:>18.3} | {:>10}\n",
            point.total_keys, "-", "-", point.erase_seconds, point.erased_keys,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_reproduces_the_papers_shape() {
        let lazy = run_sweep(&[1_000, 4_000], ExpiryMode::LazyProbabilistic, 3);
        let strict = run_sweep(&[1_000, 4_000], ExpiryMode::Strict, 3);
        // Lazy delay grows with database size.
        assert!(lazy[1].erase_seconds > lazy[0].erase_seconds * 2.0);
        // Strict is sub-second everywhere.
        assert!(strict.iter().all(|p| p.erase_seconds < 1.0));
        // Both erase exactly the short-term 20 %.
        assert_eq!(lazy[0].erased_keys, 200);
        assert_eq!(strict[1].erased_keys, 800);
        // Lazy needs many cycles, strict needs one.
        assert!(lazy[0].cycles > strict[0].cycles);
    }

    #[test]
    fn table_renders_paper_and_measured_columns() {
        let lazy = run_sweep(&[1_000], ExpiryMode::LazyProbabilistic, 3);
        let strict = run_sweep(&[1_000, 16_000], ExpiryMode::Strict, 3);
        let table = render_table(&lazy, &strict);
        assert!(table.contains("paper lazy"));
        assert!(table.contains("1000"));
        assert!(table.contains("16000"));
    }
}
