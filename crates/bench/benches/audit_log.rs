//! Ablation: audit-trail flush policy and hash-chaining cost (the paper's
//! real-time vs eventual monitoring knob, §4.1 / DESIGN.md §5.1).

use std::time::Duration;

use audit::log::AuditLog;
use audit::policy::FlushPolicy;
use audit::record::{AuditRecord, Operation};
use audit::sink::{FileSink, MemorySink};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn record(ts: u64) -> AuditRecord {
    AuditRecord::new(ts, "bench-client", Operation::Read)
        .key("user:000000000042")
        .subject("subject-42")
        .purpose("benchmarking")
        .detail("GET 100 bytes")
}

fn bench_audit(c: &mut Criterion) {
    let mut group = c.benchmark_group("audit_log");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    let policies = [
        ("sync", FlushPolicy::Synchronous),
        ("everysec", FlushPolicy::every_second()),
        ("batch-256", FlushPolicy::Batched { max_records: 256 }),
    ];

    for (label, policy) in policies {
        group.bench_with_input(
            BenchmarkId::new("memory-sink", label),
            &policy,
            |b, &policy| {
                let mut log = AuditLog::new(Box::new(MemorySink::new()), policy);
                let mut ts = 0u64;
                b.iter(|| {
                    ts += 1;
                    log.record(record(ts)).unwrap()
                });
            },
        );
    }

    let dir = std::env::temp_dir().join(format!("audit-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (label, policy) in policies {
        group.bench_with_input(
            BenchmarkId::new("file-sink", label),
            &policy,
            |b, &policy| {
                let path = dir.join(format!("{label}.trail"));
                let _ = std::fs::remove_file(&path);
                let mut log = AuditLog::new(Box::new(FileSink::open(&path).unwrap()), policy);
                let mut ts = 0u64;
                b.iter(|| {
                    ts += 1;
                    log.record(record(ts)).unwrap()
                });
            },
        );
    }

    // Chaining ablation: with vs without the SHA-256 hash chain.
    group.bench_function("chained", |b| {
        let mut log = AuditLog::new(
            Box::new(MemorySink::new()),
            FlushPolicy::Batched { max_records: 1024 },
        );
        let mut ts = 0u64;
        b.iter(|| {
            ts += 1;
            log.record(record(ts)).unwrap()
        });
    });
    group.bench_function("unchained", |b| {
        let mut log = AuditLog::new(
            Box::new(MemorySink::new()),
            FlushPolicy::Batched { max_records: 1024 },
        )
        .without_chain();
        let mut ts = 0u64;
        b.iter(|| {
            ts += 1;
            log.record(record(ts)).unwrap()
        });
    });

    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_audit);
criterion_main!(benches);
