//! A write-only driver for crash-replay smoke tests: connects to a running
//! `gdpr-server`, authenticates, writes a deterministic batch of keys, and
//! exits **without** sending `SHUTDOWN` — so a harness can `kill -9` the
//! server afterwards knowing exactly which writes were acknowledged (under
//! `fsync=always` every acknowledged write must survive the replay).
//!
//! ```text
//! cargo run --release --example crash_writer -- 127.0.0.1:16381 [count]
//! cargo run --release --example crash_writer -- 127.0.0.1:16382 [count] verify
//! cargo run --release --example crash_writer -- 127.0.0.1:16382 [count] digest
//! cargo run --release --example crash_writer -- 127.0.0.1:16382 [count] wait-applied
//! ```
//!
//! Prints `crash_writer: N writes acknowledged` on success. In `verify`
//! mode it reads the batch back instead (against a server reopened on the
//! crashed journal) and fails unless every key (`cw000`, `cw001`, …, each
//! holding its own index as ASCII) replayed intact. In `digest` mode it
//! prints the server's `DIGEST` reply — the canonical keyspace SHA-256 —
//! on a line of its own, so a harness can compare a primary and a replica
//! for byte-equivalent state. In `wait-applied` mode it polls `INFO`
//! until the server (a replica) reports a connected stream with zero lag.

use std::error::Error;

use gdpr_storage::gdpr_server::client::TcpRemoteClient;
use gdpr_storage::resp::command::GdprRequest;
use gdpr_storage::resp::Frame;

fn main() -> Result<(), Box<dyn Error>> {
    let addr = std::env::args()
        .nth(1)
        .ok_or("usage: crash_writer <addr> [count] [verify|digest|wait-applied]")?;
    let count: usize = std::env::args()
        .nth(2)
        .map(|c| c.parse())
        .transpose()?
        .unwrap_or(50);

    let mode = std::env::args().nth(3).unwrap_or_default();
    let verify = mode == "verify";

    if mode == "digest" {
        // Print the canonical keyspace digest and exit. DIGEST needs an
        // authenticated session on a compliance server; grants are
        // node-local, so install one here (works on replicas too).
        let mut client = TcpRemoteClient::connect(addr.as_str())?;
        client.gdpr(&GdprRequest::Grant {
            actor: "crash-writer".into(),
            purpose: "smoke-testing".into(),
        })?;
        client.auth("crash-writer", "smoke-testing")?;
        match client.roundtrip(&Frame::command(["DIGEST"]))? {
            Frame::Bulk(hex) => println!("{}", String::from_utf8_lossy(&hex)),
            other => return Err(format!("unexpected DIGEST reply {other:?}").into()),
        }
        return Ok(());
    }
    if mode == "wait-applied" {
        // Poll a replica's INFO until its stream is connected and drained.
        // Drained must hold across two polls ≥500ms apart with an
        // unchanged applied sequence: the lag gauge reads zero while the
        // feeder's last poll-interval of records is still in flight, and
        // only a quiet period longer than the feeder poll proves the
        // stream is truly dry.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        let mut stable_since: Option<(String, std::time::Instant)> = None;
        loop {
            let mut client = TcpRemoteClient::connect(addr.as_str())?;
            if let Frame::Bulk(info) = client.roundtrip(&Frame::command(["INFO"]))? {
                let info = String::from_utf8_lossy(&info).into_owned();
                let applied = info
                    .lines()
                    .find_map(|l| l.strip_prefix("repl_applied_seq:"))
                    .unwrap_or("")
                    .to_string();
                let drained =
                    info.contains("repl_connected:1") && info.contains("repl_lag_records:0");
                match (&stable_since, drained) {
                    (Some((seq, since)), true) if *seq == applied => {
                        if since.elapsed() >= std::time::Duration::from_millis(500) {
                            println!(
                                "crash_writer: replica stream connected and drained \
                                 (applied_seq={applied})"
                            );
                            return Ok(());
                        }
                    }
                    (_, true) => {
                        stable_since = Some((applied, std::time::Instant::now()));
                    }
                    (_, false) => stable_since = None,
                }
            }
            if std::time::Instant::now() > deadline {
                return Err("replica never reported a drained stream".into());
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
    }

    let mut client = TcpRemoteClient::connect(addr.as_str())?;
    client.ping()?;
    client.gdpr(&GdprRequest::Grant {
        actor: "crash-writer".into(),
        purpose: "smoke-testing".into(),
    })?;
    client.auth("crash-writer", "smoke-testing")?;

    if verify {
        for i in 0..count {
            let value = client.get(&format!("cw{i:03}"))?;
            if value.as_deref() != Some(format!("{i}").as_bytes()) {
                return Err(format!("key cw{i:03} did not replay: {value:?}").into());
            }
        }
        println!("crash_writer: {count} keys verified");
        return Ok(());
    }

    for i in 0..count {
        client.set(&format!("cw{i:03}"), format!("{i}").as_bytes())?;
    }
    // Read one key back so the acknowledgements are known to have been
    // processed in order, then drop the connection with the server alive.
    let back = client.get("cw000")?;
    assert_eq!(back.as_deref(), Some(b"0".as_ref()), "readback failed");
    println!("crash_writer: {count} writes acknowledged");
    Ok(())
}
