//! Integration tests of the networked data path: RESP encoding, the
//! TLS-style secure channel, the bandwidth model and the server front-end
//! working together over the storage engine.

use gdpr_storage::kvstore::config::StoreConfig;
use gdpr_storage::kvstore::store::KvStore;
use gdpr_storage::netsim::client::RemoteClient;
use gdpr_storage::netsim::link::LinkConfig;
use gdpr_storage::netsim::server::RespKvServer;
use gdpr_storage::resp::Frame;
use gdpr_storage::ycsb::client::Driver;
use gdpr_storage::ycsb::workload::WorkloadSpec;

fn server() -> RespKvServer {
    RespKvServer::new(KvStore::open(StoreConfig::in_memory()).unwrap())
}

#[test]
fn plain_and_secure_clients_agree_on_semantics() {
    let mut plain = RemoteClient::connect_plain(server(), LinkConfig::plain_44gbps());
    let mut secure =
        RemoteClient::connect_secure(server(), LinkConfig::tls_proxied_4_9gbps(), b"s");

    for client in [&mut plain, &mut secure] {
        client.set("user:1", b"alice").unwrap();
        client.set("user:2", b"bob").unwrap();
        assert_eq!(client.get("user:1").unwrap(), Some(b"alice".to_vec()));
        assert_eq!(client.get("user:3").unwrap(), None);
        assert_eq!(client.scan("user:", 10).unwrap().len(), 2);
        assert!(client.delete("user:2").unwrap());
        assert_eq!(client.scan("user:", 10).unwrap().len(), 1);
        assert!(client.pexpire("user:1", 60_000).unwrap());
    }

    // Same operations, but the secure channel moved more bytes per message.
    assert!(secure.link_stats().0.payload_bytes > plain.link_stats().0.payload_bytes);
}

#[test]
fn raw_resp_frames_roundtrip_through_the_whole_stack() {
    let mut client = RemoteClient::connect_secure(server(), LinkConfig::plain_44gbps(), b"secret");
    let reply = client
        .roundtrip(&Frame::command(["SET", "k", "v"]))
        .unwrap();
    assert_eq!(reply, Frame::Simple("OK".into()));
    let reply = client.roundtrip(&Frame::command(["GET", "k"])).unwrap();
    assert_eq!(reply, Frame::Bulk(b"v".to_vec()));
    // A server-side error frame surfaces as an error on the client.
    assert!(client.roundtrip(&Frame::command(["NOPE"])).is_err());
    // Protocol statistics reflect the traffic.
    assert_eq!(client.requests(), 3);
    assert_eq!(client.server().stats().requests, 3);
    assert_eq!(client.server().stats().errors, 1);
}

#[test]
fn ycsb_workloads_run_cleanly_over_the_simulated_network() {
    struct Adapter(RemoteClient);
    impl gdpr_storage::ycsb::client::KvInterface for Adapter {
        fn insert(
            &mut self,
            key: &str,
            fields: &std::collections::BTreeMap<String, Vec<u8>>,
        ) -> gdpr_storage::ycsb::Result<()> {
            let blob: Vec<u8> = fields.values().flatten().copied().collect();
            self.0
                .set(key, &blob)
                .map_err(gdpr_storage::ycsb::WorkloadError::new)
        }
        fn read(
            &mut self,
            key: &str,
        ) -> gdpr_storage::ycsb::Result<Option<std::collections::BTreeMap<String, Vec<u8>>>>
        {
            Ok(self
                .0
                .get(key)
                .map_err(gdpr_storage::ycsb::WorkloadError::new)?
                .map(|v| {
                    let mut m = std::collections::BTreeMap::new();
                    m.insert("blob".to_string(), v);
                    m
                }))
        }
        fn update(
            &mut self,
            key: &str,
            fields: &std::collections::BTreeMap<String, Vec<u8>>,
        ) -> gdpr_storage::ycsb::Result<()> {
            self.insert(key, fields)
        }
        fn scan(
            &mut self,
            start_key: &str,
            count: usize,
        ) -> gdpr_storage::ycsb::Result<Vec<String>> {
            self.0
                .scan(start_key, count)
                .map_err(gdpr_storage::ycsb::WorkloadError::new)
        }
    }

    for workload in ["A", "B", "C", "D", "E", "F"] {
        let client =
            RemoteClient::connect_secure(server(), LinkConfig::tls_proxied_4_9gbps(), b"ycsb");
        let mut adapter = Adapter(client);
        let mut driver = Driver::new(WorkloadSpec::by_name(workload, 100, 200), 99);
        let load = driver.run_load(&mut adapter).unwrap();
        assert_eq!(load.errors, 0, "workload {workload} load phase");
        let run = driver.run_transactions(&mut adapter).unwrap();
        assert_eq!(run.errors, 0, "workload {workload} run phase");
        assert!(run.throughput() > 0.0);
    }
}

#[test]
fn bandwidth_model_orders_the_links_correctly() {
    let mut fast = RemoteClient::connect_plain(server(), LinkConfig::plain_44gbps());
    let mut slow = RemoteClient::connect_plain(server(), LinkConfig::tls_proxied_4_9gbps());
    for i in 0..200 {
        let payload = vec![0u8; 4096];
        fast.set(&format!("k{i}"), &payload).unwrap();
        slow.set(&format!("k{i}"), &payload).unwrap();
    }
    let fast_time = fast.link_stats().0.modelled_time();
    let slow_time = slow.link_stats().0.modelled_time();
    assert!(
        slow_time > fast_time,
        "4.9 Gb/s must model slower than 44 Gb/s ({slow_time:?} vs {fast_time:?})"
    );
}
