//! Fine-grained, dynamic access control (Articles 25 and 32).
//!
//! The paper notes that Redis "offers no native support for access
//! control"; its retrofit relies on deployment-level controls. Here the
//! compliance layer enforces access itself: an actor may only touch
//! personal data under a purpose it has been *granted*, grants can be
//! scoped to a data subject, and every grant can expire — which is what
//! "for predefined duration of time" in §3.1 of the paper asks for.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A single permission: `actor` may process data for `purpose`,
/// optionally limited to one subject, optionally until a deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grant {
    /// The acting entity (service, team, processor).
    pub actor: String,
    /// The processing purpose being permitted.
    pub purpose: String,
    /// If set, the grant only covers this data subject's records.
    pub subject: Option<String>,
    /// If set, the grant is void after this Unix-millisecond deadline.
    pub expires_at_ms: Option<u64>,
}

impl Grant {
    /// A grant for `actor` to process under `purpose`, unrestricted in
    /// subject and time.
    #[must_use]
    pub fn new(actor: &str, purpose: &str) -> Self {
        Grant {
            actor: actor.to_string(),
            purpose: purpose.to_string(),
            subject: None,
            expires_at_ms: None,
        }
    }

    /// Builder-style: limit the grant to one data subject.
    #[must_use]
    pub fn for_subject(mut self, subject: &str) -> Self {
        self.subject = Some(subject.to_string());
        self
    }

    /// Builder-style: expire the grant at the given deadline.
    #[must_use]
    pub fn until(mut self, expires_at_ms: u64) -> Self {
        self.expires_at_ms = Some(expires_at_ms);
        self
    }

    /// Whether the grant covers the given access at the given time.
    #[must_use]
    pub fn covers(&self, actor: &str, purpose: &str, subject: &str, now_ms: u64) -> bool {
        if self.actor != actor || self.purpose != purpose {
            return false;
        }
        if let Some(granted_subject) = &self.subject {
            if granted_subject != subject {
                return false;
            }
        }
        if let Some(deadline) = self.expires_at_ms {
            if now_ms > deadline {
                return false;
            }
        }
        true
    }
}

/// The decision produced by an access check, carrying the reason so it can
/// be audited.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessDecision {
    /// Access permitted.
    Allow,
    /// Access denied, with the reason recorded for the audit trail.
    Deny {
        /// Why the access was rejected.
        reason: String,
    },
}

impl AccessDecision {
    /// Whether the decision is an allow.
    #[must_use]
    pub fn is_allowed(&self) -> bool {
        matches!(self, AccessDecision::Allow)
    }
}

/// The access-control table.
///
/// Checks take `&self` and count through atomics, so the compliance layer
/// can serve them through a shared read lock: grant installation and
/// revocation are rare control-plane events, while `check` sits on every
/// data-path operation and must not serialize shards against each other.
#[derive(Debug, Default)]
pub struct AccessController {
    /// Grants indexed by actor for fast checks.
    grants: HashMap<String, Vec<Grant>>,
    /// Counters for introspection (atomic so checks need no `&mut`).
    checks: AtomicU64,
    denials: AtomicU64,
}

impl Clone for AccessController {
    fn clone(&self) -> Self {
        AccessController {
            grants: self.grants.clone(),
            checks: AtomicU64::new(self.checks.load(Ordering::Relaxed)),
            denials: AtomicU64::new(self.denials.load(Ordering::Relaxed)),
        }
    }
}

impl AccessController {
    /// An empty controller (denies everything until grants are added).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a grant.
    pub fn grant(&mut self, grant: Grant) {
        self.grants
            .entry(grant.actor.clone())
            .or_default()
            .push(grant);
    }

    /// Remove every grant for `actor` under `purpose` (dynamic revocation).
    /// Returns how many grants were removed.
    pub fn revoke(&mut self, actor: &str, purpose: &str) -> usize {
        match self.grants.get_mut(actor) {
            Some(list) => {
                let before = list.len();
                list.retain(|g| g.purpose != purpose);
                before - list.len()
            }
            None => 0,
        }
    }

    /// Number of grants currently installed.
    #[must_use]
    pub fn grant_count(&self) -> usize {
        self.grants.values().map(Vec::len).sum()
    }

    /// `(checks, denials)` performed so far.
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        (
            self.checks.load(Ordering::Relaxed),
            self.denials.load(Ordering::Relaxed),
        )
    }

    /// Whether any unexpired grant exists for `actor` under `purpose`,
    /// regardless of subject scoping. Used for connection-time session
    /// auth, where the subject of future operations is not yet known;
    /// per-operation checks still apply afterwards.
    #[must_use]
    pub fn has_grant(&self, actor: &str, purpose: &str, now_ms: u64) -> bool {
        self.grants.get(actor).is_some_and(|list| {
            list.iter().any(|g| {
                g.purpose == purpose && g.expires_at_ms.is_none_or(|deadline| now_ms <= deadline)
            })
        })
    }

    /// Decide whether `actor` may process `subject`'s data under `purpose`
    /// at time `now_ms`. Takes `&self` so concurrent checks share a read
    /// lock.
    pub fn check(&self, actor: &str, purpose: &str, subject: &str, now_ms: u64) -> AccessDecision {
        self.checks.fetch_add(1, Ordering::Relaxed);
        let allowed = self.grants.get(actor).is_some_and(|list| {
            list.iter()
                .any(|g| g.covers(actor, purpose, subject, now_ms))
        });
        if allowed {
            AccessDecision::Allow
        } else {
            self.denials.fetch_add(1, Ordering::Relaxed);
            AccessDecision::Deny {
                reason: format!(
                    "no grant covers actor {actor:?} purpose {purpose:?} subject {subject:?}"
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_controller_denies() {
        let acl = AccessController::new();
        let decision = acl.check("app", "billing", "alice", 0);
        assert!(!decision.is_allowed());
        assert_eq!(acl.counters(), (1, 1));
    }

    #[test]
    fn basic_grant_allows_matching_access_only() {
        let mut acl = AccessController::new();
        acl.grant(Grant::new("app", "billing"));
        assert!(acl.check("app", "billing", "alice", 0).is_allowed());
        assert!(
            acl.check("app", "billing", "bob", 0).is_allowed(),
            "unscoped grant covers all subjects"
        );
        assert!(!acl.check("app", "marketing", "alice", 0).is_allowed());
        assert!(!acl.check("other-app", "billing", "alice", 0).is_allowed());
    }

    #[test]
    fn has_grant_ignores_subject_scope_but_honours_expiry() {
        let mut acl = AccessController::new();
        acl.grant(Grant::new("support", "recovery").for_subject("alice"));
        acl.grant(Grant::new("contractor", "audit").until(1_000));
        assert!(acl.has_grant("support", "recovery", 0));
        assert!(!acl.has_grant("support", "billing", 0));
        assert!(!acl.has_grant("nobody", "recovery", 0));
        assert!(acl.has_grant("contractor", "audit", 1_000));
        assert!(!acl.has_grant("contractor", "audit", 1_001));
    }

    #[test]
    fn subject_scoped_grant() {
        let mut acl = AccessController::new();
        acl.grant(Grant::new("support", "account-recovery").for_subject("alice"));
        assert!(acl
            .check("support", "account-recovery", "alice", 0)
            .is_allowed());
        assert!(!acl
            .check("support", "account-recovery", "bob", 0)
            .is_allowed());
    }

    #[test]
    fn time_limited_grant_expires() {
        let mut acl = AccessController::new();
        acl.grant(Grant::new("contractor", "audit").until(1_000));
        assert!(acl.check("contractor", "audit", "alice", 999).is_allowed());
        assert!(acl
            .check("contractor", "audit", "alice", 1_000)
            .is_allowed());
        assert!(!acl
            .check("contractor", "audit", "alice", 1_001)
            .is_allowed());
    }

    #[test]
    fn revocation_removes_matching_grants() {
        let mut acl = AccessController::new();
        acl.grant(Grant::new("app", "billing"));
        acl.grant(Grant::new("app", "analytics"));
        assert_eq!(acl.grant_count(), 2);
        assert_eq!(acl.revoke("app", "billing"), 1);
        assert_eq!(acl.revoke("app", "billing"), 0);
        assert_eq!(acl.revoke("ghost", "billing"), 0);
        assert!(!acl.check("app", "billing", "alice", 0).is_allowed());
        assert!(acl.check("app", "analytics", "alice", 0).is_allowed());
    }

    #[test]
    fn deny_reason_names_the_actor_and_purpose() {
        let acl = AccessController::new();
        match acl.check("rogue", "exfiltration", "alice", 0) {
            AccessDecision::Deny { reason } => {
                assert!(reason.contains("rogue"));
                assert!(reason.contains("exfiltration"));
            }
            AccessDecision::Allow => panic!("must deny"),
        }
    }

    #[test]
    fn multiple_grants_any_match_allows() {
        let mut acl = AccessController::new();
        acl.grant(Grant::new("app", "billing").for_subject("alice"));
        acl.grant(Grant::new("app", "billing").for_subject("bob"));
        assert!(acl.check("app", "billing", "alice", 0).is_allowed());
        assert!(acl.check("app", "billing", "bob", 0).is_allowed());
        assert!(!acl.check("app", "billing", "carol", 0).is_allowed());
    }
}
