//! The single RESP → engine command mapper.
//!
//! Both RESP front-ends — the in-process simulated server in
//! `netsim::server` and the real TCP server in [`crate::tcp`] — delegate
//! every decoded frame to [`Dispatcher`], so the two paths execute the
//! same commands the same way and cannot drift. The dispatcher serves one
//! of two engines:
//!
//! * [`Engine::Kv`] — the raw storage engine, speaking the plain Redis
//!   command surface (the paper's unmodified baseline);
//! * [`Engine::Gdpr`] — the full compliance layer, where data commands
//!   run through access control, purpose limitation, metadata and audit,
//!   and the `GDPR.*` commands (see [`resp::command::GdprRequest`])
//!   expose grants, session auth, metadata get/set and the Chapter 3
//!   subject rights on the wire.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gdpr_core::acl::Grant;
use gdpr_core::export::{ExportCursor, DEFAULT_EXPORT_PAGE_ITEMS};
use gdpr_core::metadata::PersonalMetadata;
use gdpr_core::store::{AccessContext, GdprStore};
use gdpr_crypto::sha256::Sha256;
use kvstore::commands::{Command, Reply};
use kvstore::store::KvStore;
use resp::command::{GdprRequest, WireCommand};
use resp::Frame;

use crate::metrics::{CommandFamily, ServerMetrics};
use crate::replication::ReplicationState;

/// Counters describing dispatcher activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Requests handled (including errors).
    pub requests: u64,
    /// Requests that produced an error reply.
    pub errors: u64,
}

#[derive(Debug, Default)]
struct DispatchStatsCells {
    requests: AtomicU64,
    errors: AtomicU64,
}

/// Snapshot of the connection-layer counters surfaced under `# Clients`
/// in `INFO` and as `clients_*=` lines in `GDPR.STATS`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Connections currently open (gauge).
    pub connected: u64,
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Connections refused with `-ERR max connections reached`.
    pub rejected_over_limit: u64,
    /// Connections closed for exceeding the idle timeout.
    pub idle_timeouts: u64,
    /// Reactor event-loop wakeups (0 on the thread-per-connection
    /// transport, which has no reactor).
    pub reactor_wakeups: u64,
    /// High-water mark of the worker-pool queue depth (0 on the
    /// thread-per-connection transport).
    pub worker_queue_hwm: u64,
}

/// The shared atomic cells behind [`ClientStats`]. Both transports (and,
/// for the reactor, its worker pool) update these through the dispatcher
/// so the stats surfaces read one place regardless of transport.
#[derive(Debug, Default)]
pub struct ClientStatsCells {
    connected: AtomicU64,
    accepted: AtomicU64,
    rejected_over_limit: AtomicU64,
    idle_timeouts: AtomicU64,
    reactor_wakeups: AtomicU64,
    worker_queue_hwm: AtomicU64,
}

/// The single source of truth for connection-layer metric names: every
/// surface that renders them — `INFO`'s `# Clients` section, the
/// `clients_*` lines of `GDPR.STATS`, the Prometheus exposition — walks
/// this table, so the three can never drift in name or order again.
/// Entries are `(name, is_gauge, accessor)`.
pub(crate) type ClientStatField = (&'static str, bool, fn(&ClientStats) -> u64);

pub(crate) const CLIENT_STAT_FIELDS: &[ClientStatField] = &[
    ("clients_connected", true, |c| c.connected),
    ("clients_accepted", false, |c| c.accepted),
    ("clients_rejected_over_limit", false, |c| {
        c.rejected_over_limit
    }),
    ("clients_idle_timeouts", false, |c| c.idle_timeouts),
    ("clients_reactor_wakeups", false, |c| c.reactor_wakeups),
    ("clients_worker_queue_hwm", true, |c| c.worker_queue_hwm),
];

impl ClientStatsCells {
    /// A consistent-enough snapshot (individual relaxed loads).
    #[must_use]
    pub fn snapshot(&self) -> ClientStats {
        ClientStats {
            connected: self.connected.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_over_limit: self.rejected_over_limit.load(Ordering::Relaxed),
            idle_timeouts: self.idle_timeouts.load(Ordering::Relaxed),
            reactor_wakeups: self.reactor_wakeups.load(Ordering::Relaxed),
            worker_queue_hwm: self.worker_queue_hwm.load(Ordering::Relaxed),
        }
    }

    /// A connection was accepted and is now being served.
    pub fn connection_opened(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.connected.fetch_add(1, Ordering::Relaxed);
    }

    /// A previously opened connection closed (any reason).
    pub fn connection_closed(&self) {
        self.connected.fetch_sub(1, Ordering::Relaxed);
    }

    /// A connection was refused because the limit was reached.
    pub fn connection_rejected(&self) {
        self.rejected_over_limit.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was closed by the idle-timeout sweep.
    pub fn idle_timeout(&self) {
        self.idle_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// The reactor loop woke from its wait.
    pub fn reactor_wakeup(&self) {
        self.reactor_wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an observed worker-queue depth; keeps the maximum.
    pub fn observe_worker_queue_depth(&self, depth: u64) {
        self.worker_queue_hwm.fetch_max(depth, Ordering::Relaxed);
    }
}

/// Per-connection state: the access context bound by `GDPR.AUTH`.
///
/// The simulated server keeps one session for its single in-process
/// client; the TCP server keeps one per connection.
#[derive(Debug, Clone, Default)]
pub struct Session {
    ctx: Option<AccessContext>,
}

impl Session {
    /// A fresh, unauthenticated session.
    #[must_use]
    pub fn new() -> Self {
        Session::default()
    }

    /// The access context bound to this session, if authenticated.
    #[must_use]
    pub fn context(&self) -> Option<&AccessContext> {
        self.ctx.as_ref()
    }
}

/// The storage engine a dispatcher serves.
#[derive(Debug, Clone)]
pub enum Engine {
    /// The raw key-value engine (plain Redis surface).
    Kv(KvStore),
    /// The full GDPR compliance layer.
    Gdpr(Arc<GdprStore>),
}

/// Maps decoded RESP frames onto engine commands and executes them.
#[derive(Debug, Clone)]
pub struct Dispatcher {
    engine: Engine,
    stats: Arc<DispatchStatsCells>,
    clients: Arc<ClientStatsCells>,
    repl: Arc<ReplicationState>,
    metrics: Arc<ServerMetrics>,
}

impl Dispatcher {
    /// Dispatch onto the raw key-value engine.
    #[must_use]
    pub fn kv(store: KvStore) -> Self {
        Dispatcher {
            engine: Engine::Kv(store),
            stats: Arc::new(DispatchStatsCells::default()),
            clients: Arc::new(ClientStatsCells::default()),
            repl: Arc::new(ReplicationState::default()),
            metrics: Arc::new(ServerMetrics::default()),
        }
    }

    /// Dispatch onto the GDPR compliance layer.
    #[must_use]
    pub fn gdpr(store: Arc<GdprStore>) -> Self {
        Dispatcher {
            engine: Engine::Gdpr(store),
            stats: Arc::new(DispatchStatsCells::default()),
            clients: Arc::new(ClientStatsCells::default()),
            repl: Arc::new(ReplicationState::default()),
            metrics: Arc::new(ServerMetrics::default()),
        }
    }

    /// Replace the default metrics state (used by the binary to apply
    /// `slowlog=` / `slowlogmax=` flags). Call before cloning: clones
    /// made earlier keep the state they were created with.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<ServerMetrics>) -> Self {
        self.metrics = metrics;
        self
    }

    /// The observability state shared by this dispatcher's clones.
    #[must_use]
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// The replication state shared by this dispatcher's clones, the TCP
    /// stream feeders and (on a replica) the replica runner.
    #[must_use]
    pub fn replication(&self) -> &Arc<ReplicationState> {
        &self.repl
    }

    /// The connection-layer counter cells shared by this dispatcher's
    /// clones; the transports write them, the stats surfaces read them.
    #[must_use]
    pub fn client_cells(&self) -> &Arc<ClientStatsCells> {
        &self.clients
    }

    /// Snapshot of the connection-layer counters.
    #[must_use]
    pub fn client_stats(&self) -> ClientStats {
        self.clients.snapshot()
    }

    /// The engine being served.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The underlying raw engine, whichever front the dispatcher serves
    /// (the compliance layer wraps the same engine type).
    #[must_use]
    pub fn raw_engine(&self) -> &KvStore {
        match &self.engine {
            Engine::Kv(store) => store,
            Engine::Gdpr(store) => store.engine(),
        }
    }

    /// The compliance store, when the dispatcher serves one.
    #[must_use]
    pub fn gdpr_store(&self) -> Option<&Arc<GdprStore>> {
        match &self.engine {
            Engine::Kv(_) => None,
            Engine::Gdpr(store) => Some(store),
        }
    }

    /// Dispatcher activity counters.
    #[must_use]
    pub fn stats(&self) -> DispatchStats {
        DispatchStats {
            requests: self.stats.requests.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
        }
    }

    /// Run the engine's background duties (expiry cycle, batched fsyncs,
    /// audit flush). Exposed on the wire as the `TICK` command so remote
    /// drivers can exercise the same duty cycle embedded drivers do.
    ///
    /// # Errors
    ///
    /// Propagates engine (and, for the compliance engine, audit) errors as
    /// a displayable message.
    pub fn tick(&self) -> std::result::Result<u64, String> {
        match &self.engine {
            Engine::Kv(store) => store
                .tick()
                .map(|o| o.removed.len() as u64)
                .map_err(|e| e.to_string()),
            Engine::Gdpr(store) => store
                .tick()
                .map(|o| o.removed.len() as u64)
                .map_err(|e| e.to_string()),
        }
    }

    /// Render the `INFO` reply: server identity, engine counters, the
    /// per-segment journal section (the paper's risk-window metric
    /// observable per shard over the wire), on a compliance engine the
    /// GDPR counters, and the latency percentiles of every live
    /// histogram.
    #[must_use]
    pub fn render_info(&self) -> String {
        let engine = self.raw_engine();
        let mut out = format!(
            "# Server\nversion:{}\npid:{}\nuptime_seconds:{}\ntransport:{}\nshards:{}\n\
             host_cores:{}\nengine:{}\n",
            env!("CARGO_PKG_VERSION"),
            std::process::id(),
            self.metrics.uptime_seconds(),
            self.metrics.transport(),
            engine.shard_count(),
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            match &self.engine {
                Engine::Kv(_) => "kv",
                Engine::Gdpr(_) => "gdpr",
            },
        );
        let engine_stats = engine.stats();
        out.push_str(&engine_stats.render());
        // `# Memory`: the bounded-memory story in one section — live
        // footprint vs the configured ceiling, the evictor's work so far,
        // and (on a compliance engine) the hot-read cache counters.
        out.push_str(&format!(
            "# Memory\nmem_bytes:{}\nmaxmemory:{}\nmaxmemory_policy:{}\nevicted_keys:{}\n",
            engine_stats.db.mem_bytes,
            engine_stats.max_memory,
            engine_stats.eviction_policy,
            engine_stats.db.evicted_keys,
        ));
        if let Some(store) = self.gdpr_store() {
            let cache = store.hot_cache_stats();
            out.push_str(&format!(
                "hot_cache_enabled:{}\ncache_hits:{}\ncache_misses:{}\n\
                 cache_admissions:{}\ncache_invalidations:{}\n",
                u8::from(store.hot_cache_enabled()),
                cache.hits,
                cache.misses,
                cache.admissions,
                cache.invalidations,
            ));
        }
        if let Some(segments) = engine.aof_segment_stats() {
            out.push_str("# AofSegments\n");
            out.push_str(&format!(
                "aof_epoch:{}\n",
                engine.aof_epoch().unwrap_or_default()
            ));
            for (idx, seg) in segments.iter().enumerate() {
                out.push_str(&format!(
                    "aof_seg{idx}:records={},fsyncs={},unsynced={},group_commits={},\
                     group_commit_records={},max_batch={}\n",
                    seg.records_appended,
                    seg.fsyncs,
                    seg.unsynced_records,
                    seg.group_commits,
                    seg.group_commit_records,
                    seg.max_group_commit_batch,
                ));
            }
        }
        if let Some(store) = self.gdpr_store() {
            let stats = store.stats();
            out.push_str(&format!(
                "# Gdpr\nallowed_ops:{}\ndenied_ops:{}\naudit_records:{}\n\
                 erased_by_request:{}\nerased_by_retention:{}\n",
                stats.allowed_ops,
                stats.denied_ops,
                stats.audit_records,
                stats.erased_by_request,
                stats.erased_by_retention,
            ));
        }
        let clients = self.clients.snapshot();
        out.push_str("# Clients\n");
        for (name, _, get) in CLIENT_STAT_FIELDS {
            out.push_str(&format!("{name}:{}\n", get(&clients)));
        }
        let repl = self.repl.info();
        out.push_str("# Replication\n");
        if repl.is_replica {
            out.push_str(&format!(
                "role:replica\nprimary:{}\nrepl_connected:{}\nrepl_applied_seq:{}\n\
                 repl_primary_seq:{}\nrepl_lag_records:{}\nrepl_full_syncs:{}\n\
                 repl_records_applied:{}\n",
                repl.primary_addr.as_deref().unwrap_or("?"),
                u8::from(repl.connected),
                repl.applied_seq,
                repl.primary_seq,
                repl.lag_records,
                repl.full_syncs,
                repl.records_applied,
            ));
        } else {
            out.push_str(&format!(
                "role:primary\nconnected_replicas:{}\nrepl_records_streamed:{}\n\
                 repl_lost_streams:{}\n",
                repl.connected_replicas, repl.records_streamed, repl.lost_streams,
            ));
        }
        out.push_str("# Latency\n");
        for line in self.latency_lines(':') {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Hex SHA-256 over the engine's canonical keyspace rendering — the
    /// `DIGEST` wire command. Two servers hold equivalent state (keys,
    /// values, absolute expiry deadlines, metadata shadow records) iff
    /// their digests are equal, regardless of shard count or journal
    /// layout; CI's replication smoke compares primary and replica with it.
    #[must_use]
    pub fn state_digest_hex(&self) -> String {
        let digest = Sha256::digest(&self.raw_engine().canonical_state());
        let mut hex = String::with_capacity(digest.len() * 2);
        for byte in digest {
            hex.push_str(&format!("{byte:02x}"));
        }
        hex
    }

    /// Handle one decoded request frame and produce the reply frame.
    ///
    /// This is the observability interception point: every parsed
    /// command is timed into its family histogram and, over the
    /// configured threshold, captured into the `SLOWLOG` ring.
    pub fn handle_frame(&self, frame: &Frame, session: &mut Session) -> Frame {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let (reply, timed) = match WireCommand::from_frame(frame) {
            Ok(cmd) => {
                let family = CommandFamily::classify(&cmd.name);
                (self.dispatch(&cmd, session), Some((family, cmd)))
            }
            Err(e) => (Frame::Error(format!("ERR {e}")), None),
        };
        if matches!(reply, Frame::Error(_)) {
            self.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        if let Some((family, cmd)) = timed {
            let elapsed = started.elapsed();
            self.metrics.record_command(family, elapsed);
            let micros = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
            if self.metrics.slowlog.should_log(micros) {
                self.metrics.slowlog.push(micros, &cmd.name, &cmd.args);
            }
        }
        reply
    }

    /// The `SLOWLOG GET [n] | RESET | LEN` container command, with
    /// Redis-shaped replies (`GET` returns `[id, unix_seconds,
    /// duration_micros, [command…]]` entries, newest first).
    fn slowlog_command(&self, cmd: &WireCommand) -> Frame {
        let slowlog = &self.metrics.slowlog;
        let sub = match cmd.subcommand() {
            Ok(sub) => sub,
            Err(_) => return Frame::Error("ERR SLOWLOG requires GET|RESET|LEN".to_string()),
        };
        match sub.as_str() {
            "GET" => {
                let count = match cmd.arity() {
                    1 => 10,
                    2 => match cmd.arg_u64(1) {
                        Ok(n) => n as usize,
                        Err(e) => return Frame::Error(format!("ERR {e}")),
                    },
                    _ => {
                        return Frame::Error("ERR SLOWLOG GET takes at most one count".to_string())
                    }
                };
                let entries = slowlog
                    .entries(count)
                    .into_iter()
                    .map(|entry| {
                        Frame::Array(vec![
                            Frame::Integer(entry.id as i64),
                            Frame::Integer(entry.unix_secs as i64),
                            Frame::Integer(entry.duration_micros as i64),
                            Frame::Array(
                                entry
                                    .command
                                    .into_iter()
                                    .map(|arg| Frame::Bulk(arg.into_bytes()))
                                    .collect(),
                            ),
                        ])
                    })
                    .collect();
                Frame::Array(entries)
            }
            "RESET" => {
                slowlog.reset();
                Frame::Simple("OK".to_string())
            }
            "LEN" => Frame::Integer(slowlog.len() as i64),
            other => Frame::Error(format!("ERR unknown SLOWLOG subcommand '{other}'")),
        }
    }

    /// Handle one parsed wire command.
    pub fn dispatch(&self, cmd: &WireCommand, session: &mut Session) -> Frame {
        // Protocol-level commands, identical for both engines.
        match cmd.name.as_str() {
            "PING" => return Frame::Simple("PONG".to_string()),
            "INFO" => return Frame::Bulk(self.render_info().into_bytes()),
            "SLOWLOG" => return self.slowlog_command(cmd),
            // SHUTDOWN is acknowledged here; the transport layer watches
            // for the name and begins its graceful shutdown after the
            // reply is flushed.
            "SHUTDOWN" => return Frame::Simple("OK".to_string()),
            "TICK" => {
                return match self.tick() {
                    Ok(removed) => Frame::Integer(removed as i64),
                    Err(e) => Frame::Error(format!("ERR {e}")),
                }
            }
            // On the compliance engine the digest summarizes every
            // subject's data and metadata, and computing it serializes the
            // whole keyspace under all shard locks — an authenticated
            // session is required (the raw engine has no auth concept).
            "DIGEST" => {
                if self.gdpr_store().is_some() && session.context().is_none() {
                    return Frame::Error(
                        "NOAUTH authenticate with GDPR.AUTH actor purpose first".to_string(),
                    );
                }
                return Frame::Bulk(self.state_digest_hex().into_bytes());
            }
            // The TCP transport intercepts REPLSYNC before dispatch and
            // turns the connection into a replication stream; seeing it
            // here means the front-end cannot serve one (netsim).
            "REPLSYNC" => {
                return Frame::Error("ERR REPLSYNC is only served on the TCP transport".to_string())
            }
            _ => {}
        }
        // A replica serves reads and redirects every data write to its
        // primary. GDPR.GRANT / GDPR.REVOKE stay local: grants are
        // node-local control-plane state (each replica authenticates its
        // own readers), not replicated data.
        if self.repl.is_replica() && is_write_command(&cmd.name) {
            return Frame::Error(format!(
                "READONLY replica; write commands must go to the primary at {}",
                self.repl.primary_addr().unwrap_or_else(|| "?".to_string())
            ));
        }
        if let Some(parsed) = GdprRequest::from_wire(cmd) {
            let request = match parsed {
                Ok(request) => request,
                Err(e) => return Frame::Error(format!("ERR {e}")),
            };
            return match &self.engine {
                Engine::Kv(_) => {
                    Frame::Error("ERR compliance layer not enabled on this server".to_string())
                }
                Engine::Gdpr(store) => dispatch_gdpr(self, store, &request, session),
            };
        }
        match &self.engine {
            Engine::Kv(store) => match translate(cmd) {
                Ok(command) => match store.execute(command) {
                    Ok(reply) => reply_to_frame(reply),
                    Err(e) => store_err_frame(&e),
                },
                Err(message) => Frame::Error(message),
            },
            Engine::Gdpr(store) => dispatch_gdpr_kv(store, cmd, session),
        }
    }
}

/// Whether a wire command mutates data (and must therefore be redirected
/// to the primary when this server is a replica). `GDPR.GRANT`/`REVOKE`
/// are deliberately absent: ACL state is node-local.
fn is_write_command(name: &str) -> bool {
    matches!(
        name,
        "SET"
            | "DEL"
            | "UNLINK"
            | "EXPIRE"
            | "PEXPIRE"
            | "PEXPIREAT"
            | "PERSIST"
            | "HSET"
            | "HMSET"
            | "HDEL"
            | "SADD"
            | "SREM"
            | "FLUSHALL"
            | "FLUSHDB"
            | "GDPR.PUT"
            | "GDPR.SETMETA"
            | "GDPR.ERASE"
            | "GDPR.OBJECT"
    )
}

/// Translate a plain Redis wire command into an engine command.
///
/// This is the mapping formerly private to `netsim::server`; it is shared
/// here so the simulated and TCP servers accept exactly the same surface.
///
/// # Errors
///
/// Returns a ready-to-send RESP error message for unknown commands, bad
/// arity and malformed arguments.
pub fn translate(cmd: &WireCommand) -> std::result::Result<Command, String> {
    let arity_err = |need: usize| {
        Err(format!(
            "ERR wrong number of arguments for '{}' ({} given, {need} needed)",
            cmd.name,
            cmd.arity()
        ))
    };
    let s = |i: usize| {
        cmd.arg_str(i)
            .map(str::to_string)
            .map_err(|e| format!("ERR {e}"))
    };
    let b = |i: usize| {
        cmd.arg_bytes(i)
            .map(<[u8]>::to_vec)
            .map_err(|e| format!("ERR {e}"))
    };
    let n = |i: usize| cmd.arg_u64(i).map_err(|e| format!("ERR {e}"));

    let command = match cmd.name.as_str() {
        "SET" => {
            if cmd.arity() != 2 {
                return arity_err(2);
            }
            Command::Set {
                key: s(0)?,
                value: b(1)?,
            }
        }
        "GET" => {
            if cmd.arity() != 1 {
                return arity_err(1);
            }
            Command::Get { key: s(0)? }
        }
        "DEL" | "UNLINK" => {
            if cmd.arity() != 1 {
                return arity_err(1);
            }
            Command::Del { key: s(0)? }
        }
        "EXISTS" => {
            if cmd.arity() != 1 {
                return arity_err(1);
            }
            Command::Exists { key: s(0)? }
        }
        "PEXPIRE" => {
            if cmd.arity() != 2 {
                return arity_err(2);
            }
            Command::Expire {
                key: s(0)?,
                ttl_ms: n(1)?,
            }
        }
        "EXPIRE" => {
            if cmd.arity() != 2 {
                return arity_err(2);
            }
            Command::Expire {
                key: s(0)?,
                ttl_ms: n(1)? * 1_000,
            }
        }
        "PEXPIREAT" => {
            if cmd.arity() != 2 {
                return arity_err(2);
            }
            Command::ExpireAt {
                key: s(0)?,
                at_ms: n(1)?,
            }
        }
        "PTTL" | "TTL" => {
            if cmd.arity() != 1 {
                return arity_err(1);
            }
            Command::Ttl { key: s(0)? }
        }
        "PERSIST" => {
            if cmd.arity() != 1 {
                return arity_err(1);
            }
            Command::Persist { key: s(0)? }
        }
        "HSET" => {
            if cmd.arity() != 3 {
                return arity_err(3);
            }
            Command::HSet {
                key: s(0)?,
                field: s(1)?,
                value: b(2)?,
            }
        }
        "HMSET" => {
            if cmd.arity() < 3 || cmd.arity().is_multiple_of(2) {
                return arity_err(3);
            }
            let key = s(0)?;
            let mut fields = BTreeMap::new();
            let mut i = 1;
            while i < cmd.arity() {
                fields.insert(s(i)?, b(i + 1)?);
                i += 2;
            }
            Command::HSetMulti { key, fields }
        }
        "HGET" => {
            if cmd.arity() != 2 {
                return arity_err(2);
            }
            Command::HGet {
                key: s(0)?,
                field: s(1)?,
            }
        }
        "HGETALL" => {
            if cmd.arity() != 1 {
                return arity_err(1);
            }
            Command::HGetAll { key: s(0)? }
        }
        "HDEL" => {
            if cmd.arity() != 2 {
                return arity_err(2);
            }
            Command::HDel {
                key: s(0)?,
                field: s(1)?,
            }
        }
        "SADD" => {
            if cmd.arity() != 2 {
                return arity_err(2);
            }
            Command::SAdd {
                key: s(0)?,
                member: b(1)?,
            }
        }
        "SREM" => {
            if cmd.arity() != 2 {
                return arity_err(2);
            }
            Command::SRem {
                key: s(0)?,
                member: b(1)?,
            }
        }
        "SMEMBERS" => {
            if cmd.arity() != 1 {
                return arity_err(1);
            }
            Command::SMembers { key: s(0)? }
        }
        "KEYS" => {
            if cmd.arity() != 1 {
                return arity_err(1);
            }
            Command::Keys { pattern: s(0)? }
        }
        "SCAN" => {
            if cmd.arity() != 2 {
                return arity_err(2);
            }
            Command::Scan {
                start: s(0)?,
                count: n(1)?,
            }
        }
        "DBSIZE" => Command::DbSize,
        "FLUSHALL" | "FLUSHDB" => Command::FlushAll,
        other => return Err(format!("ERR unknown command '{other}'")),
    };
    Ok(command)
}

/// Convert an engine reply into a RESP frame.
#[must_use]
pub fn reply_to_frame(reply: Reply) -> Frame {
    match reply {
        Reply::Ok => Frame::Simple("OK".to_string()),
        Reply::Nil => Frame::Null,
        Reply::Int(i) => Frame::Integer(i),
        Reply::Bytes(b) => Frame::Bulk(b),
        Reply::Array(items) => Frame::Array(items.into_iter().map(Frame::Bulk).collect()),
        Reply::StringArray(keys) => Frame::Array(
            keys.into_iter()
                .map(|k| Frame::Bulk(k.into_bytes()))
                .collect(),
        ),
        Reply::Map(map) => {
            let mut items = Vec::with_capacity(map.len() * 2);
            for (field, value) in map {
                items.push(Frame::Bulk(field.into_bytes()));
                items.push(Frame::Bulk(value));
            }
            Frame::Array(items)
        }
        _ => Frame::Error("ERR unsupported reply".to_string()),
    }
}

fn string_array_frame<I: IntoIterator<Item = String>>(items: I) -> Frame {
    Frame::Array(
        items
            .into_iter()
            .map(|s| Frame::Bulk(s.into_bytes()))
            .collect(),
    )
}

/// Ready-to-send error message for a compliance-layer failure. A write
/// rejected by the engine's `noeviction` maxmemory policy keeps Redis'
/// `-OOM` error class (clients special-case that prefix); everything else
/// is `-ERR`.
fn gdpr_err_string(e: &gdpr_core::GdprError) -> String {
    match e {
        gdpr_core::GdprError::Store(oom @ kvstore::StoreError::Oom { .. }) => format!("OOM {oom}"),
        other => format!("ERR {other}"),
    }
}

fn gdpr_err(e: &gdpr_core::GdprError) -> Frame {
    Frame::Error(gdpr_err_string(e))
}

/// RESP error frame for a raw-engine failure (`-OOM` for maxmemory
/// rejections, `-ERR` otherwise).
fn store_err_frame(e: &kvstore::StoreError) -> Frame {
    match e {
        kvstore::StoreError::Oom { .. } => Frame::Error(format!("OOM {e}")),
        other => Frame::Error(format!("ERR {other}")),
    }
}

/// The session context, or the ready-to-send `NOAUTH` error.
fn require_ctx(session: &Session) -> std::result::Result<AccessContext, Frame> {
    session.ctx.clone().ok_or_else(|| {
        Frame::Error("NOAUTH authenticate with GDPR.AUTH actor purpose first".to_string())
    })
}

/// Metadata attached to data written through the plain Redis surface on
/// the compliance engine: the key doubles as the subject id and the
/// session purpose is whitelisted (the same convention the embedded YCSB
/// adapter uses).
fn default_metadata(key: &str, ctx: &AccessContext) -> PersonalMetadata {
    PersonalMetadata::new(key).with_purpose(&ctx.purpose)
}

fn metadata_from_request(
    subject: &str,
    purposes: &[String],
    ttl_ms: Option<u64>,
) -> PersonalMetadata {
    let mut meta = PersonalMetadata::new(subject);
    for purpose in purposes {
        meta.purposes.insert(purpose.clone());
    }
    if let Some(ttl) = ttl_ms {
        meta = meta.with_ttl_millis(ttl);
    }
    meta
}

/// Render a metadata record as an array of `field=value` bulk strings.
fn metadata_frame(meta: &PersonalMetadata) -> Frame {
    let join = |set: &std::collections::BTreeSet<String>| {
        set.iter().cloned().collect::<Vec<_>>().join(",")
    };
    string_array_frame(vec![
        format!("subject={}", meta.subject),
        format!("purposes={}", join(&meta.purposes)),
        format!("objections={}", join(&meta.objections)),
        format!("origin={}", meta.origin),
        format!("location={}", meta.location),
        format!("created_at_ms={}", meta.created_at_ms),
        format!(
            "expires_at_ms={}",
            meta.expires_at_ms
                .map_or_else(|| "-".to_string(), |at| at.to_string())
        ),
    ])
}

/// Execute a `GDPR.*` request against the compliance layer. Takes the
/// dispatcher itself so the `GDPR.STATS` arm can render the shared
/// client-stat table and latency report alongside the store's counters.
fn dispatch_gdpr(
    dispatcher: &Dispatcher,
    store: &GdprStore,
    request: &GdprRequest,
    session: &mut Session,
) -> Frame {
    match request {
        GdprRequest::Auth { actor, purpose } => {
            if !store.has_grant(actor, purpose) {
                return Frame::Error(format!(
                    "ERR no grant covers actor {actor:?} purpose {purpose:?}"
                ));
            }
            session.ctx = Some(AccessContext::new(actor, purpose));
            Frame::Simple("OK".to_string())
        }
        GdprRequest::Grant { actor, purpose } => {
            store.grant(Grant::new(actor, purpose));
            Frame::Simple("OK".to_string())
        }
        GdprRequest::Revoke { actor, purpose } => {
            Frame::Integer(store.revoke(actor, purpose) as i64)
        }
        GdprRequest::Put {
            key,
            subject,
            purposes,
            value,
            ttl_ms,
        } => {
            let ctx = match require_ctx(session) {
                Ok(ctx) => ctx,
                Err(e) => return e,
            };
            let meta = metadata_from_request(subject, purposes, *ttl_ms);
            match store.put(&ctx, key, value.clone(), meta) {
                Ok(()) => Frame::Simple("OK".to_string()),
                Err(e) => gdpr_err(&e),
            }
        }
        GdprRequest::GetMeta { key } => {
            let ctx = match require_ctx(session) {
                Ok(ctx) => ctx,
                Err(e) => return e,
            };
            match store.metadata(&ctx, key) {
                Ok(Some(meta)) => metadata_frame(&meta),
                Ok(None) => Frame::Null,
                Err(e) => gdpr_err(&e),
            }
        }
        GdprRequest::SetMeta {
            key,
            subject,
            purposes,
            ttl_ms,
        } => {
            let ctx = match require_ctx(session) {
                Ok(ctx) => ctx,
                Err(e) => return e,
            };
            let meta = metadata_from_request(subject, purposes, *ttl_ms);
            match store.set_metadata(&ctx, key, meta) {
                Ok(()) => Frame::Simple("OK".to_string()),
                Err(e) => gdpr_err(&e),
            }
        }
        GdprRequest::KeysOf { subject } => {
            // Listing a subject's keys reveals where their personal data
            // lives — as access-guarded as any other subject-data read.
            if let Err(e) = require_ctx(session) {
                return e;
            }
            match store.keys_of_subject(subject) {
                Ok(keys) => string_array_frame(keys),
                Err(e) => gdpr_err(&e),
            }
        }
        GdprRequest::Erase { subject } => {
            let ctx = match require_ctx(session) {
                Ok(ctx) => ctx,
                Err(e) => return e,
            };
            match store.right_to_erasure(&ctx, subject) {
                Ok(report) => Frame::Integer(report.erased_keys.len() as i64),
                Err(e) => gdpr_err(&e),
            }
        }
        GdprRequest::Export {
            subject,
            cursor,
            count,
        } => {
            let ctx = match require_ctx(session) {
                Ok(ctx) => ctx,
                Err(e) => return e,
            };
            match cursor {
                // Monolithic form: one bulk reply with the whole document.
                None => match store.right_to_portability(&ctx, subject) {
                    Ok(json) => Frame::Bulk(json.into_bytes()),
                    Err(e) => gdpr_err(&e),
                },
                // Paged form: `[next_cursor, chunk]`, SCAN-style ("0" ends).
                Some(token) => match ExportCursor::parse(token) {
                    None => Frame::Error("ERR invalid export cursor".to_string()),
                    Some(resume) => {
                        let count = count.map_or(DEFAULT_EXPORT_PAGE_ITEMS, |n| n as usize);
                        match store.export_page(&ctx, subject, resume.as_ref(), count) {
                            Ok(page) => Frame::Array(vec![
                                Frame::Bulk(
                                    page.next_cursor
                                        .map_or_else(|| "0".to_string(), |c| c.encode())
                                        .into_bytes(),
                                ),
                                Frame::Bulk(page.chunk.into_bytes()),
                            ]),
                            Err(e) => gdpr_err(&e),
                        }
                    }
                },
            }
        }
        GdprRequest::Object { subject, purpose } => {
            let ctx = match require_ctx(session) {
                Ok(ctx) => ctx,
                Err(e) => return e,
            };
            match store.right_to_object(&ctx, subject, purpose) {
                Ok(report) => Frame::Integer(report.updated_keys.len() as i64),
                Err(e) => gdpr_err(&e),
            }
        }
        GdprRequest::Stats => {
            let stats = store.stats();
            let mut lines = vec![
                format!("allowed_ops={}", stats.allowed_ops),
                format!("denied_ops={}", stats.denied_ops),
                format!("audit_records={}", stats.audit_records),
                format!("erased_by_request={}", stats.erased_by_request),
                format!("erased_by_retention={}", stats.erased_by_retention),
                // The hot-read cache: hit rate tells how much of the GET
                // load the compliance fast path absorbs; invalidations are
                // the erasure-correctness work it performed.
                format!("cache_hits={}", stats.cache_hits),
                format!("cache_misses={}", stats.cache_misses),
                format!("cache_admissions={}", stats.cache_admissions),
                format!("cache_invalidations={}", stats.cache_invalidations),
            ];
            // One engine aggregation pass serves both the deadline-index
            // lines and the journal lines below.
            let engine = store.engine().stats();
            // Bounded-memory accounting: the live footprint against the
            // configured ceiling, and the sampled evictor's counter.
            lines.push(format!("mem_bytes={}", engine.db.mem_bytes));
            lines.push(format!("mem_maxmemory={}", engine.max_memory));
            lines.push(format!("mem_maxmemory_policy={}", engine.eviction_policy));
            lines.push(format!("mem_evicted_keys={}", engine.db.evicted_keys));
            // The strict-expiry deadline index (retention timeliness is a
            // compliance metric): wheel occupancy and cascade counters, or
            // the BTree baseline's entry count.
            let ttl = engine.deadline_index;
            lines.push(format!("ttl_index={}", ttl.kind));
            lines.push(format!("ttl_entries={}", ttl.entries));
            lines.push(format!("ttl_fired={}", ttl.fired));
            lines.push(format!("ttl_wheel_cascades={}", ttl.cascades));
            lines.push(format!("ttl_wheel_stale_dropped={}", ttl.stale_dropped));
            lines.push(format!("ttl_wheel_overflow={}", ttl.overflow_entries));
            // The journaling cost the paper measures, observable per shard:
            // aggregate first (reusing the engine pass above), then one
            // line per segment.
            if engine.aof_segments > 0 {
                let total = engine.aof;
                let segments = store.aof_segment_stats().unwrap_or_default();
                lines.push(format!("aof_segments={}", segments.len()));
                lines.push(format!("aof_records={}", total.records_appended));
                lines.push(format!("aof_fsyncs={}", total.fsyncs));
                lines.push(format!("aof_unsynced_records={}", total.unsynced_records));
                lines.push(format!("aof_group_commits={}", total.group_commits));
                lines.push(format!(
                    "aof_group_commit_avg_batch={:.2}",
                    total.avg_group_commit_batch().unwrap_or(0.0)
                ));
                for (idx, seg) in segments.iter().enumerate() {
                    lines.push(format!(
                        "aof_seg{idx}=records:{},fsyncs:{},unsynced:{},group_commits:{},max_batch:{}",
                        seg.records_appended,
                        seg.fsyncs,
                        seg.unsynced_records,
                        seg.group_commits,
                        seg.max_group_commit_batch,
                    ));
                }
            }
            // The connection layer: fan-in capacity bounds how many
            // subjects can exercise their rights concurrently. Names come
            // from the same descriptor table INFO renders, so the two
            // surfaces cannot drift.
            let c = dispatcher.clients.snapshot();
            for (name, _, get) in CLIENT_STAT_FIELDS {
                lines.push(format!("{name}={}", get(&c)));
            }
            // Replication: erasure timeliness is only as good as the lag
            // of the worst copy, so the propagation gauges are compliance
            // metrics in their own right.
            let info = dispatcher.repl.info();
            if info.is_replica {
                lines.push("repl_role=replica".to_string());
                lines.push(format!(
                    "repl_primary={}",
                    info.primary_addr.as_deref().unwrap_or("?")
                ));
                lines.push(format!("repl_connected={}", u8::from(info.connected)));
                lines.push(format!("repl_applied_seq={}", info.applied_seq));
                lines.push(format!("repl_lag_records={}", info.lag_records));
                lines.push(format!("repl_full_syncs={}", info.full_syncs));
                lines.push(format!("repl_records_applied={}", info.records_applied));
            } else {
                lines.push("repl_role=primary".to_string());
                lines.push(format!(
                    "repl_connected_replicas={}",
                    info.connected_replicas
                ));
                lines.push(format!("repl_records_streamed={}", info.records_streamed));
                lines.push(format!("repl_lost_streams={}", info.lost_streams));
            }
            // The same latency report INFO's # Latency section renders,
            // with this surface's `=` separator.
            lines.extend(dispatcher.latency_lines('='));
            string_array_frame(lines)
        }
        // `GdprRequest` is non-exhaustive: a newer wire surface than this
        // server understands is a protocol error, not a panic.
        _ => Frame::Error("ERR unsupported GDPR command".to_string()),
    }
}

/// Execute a plain Redis command against the compliance layer: the subset
/// the remote YCSB adapter needs, each call running through access
/// control, purpose limitation, metadata and audit.
fn dispatch_gdpr_kv(store: &GdprStore, cmd: &WireCommand, session: &mut Session) -> Frame {
    // Commands that need no access context.
    if cmd.name == "DBSIZE" {
        return Frame::Integer(store.len() as i64);
    }
    let ctx = match require_ctx(session) {
        Ok(ctx) => ctx,
        Err(e) => return e,
    };
    let arg = |i: usize| cmd.arg_str(i).map_err(|e| format!("ERR {e}"));
    let result: std::result::Result<Frame, String> = (|| {
        let frame = match cmd.name.as_str() {
            "SET" => {
                if cmd.arity() != 2 {
                    return Err(format!("ERR wrong number of arguments for '{}'", cmd.name));
                }
                let key = arg(0)?;
                let value = cmd.arg_bytes(1).map_err(|e| format!("ERR {e}"))?.to_vec();
                store
                    .put(&ctx, key, value, default_metadata(key, &ctx))
                    .map_err(|e| gdpr_err_string(&e))?;
                Frame::Simple("OK".to_string())
            }
            "GET" => {
                if cmd.arity() != 1 {
                    return Err(format!("ERR wrong number of arguments for '{}'", cmd.name));
                }
                match store.get(&ctx, arg(0)?).map_err(|e| gdpr_err_string(&e))? {
                    Some(value) => Frame::Bulk(value),
                    None => Frame::Null,
                }
            }
            "DEL" | "UNLINK" => {
                if cmd.arity() != 1 {
                    return Err(format!("ERR wrong number of arguments for '{}'", cmd.name));
                }
                let existed = store
                    .delete(&ctx, arg(0)?)
                    .map_err(|e| gdpr_err_string(&e))?;
                Frame::Integer(i64::from(existed))
            }
            "HMSET" => {
                if cmd.arity() < 3 || cmd.arity().is_multiple_of(2) {
                    return Err(format!("ERR wrong number of arguments for '{}'", cmd.name));
                }
                let key = arg(0)?;
                let mut fields = BTreeMap::new();
                let mut i = 1;
                while i < cmd.arity() {
                    fields.insert(
                        arg(i)?.to_string(),
                        cmd.arg_bytes(i + 1)
                            .map_err(|e| format!("ERR {e}"))?
                            .to_vec(),
                    );
                    i += 2;
                }
                store
                    .put_record(&ctx, key, &fields, default_metadata(key, &ctx))
                    .map_err(|e| gdpr_err_string(&e))?;
                Frame::Simple("OK".to_string())
            }
            "HGETALL" => {
                if cmd.arity() != 1 {
                    return Err(format!("ERR wrong number of arguments for '{}'", cmd.name));
                }
                match store
                    .get_record(&ctx, arg(0)?)
                    .map_err(|e| gdpr_err_string(&e))?
                {
                    Some(map) => reply_to_frame(Reply::Map(map)),
                    None => Frame::Null,
                }
            }
            "SCAN" => {
                if cmd.arity() != 2 {
                    return Err(format!("ERR wrong number of arguments for '{}'", cmd.name));
                }
                let count = cmd.arg_u64(1).map_err(|e| format!("ERR {e}"))? as usize;
                let keys = store
                    .scan(&ctx, arg(0)?, count)
                    .map_err(|e| gdpr_err_string(&e))?;
                string_array_frame(keys)
            }
            other => {
                return Err(format!(
                    "ERR command '{other}' is not available under the compliance layer"
                ))
            }
        };
        Ok(frame)
    })();
    match result {
        Ok(frame) => frame,
        Err(message) => Frame::Error(message),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdpr_core::policy::CompliancePolicy;
    use kvstore::config::StoreConfig;

    fn kv_dispatcher() -> Dispatcher {
        Dispatcher::kv(KvStore::open(StoreConfig::in_memory()).unwrap())
    }

    fn gdpr_dispatcher() -> (Dispatcher, Arc<GdprStore>) {
        let store = Arc::new(GdprStore::open_in_memory(CompliancePolicy::eventual()).unwrap());
        (Dispatcher::gdpr(Arc::clone(&store)), store)
    }

    fn authed_session(dispatcher: &Dispatcher) -> Session {
        let mut session = Session::new();
        assert_eq!(
            dispatcher.handle_frame(
                &GdprRequest::Grant {
                    actor: "app".into(),
                    purpose: "billing".into()
                }
                .to_frame(),
                &mut session,
            ),
            Frame::Simple("OK".into())
        );
        assert_eq!(
            dispatcher.handle_frame(
                &GdprRequest::Auth {
                    actor: "app".into(),
                    purpose: "billing".into()
                }
                .to_frame(),
                &mut session,
            ),
            Frame::Simple("OK".into())
        );
        session
    }

    #[test]
    fn kv_engine_serves_the_plain_surface() {
        let d = kv_dispatcher();
        let mut session = Session::new();
        assert_eq!(
            d.handle_frame(&Frame::command(["PING"]), &mut session),
            Frame::Simple("PONG".into())
        );
        assert_eq!(
            d.handle_frame(&Frame::command(["SET", "k", "v"]), &mut session),
            Frame::Simple("OK".into())
        );
        assert_eq!(
            d.handle_frame(&Frame::command(["GET", "k"]), &mut session),
            Frame::Bulk(b"v".to_vec())
        );
        assert_eq!(d.stats().requests, 3);
        assert_eq!(d.stats().errors, 0);
        assert_eq!(d.raw_engine().len(), 1);
        assert!(d.gdpr_store().is_none());
    }

    #[test]
    fn kv_engine_rejects_gdpr_commands() {
        let d = kv_dispatcher();
        let mut session = Session::new();
        let reply = d.handle_frame(&GdprRequest::Stats.to_frame(), &mut session);
        assert!(matches!(reply, Frame::Error(_)));
        assert_eq!(d.stats().errors, 1);
    }

    #[test]
    fn gdpr_engine_requires_auth_for_data_commands() {
        let (d, _) = gdpr_dispatcher();
        let mut session = Session::new();
        let reply = d.handle_frame(&Frame::command(["SET", "k", "v"]), &mut session);
        match reply {
            Frame::Error(message) => assert!(message.starts_with("NOAUTH"), "{message}"),
            other => panic!("unexpected {other:?}"),
        }
        // Subject-data reads through the GDPR surface are guarded too:
        // KEYSOF would enumerate where a subject's personal data lives.
        let reply = d.handle_frame(
            &GdprRequest::KeysOf {
                subject: "alice".into(),
            }
            .to_frame(),
            &mut session,
        );
        assert!(
            matches!(reply, Frame::Error(ref m) if m.starts_with("NOAUTH")),
            "{reply:?}"
        );
        // DBSIZE and PING stay open (liveness probes).
        assert_eq!(
            d.handle_frame(&Frame::command(["DBSIZE"]), &mut session),
            Frame::Integer(0)
        );
    }

    #[test]
    fn setmeta_cannot_wash_away_an_objection() {
        let (d, store) = gdpr_dispatcher();
        let mut session = authed_session(&d);
        let put = GdprRequest::Put {
            key: "k".into(),
            subject: "alice".into(),
            purposes: vec!["billing".into()],
            value: b"v".to_vec(),
            ttl_ms: None,
        };
        assert_eq!(
            d.handle_frame(&put.to_frame(), &mut session),
            Frame::Simple("OK".into())
        );
        assert_eq!(
            d.handle_frame(
                &GdprRequest::Object {
                    subject: "alice".into(),
                    purpose: "marketing".into()
                }
                .to_frame(),
                &mut session
            ),
            Frame::Integer(1)
        );
        // Re-stamping the metadata over the wire keeps the objection.
        let setmeta = GdprRequest::SetMeta {
            key: "k".into(),
            subject: "alice".into(),
            purposes: vec!["billing".into()],
            ttl_ms: None,
        };
        assert_eq!(
            d.handle_frame(&setmeta.to_frame(), &mut session),
            Frame::Simple("OK".into())
        );
        let ctx = AccessContext::new("app", "billing");
        let meta = store.metadata(&ctx, "k").unwrap().unwrap();
        assert!(meta.objections.contains("marketing"), "{meta:?}");
    }

    #[test]
    fn gdpr_auth_rejects_unknown_actor() {
        let (d, _) = gdpr_dispatcher();
        let mut session = Session::new();
        let reply = d.handle_frame(
            &GdprRequest::Auth {
                actor: "ghost".into(),
                purpose: "billing".into(),
            }
            .to_frame(),
            &mut session,
        );
        assert!(matches!(reply, Frame::Error(_)));
        assert!(session.context().is_none());
    }

    #[test]
    fn gdpr_engine_runs_kv_commands_through_compliance() {
        let (d, store) = gdpr_dispatcher();
        let mut session = authed_session(&d);
        assert_eq!(
            d.handle_frame(&Frame::command(["SET", "user:1", "alice"]), &mut session),
            Frame::Simple("OK".into())
        );
        assert_eq!(
            d.handle_frame(&Frame::command(["GET", "user:1"]), &mut session),
            Frame::Bulk(b"alice".to_vec())
        );
        // The write carried metadata: the key doubles as its subject.
        assert_eq!(store.keys_of_subject("user:1").unwrap(), vec!["user:1"]);
        assert_eq!(
            d.handle_frame(&Frame::command(["DEL", "user:1"]), &mut session),
            Frame::Integer(1)
        );
        assert!(store.keys_of_subject("user:1").unwrap().is_empty());
        assert!(store.stats().allowed_ops > 0);
    }

    #[test]
    fn gdpr_records_roundtrip_with_scan_and_dbsize() {
        let (d, _) = gdpr_dispatcher();
        let mut session = authed_session(&d);
        assert_eq!(
            d.handle_frame(
                &Frame::command(["HMSET", "user:1", "f0", "a", "f1", "b"]),
                &mut session
            ),
            Frame::Simple("OK".into())
        );
        match d.handle_frame(&Frame::command(["HGETALL", "user:1"]), &mut session) {
            Frame::Array(items) => assert_eq!(items.len(), 4),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            d.handle_frame(&Frame::command(["SCAN", "", "10"]), &mut session),
            Frame::Array(vec![Frame::Bulk(b"user:1".to_vec())])
        );
        assert_eq!(
            d.handle_frame(&Frame::command(["DBSIZE"]), &mut session),
            Frame::Integer(1)
        );
    }

    #[test]
    fn gdpr_wire_surface_covers_metadata_and_rights() {
        let (d, _) = gdpr_dispatcher();
        let mut session = authed_session(&d);
        let put = GdprRequest::Put {
            key: "user:alice:email".into(),
            subject: "alice".into(),
            purposes: vec!["billing".into(), "analytics".into()],
            value: b"a@example.com".to_vec(),
            ttl_ms: None,
        };
        assert_eq!(
            d.handle_frame(&put.to_frame(), &mut session),
            Frame::Simple("OK".into())
        );

        // Metadata read.
        match d.handle_frame(
            &GdprRequest::GetMeta {
                key: "user:alice:email".into(),
            }
            .to_frame(),
            &mut session,
        ) {
            Frame::Array(items) => {
                assert!(
                    items.contains(&Frame::Bulk(b"subject=alice".to_vec())),
                    "{items:?}"
                );
                assert!(
                    items.contains(&Frame::Bulk(b"purposes=analytics,billing".to_vec())),
                    "{items:?}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }

        // Metadata replace (subject transfer) and index consistency.
        let setmeta = GdprRequest::SetMeta {
            key: "user:alice:email".into(),
            subject: "bob".into(),
            purposes: vec!["billing".into()],
            ttl_ms: None,
        };
        assert_eq!(
            d.handle_frame(&setmeta.to_frame(), &mut session),
            Frame::Simple("OK".into())
        );
        assert_eq!(
            d.handle_frame(
                &GdprRequest::KeysOf {
                    subject: "bob".into()
                }
                .to_frame(),
                &mut session
            ),
            Frame::Array(vec![Frame::Bulk(b"user:alice:email".to_vec())])
        );

        // Objection, export, erasure.
        assert_eq!(
            d.handle_frame(
                &GdprRequest::Object {
                    subject: "bob".into(),
                    purpose: "analytics".into()
                }
                .to_frame(),
                &mut session
            ),
            Frame::Integer(1)
        );
        match d.handle_frame(
            &GdprRequest::Export {
                subject: "bob".into(),
                cursor: None,
                count: None,
            }
            .to_frame(),
            &mut session,
        ) {
            Frame::Bulk(json) => {
                let json = String::from_utf8(json).unwrap();
                assert!(json.contains("\"subject\":\"bob\""), "{json}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            d.handle_frame(
                &GdprRequest::Erase {
                    subject: "bob".into()
                }
                .to_frame(),
                &mut session
            ),
            Frame::Integer(1)
        );
        assert_eq!(
            d.handle_frame(
                &GdprRequest::KeysOf {
                    subject: "bob".into()
                }
                .to_frame(),
                &mut session
            ),
            Frame::Array(vec![])
        );

        // Stats surface: the compliance counters plus the per-segment
        // journal lines (the in-memory store persists to an in-memory AOF).
        match d.handle_frame(&GdprRequest::Stats.to_frame(), &mut session) {
            Frame::Array(items) => {
                assert!(items.len() > 5, "{items:?}");
                let text: Vec<String> = items
                    .iter()
                    .map(|f| match f {
                        Frame::Bulk(b) => String::from_utf8_lossy(b).into_owned(),
                        other => panic!("unexpected {other:?}"),
                    })
                    .collect();
                assert!(text.iter().any(|l| l.starts_with("allowed_ops=")));
                let expected_index = format!(
                    "ttl_index={}",
                    kvstore::ttl_wheel::DeadlineIndexKind::from_env_or_default()
                );
                assert!(text.contains(&expected_index), "{text:?}");
                assert!(text.iter().any(|l| l.starts_with("ttl_entries=")));
                assert!(text
                    .iter()
                    .any(|l| l.starts_with("ttl_wheel_stale_dropped=")));
                assert!(text.iter().any(|l| l == "aof_segments=1"), "{text:?}");
                assert!(text.iter().any(|l| l.starts_with("aof_unsynced_records=")));
                assert!(text.iter().any(|l| l.starts_with("aof_seg0=records:")));
                // Bounded-memory and hot-cache accounting ride along.
                assert!(text.iter().any(|l| l.starts_with("mem_bytes=")), "{text:?}");
                assert!(text.contains(&"mem_maxmemory=0".to_string()), "{text:?}");
                assert!(
                    text.contains(&"mem_maxmemory_policy=noeviction".to_string()),
                    "{text:?}"
                );
                assert!(text.iter().any(|l| l.starts_with("mem_evicted_keys=")));
                assert!(text.iter().any(|l| l.starts_with("cache_hits=")));
                assert!(text.iter().any(|l| l.starts_with("cache_misses=")));
                assert!(text.iter().any(|l| l.starts_with("cache_admissions=")));
                assert!(text.iter().any(|l| l.starts_with("cache_invalidations=")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn info_renders_engine_journal_and_gdpr_sections() {
        let (d, _) = gdpr_dispatcher();
        let mut session = authed_session(&d);
        assert_eq!(
            d.handle_frame(&Frame::command(["SET", "user:1", "v"]), &mut session),
            Frame::Simple("OK".into())
        );
        let info = match d.handle_frame(&Frame::command(["INFO"]), &mut session) {
            Frame::Bulk(bytes) => String::from_utf8(bytes).unwrap(),
            other => panic!("unexpected {other:?}"),
        };
        let index_line = format!(
            "deadline_index:{}",
            kvstore::ttl_wheel::DeadlineIndexKind::from_env_or_default()
        );
        for needle in [
            "# Stats",
            index_line.as_str(),
            "ttl_entries:",
            "wheel_cascades:",
            "aof_segments:",
            "aof_group_commits:",
            "# AofSegments",
            "aof_seg0:records=",
            "# Memory",
            "mem_bytes:",
            "maxmemory_policy:noeviction",
            "hot_cache_enabled:",
            "cache_hits:",
            "cache_invalidations:",
            "# Gdpr",
            "allowed_ops:",
            "# Replication",
            "role:primary",
            "connected_replicas:0",
        ] {
            assert!(info.contains(needle), "INFO missing {needle}: {info}");
        }
        // The raw engine serves INFO too, without the GDPR section.
        let raw = kv_dispatcher();
        let info = match raw.handle_frame(&Frame::command(["INFO"]), &mut Session::new()) {
            Frame::Bulk(bytes) => String::from_utf8(bytes).unwrap(),
            other => panic!("unexpected {other:?}"),
        };
        assert!(info.contains("# Stats"));
        assert!(!info.contains("# Gdpr"));
    }

    #[test]
    fn oom_keeps_its_redis_error_class() {
        // One byte of maxmemory under `noeviction`: the first SET lands
        // (the shard was empty), every later growth command is rejected
        // with the `-OOM` class Redis clients special-case.
        let d = Dispatcher::kv(KvStore::open(StoreConfig::in_memory().max_memory(1)).unwrap());
        let mut session = Session::new();
        assert_eq!(
            d.handle_frame(&Frame::command(["SET", "k", "v"]), &mut session),
            Frame::Simple("OK".into())
        );
        match d.handle_frame(&Frame::command(["SET", "k", "v2"]), &mut session) {
            Frame::Error(message) => assert!(message.starts_with("OOM "), "{message}"),
            other => panic!("unexpected {other:?}"),
        }
        // Reads and deletes stay allowed over the ceiling.
        assert_eq!(
            d.handle_frame(&Frame::command(["GET", "k"]), &mut session),
            Frame::Bulk(b"v".to_vec())
        );
        assert_eq!(
            d.handle_frame(&Frame::command(["DEL", "k"]), &mut session),
            Frame::Integer(1)
        );
        // The compliance layer's error wrapper preserves the class.
        let wrapped = gdpr_core::GdprError::from(kvstore::StoreError::Oom { used: 9, limit: 1 });
        assert!(gdpr_err_string(&wrapped).starts_with("OOM "), "{wrapped}");
        assert!(matches!(gdpr_err(&wrapped), Frame::Error(m) if m.starts_with("OOM ")));
    }

    #[test]
    fn protocol_commands_work_on_both_engines() {
        let (gdpr, _) = gdpr_dispatcher();
        for d in [kv_dispatcher(), gdpr] {
            let mut session = Session::new();
            assert_eq!(
                d.handle_frame(&Frame::command(["PING"]), &mut session),
                Frame::Simple("PONG".into())
            );
            assert_eq!(
                d.handle_frame(&Frame::command(["SHUTDOWN"]), &mut session),
                Frame::Simple("OK".into())
            );
            assert!(matches!(
                d.handle_frame(&Frame::command(["TICK"]), &mut session),
                Frame::Integer(_)
            ));
        }
    }

    #[test]
    fn error_counting_matches_the_simulated_server_contract() {
        let d = kv_dispatcher();
        let mut session = Session::new();
        for frame in [
            Frame::command(["BOGUS"]),
            Frame::command(["GET"]),
            Frame::command(["SET", "only-key"]),
            Frame::Integer(3),
        ] {
            assert!(matches!(
                d.handle_frame(&frame, &mut session),
                Frame::Error(_)
            ));
        }
        assert_eq!(d.stats().errors, 4);
        assert_eq!(d.stats().requests, 4);
    }

    #[test]
    fn replica_mode_rejects_writes_with_a_redirect() {
        let (d, _) = gdpr_dispatcher();
        let mut session = authed_session(&d);
        d.replication().set_replica_of("10.0.0.1:6379");
        for frame in [
            Frame::command(["SET", "k", "v"]),
            Frame::command(["DEL", "k"]),
            Frame::command(["HMSET", "k", "f", "v"]),
            GdprRequest::Put {
                key: "k".into(),
                subject: "alice".into(),
                purposes: vec!["billing".into()],
                value: b"v".to_vec(),
                ttl_ms: None,
            }
            .to_frame(),
            GdprRequest::Erase {
                subject: "alice".into(),
            }
            .to_frame(),
        ] {
            match d.handle_frame(&frame, &mut session) {
                Frame::Error(message) => {
                    assert!(message.starts_with("READONLY"), "{message}");
                    assert!(message.contains("10.0.0.1:6379"), "{message}");
                }
                other => panic!("write must be redirected, got {other:?}"),
            }
        }
        // Reads, liveness probes and node-local ACL control stay served.
        assert_eq!(
            d.handle_frame(&Frame::command(["GET", "missing"]), &mut session),
            Frame::Null
        );
        assert_eq!(
            d.handle_frame(&Frame::command(["PING"]), &mut session),
            Frame::Simple("PONG".into())
        );
        assert_eq!(
            d.handle_frame(
                &GdprRequest::Grant {
                    actor: "reader".into(),
                    purpose: "support".into()
                }
                .to_frame(),
                &mut session
            ),
            Frame::Simple("OK".into())
        );
        // The replica role is visible on the stats surfaces.
        let info = match d.handle_frame(&Frame::command(["INFO"]), &mut session) {
            Frame::Bulk(bytes) => String::from_utf8(bytes).unwrap(),
            other => panic!("unexpected {other:?}"),
        };
        assert!(info.contains("role:replica"), "{info}");
        assert!(info.contains("primary:10.0.0.1:6379"), "{info}");
        assert!(info.contains("repl_lag_records:"), "{info}");
        match d.handle_frame(&GdprRequest::Stats.to_frame(), &mut session) {
            Frame::Array(items) => {
                let text: Vec<String> = items
                    .iter()
                    .map(|f| match f {
                        Frame::Bulk(b) => String::from_utf8_lossy(b).into_owned(),
                        other => panic!("unexpected {other:?}"),
                    })
                    .collect();
                assert!(text.iter().any(|l| l == "repl_role=replica"), "{text:?}");
                assert!(
                    text.iter().any(|l| l.starts_with("repl_lag_records=")),
                    "{text:?}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn digest_is_equal_iff_state_is_equal() {
        let a = kv_dispatcher();
        let b = kv_dispatcher();
        let mut session = Session::new();
        let digest = |d: &Dispatcher, session: &mut Session| match d
            .handle_frame(&Frame::command(["DIGEST"]), session)
        {
            Frame::Bulk(bytes) => String::from_utf8(bytes).unwrap(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(digest(&a, &mut session), digest(&b, &mut session));
        a.handle_frame(&Frame::command(["SET", "k", "v"]), &mut session);
        assert_ne!(digest(&a, &mut session), digest(&b, &mut session));
        b.handle_frame(&Frame::command(["SET", "k", "v"]), &mut session);
        assert_eq!(digest(&a, &mut session), digest(&b, &mut session));
        // 64 lowercase hex characters (SHA-256).
        let d = digest(&a, &mut session);
        assert_eq!(d.len(), 64);
        assert!(d.bytes().all(|b| b.is_ascii_hexdigit()));
    }

    #[test]
    fn digest_requires_auth_on_the_compliance_engine() {
        let (d, _) = gdpr_dispatcher();
        let reply = d.handle_frame(&Frame::command(["DIGEST"]), &mut Session::new());
        assert!(
            matches!(reply, Frame::Error(ref m) if m.starts_with("NOAUTH")),
            "{reply:?}"
        );
        let mut session = authed_session(&d);
        assert!(matches!(
            d.handle_frame(&Frame::command(["DIGEST"]), &mut session),
            Frame::Bulk(_)
        ));
    }

    #[test]
    fn replsync_is_refused_off_the_tcp_transport() {
        let d = kv_dispatcher();
        let reply = d.handle_frame(&Frame::command(["REPLSYNC"]), &mut Session::new());
        assert!(
            matches!(reply, Frame::Error(ref m) if m.contains("TCP")),
            "{reply:?}"
        );
    }

    #[test]
    fn revoke_closes_the_wire_session_path() {
        let (d, store) = gdpr_dispatcher();
        let mut session = authed_session(&d);
        assert_eq!(
            d.handle_frame(
                &GdprRequest::Revoke {
                    actor: "app".into(),
                    purpose: "billing".into()
                }
                .to_frame(),
                &mut session
            ),
            Frame::Integer(1)
        );
        // The session context survives, but per-operation checks now deny.
        assert!(matches!(
            d.handle_frame(&Frame::command(["SET", "k", "v"]), &mut session),
            Frame::Error(_)
        ));
        assert!(store.stats().denied_ops > 0);
    }
}
