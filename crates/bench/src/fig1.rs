//! Figure 1: YCSB throughput of the compliance configurations.
//!
//! The paper runs the load phases of workloads A and E plus the run phases
//! of A–F against three Redis configurations (unmodified, AOF with
//! synchronous fsync carrying the monitoring log, LUKS + TLS encryption)
//! and reports throughput. [`run_figure1`] reproduces the sweep over this
//! repository's equivalents and adds the full GDPR layer ("strict") as a
//! fourth series.

use std::path::Path;

use gdpr_core::policy::CompliancePolicy;
use gdpr_core::store::GdprStore;
use kvstore::aof::FsyncPolicy;
use kvstore::config::StoreConfig;
use kvstore::store::KvStore;
use netsim::client::RemoteClient;
use netsim::link::LinkConfig;
use netsim::server::RespKvServer;
use ycsb::client::{Driver, KvInterface};
use ycsb::stats::RunReport;
use ycsb::workload::WorkloadSpec;

use crate::adapters::{GdprAdapter, RemoteAdapter};

/// The YCSB phases of Figure 1, in the paper's order.
pub const FIGURE1_PHASES: &[&str] = &["Load-A", "A", "B", "C", "D", "Load-E", "E", "F"];

/// The configurations compared in Figure 1 (plus the full GDPR layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig1Config {
    /// Stock engine, no persistence, plaintext network — the baseline.
    Unmodified,
    /// Monitoring piggybacked on the AOF, fsync once per second (the
    /// paper's relaxed §4.1 point).
    AofEverySec,
    /// Monitoring piggybacked on the AOF, fsync on every operation (the
    /// paper's strict §4.1 point).
    AofSync,
    /// Encryption at rest (LUKS simulation) and in transit (TLS
    /// simulation), no monitoring (the paper's §4.2 configuration).
    LuksTls,
    /// The complete GDPR compliance layer in its strict configuration.
    StrictGdpr,
}

impl Fig1Config {
    /// All configurations, in presentation order.
    #[must_use]
    pub fn all() -> Vec<Fig1Config> {
        vec![
            Fig1Config::Unmodified,
            Fig1Config::AofEverySec,
            Fig1Config::AofSync,
            Fig1Config::LuksTls,
            Fig1Config::StrictGdpr,
        ]
    }

    /// Column label used in the report.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Fig1Config::Unmodified => "unmodified",
            Fig1Config::AofEverySec => "aof-everysec",
            Fig1Config::AofSync => "aof-sync",
            Fig1Config::LuksTls => "luks+tls",
            Fig1Config::StrictGdpr => "strict-gdpr",
        }
    }
}

/// Parameters of a Figure 1 run.
#[derive(Debug, Clone, Copy)]
pub struct Fig1Params {
    /// Records loaded per workload.
    pub record_count: u64,
    /// Operations per transaction phase.
    pub operation_count: u64,
    /// Whether the simulated link actually waits out its modelled transfer
    /// time (closer to the paper's testbed, but slower to run).
    pub impose_link_delay: bool,
    /// Seed shared by every configuration so they see the same request
    /// stream.
    pub seed: u64,
}

impl Default for Fig1Params {
    fn default() -> Self {
        Fig1Params {
            record_count: 5_000,
            operation_count: 10_000,
            impose_link_delay: false,
            seed: 42,
        }
    }
}

/// One cell of the Figure 1 table.
#[derive(Debug, Clone)]
pub struct Fig1Cell {
    /// Configuration the cell belongs to.
    pub config: Fig1Config,
    /// Phase label ("Load-A", "A", …).
    pub phase: String,
    /// Measured throughput in operations per second.
    pub throughput: f64,
    /// Full phase report (latencies, errors).
    pub report: RunReport,
}

/// Build the adapter stack for a configuration, with its files under `dir`.
fn build_adapter(config: Fig1Config, dir: &Path, params: &Fig1Params) -> Box<dyn KvInterface> {
    let link = |mut cfg: LinkConfig| {
        if params.impose_link_delay {
            cfg = cfg.imposing_delay();
        }
        cfg
    };
    match config {
        Fig1Config::Unmodified => {
            let store = KvStore::open(StoreConfig::in_memory()).expect("open engine");
            let server = RespKvServer::new(store);
            Box::new(RemoteAdapter::new(RemoteClient::connect_plain(
                server,
                link(LinkConfig::plain_44gbps()),
            )))
        }
        Fig1Config::AofEverySec => {
            let store = KvStore::open(
                StoreConfig::with_aof(dir.join("everysec.aof"))
                    .fsync(FsyncPolicy::EverySec)
                    .log_reads(true),
            )
            .expect("open engine");
            let server = RespKvServer::new(store);
            Box::new(RemoteAdapter::new(RemoteClient::connect_plain(
                server,
                link(LinkConfig::plain_44gbps()),
            )))
        }
        Fig1Config::AofSync => {
            let store = KvStore::open(
                StoreConfig::with_aof(dir.join("sync.aof"))
                    .fsync(FsyncPolicy::Always)
                    .log_reads(true),
            )
            .expect("open engine");
            let server = RespKvServer::new(store);
            Box::new(RemoteAdapter::new(RemoteClient::connect_plain(
                server,
                link(LinkConfig::plain_44gbps()),
            )))
        }
        Fig1Config::LuksTls => {
            let store = KvStore::open(
                StoreConfig::with_aof(dir.join("luks.aof"))
                    .fsync(FsyncPolicy::EverySec)
                    .encrypted(b"figure1-luks-passphrase"),
            )
            .expect("open engine");
            let server = RespKvServer::new(store);
            Box::new(RemoteAdapter::new(RemoteClient::connect_secure(
                server,
                link(LinkConfig::tls_proxied_4_9gbps()),
                b"figure1-tls-secret",
            )))
        }
        Fig1Config::StrictGdpr => {
            let kv_config = StoreConfig::with_aof(dir.join("strict.aof"));
            let sink =
                audit::sink::FileSink::open(dir.join("strict.audit")).expect("open audit trail");
            let store = GdprStore::open(CompliancePolicy::strict(), kv_config, Box::new(sink))
                .expect("open gdpr store");
            Box::new(GdprAdapter::new(store))
        }
    }
}

/// Run one configuration through all Figure 1 phases.
///
/// The phase sequence mirrors YCSB practice (and the paper): load the A
/// dataset, run A–D against it, then reload for E and run E and F.
#[must_use]
pub fn run_config(config: Fig1Config, dir: &Path, params: &Fig1Params) -> Vec<Fig1Cell> {
    let mut cells = Vec::new();
    let mut adapter = build_adapter(config, dir, params);

    let mut record = |phase: &str, report: RunReport| {
        cells.push(Fig1Cell {
            config,
            phase: phase.to_string(),
            throughput: report.throughput(),
            report,
        });
    };

    // Load-A then workloads A, B, C, D on the same dataset.
    let mut driver = Driver::new(
        WorkloadSpec::workload_a(params.record_count, params.operation_count),
        params.seed,
    );
    record("Load-A", driver.run_load(adapter.as_mut()).expect("load A"));
    for name in ["A", "B", "C", "D"] {
        let mut driver = Driver::new(
            WorkloadSpec::by_name(name, params.record_count, params.operation_count),
            params.seed,
        );
        record(
            name,
            driver
                .run_transactions(adapter.as_mut())
                .expect("run phase"),
        );
    }

    // Fresh adapter (fresh dataset) for Load-E, E, then F.
    let dir_e = dir.join("phase-e");
    std::fs::create_dir_all(&dir_e).expect("create phase-e dir");
    let mut adapter = build_adapter(config, &dir_e, params);
    let mut driver = Driver::new(
        WorkloadSpec::workload_e(params.record_count, params.operation_count),
        params.seed,
    );
    record("Load-E", driver.run_load(adapter.as_mut()).expect("load E"));
    record(
        "E",
        driver.run_transactions(adapter.as_mut()).expect("run E"),
    );
    let mut driver = Driver::new(
        WorkloadSpec::workload_f(params.record_count, params.operation_count),
        params.seed,
    );
    record(
        "F",
        driver.run_transactions(adapter.as_mut()).expect("run F"),
    );

    cells
}

/// Run the full Figure 1 sweep.
#[must_use]
pub fn run_figure1(configs: &[Fig1Config], dir: &Path, params: &Fig1Params) -> Vec<Fig1Cell> {
    let mut all = Vec::new();
    for config in configs {
        let config_dir = dir.join(config.label());
        std::fs::create_dir_all(&config_dir).expect("create config dir");
        all.extend(run_config(*config, &config_dir, params));
    }
    all
}

/// Render the Figure 1 table: one row per phase, one column per
/// configuration, each cell showing ops/s and the fraction of the baseline.
#[must_use]
pub fn render_table(cells: &[Fig1Cell]) -> String {
    let configs: Vec<Fig1Config> = {
        let mut seen = Vec::new();
        for cell in cells {
            if !seen.contains(&cell.config) {
                seen.push(cell.config);
            }
        }
        seen
    };
    let mut out = String::new();
    out.push_str(&format!("{:<8}", "phase"));
    for config in &configs {
        out.push_str(&format!(" | {:>24}", config.label()));
    }
    out.push('\n');
    out.push_str(&"-".repeat(8 + configs.len() * 27));
    out.push('\n');

    for phase in FIGURE1_PHASES {
        let baseline = cells
            .iter()
            .find(|c| c.phase == *phase && c.config == Fig1Config::Unmodified)
            .map(|c| c.throughput);
        out.push_str(&format!("{phase:<8}"));
        for config in &configs {
            match cells
                .iter()
                .find(|c| c.phase == *phase && c.config == *config)
            {
                Some(cell) => {
                    let relative = baseline
                        .filter(|b| *b > 0.0)
                        .map(|b| cell.throughput / b)
                        .unwrap_or(1.0);
                    out.push_str(&format!(
                        " | {:>12.0} ops/s {:>4.0}%",
                        cell.throughput,
                        relative * 100.0
                    ));
                }
                None => out.push_str(&format!(" | {:>24}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_figure1_run_produces_all_phases_and_sane_ordering() {
        let dir = crate::scratch_dir("fig1-test");
        let params = Fig1Params {
            record_count: 200,
            operation_count: 300,
            impose_link_delay: false,
            seed: 1,
        };
        let cells = run_figure1(
            &[Fig1Config::Unmodified, Fig1Config::AofSync],
            &dir,
            &params,
        );
        assert_eq!(cells.len(), FIGURE1_PHASES.len() * 2);
        // Every phase present for every config.
        for phase in FIGURE1_PHASES {
            assert!(cells
                .iter()
                .any(|c| c.phase == *phase && c.config == Fig1Config::Unmodified));
            assert!(cells
                .iter()
                .any(|c| c.phase == *phase && c.config == Fig1Config::AofSync));
        }
        // Synchronous fsync must not be faster than the baseline on the
        // write-heavy load phase.
        let base = cells
            .iter()
            .find(|c| c.phase == "Load-A" && c.config == Fig1Config::Unmodified)
            .unwrap();
        let sync = cells
            .iter()
            .find(|c| c.phase == "Load-A" && c.config == Fig1Config::AofSync)
            .unwrap();
        assert!(
            sync.throughput <= base.throughput * 1.5,
            "sync {} vs base {}",
            sync.throughput,
            base.throughput
        );
        let table = render_table(&cells);
        assert!(table.contains("Load-A"));
        assert!(table.contains("aof-sync"));
        crate::cleanup_scratch(&dir);
    }
}
