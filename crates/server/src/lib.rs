//! The real networked deployment shape of the reproduction.
//!
//! The paper measures GDPR overheads with YCSB clients talking to Redis
//! over an actual network (including the Stunnel/TLS proxy configuration).
//! The `netsim` crate reproduces the *costs* of that data path in-process;
//! this crate provides the data path itself:
//!
//! * [`dispatch`] — the single RESP → engine command mapper, shared by the
//!   simulated server in `netsim` and the TCP server here, so the two
//!   front-ends cannot drift. It serves either the raw [`kvstore`] engine
//!   or the full [`gdpr_core`] compliance layer, including the `GDPR.*`
//!   wire surface (session auth, grants, metadata get/set, subject
//!   rights).
//! * [`tcp`] — the RESP2 server facade over `std::net::TcpListener`:
//!   incremental decoding, pipelined requests, connection limits,
//!   read/write timeouts and graceful shutdown that drains in-flight
//!   requests, served by either of two transports.
//! * [`reactor`] — the default transport: a readiness-driven event loop
//!   (epoll via the `polling` shim, `poll(2)` fallback) owning every
//!   connection socket, plus a fixed worker pool executing dispatcher
//!   batches — thousands of idle connections without one thread each.
//! * [`client`] — a blocking [`client::TcpRemoteClient`] plus
//!   [`client::TcpRemoteAdapter`], which implements
//!   [`ycsb::concurrent::SharedKvInterface`] over a pool of real sockets
//!   so [`ycsb::concurrent::ConcurrentDriver`] can drive the server with
//!   many client threads.
//!
//! The `gdpr-server` binary ties it together: `cargo run -p gdpr-server --
//! addr=127.0.0.1:6379 shards=4 compliance=1`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod dispatch;
pub mod metrics;
pub mod metrics_http;
pub mod reactor;
pub mod replication;
pub mod tcp;

use std::error::Error;
use std::fmt;

/// Errors produced by the TCP server and its client.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServerError {
    /// A socket operation failed.
    Io(std::io::Error),
    /// The peer sent bytes that are not valid RESP.
    Protocol(resp::RespError),
    /// The server answered with a RESP error frame.
    Server(String),
    /// The connection closed before a complete reply arrived.
    Closed,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "io error: {e}"),
            ServerError::Protocol(e) => write!(f, "protocol error: {e}"),
            ServerError::Server(msg) => write!(f, "server error: {msg}"),
            ServerError::Closed => write!(f, "connection closed mid-reply"),
        }
    }
}

impl Error for ServerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Protocol(e) => Some(e),
            ServerError::Server(_) | ServerError::Closed => None,
        }
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<resp::RespError> for ServerError {
    fn from(e: resp::RespError) -> Self {
        ServerError::Protocol(e)
    }
}

/// Result alias for server/client operations.
pub type Result<T> = std::result::Result<T, ServerError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let errs = vec![
            ServerError::Io(std::io::Error::other("x")),
            ServerError::Protocol(resp::RespError::Protocol("y".into())),
            ServerError::Server("ERR z".into()),
            ServerError::Closed,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
        assert!(ServerError::Closed.source().is_none());
        assert!(ServerError::Io(std::io::Error::other("x"))
            .source()
            .is_some());
    }
}
