//! The GDPR compliance layer — the primary contribution of the paper
//! *"Analyzing the Impact of GDPR on Storage Systems"* (HotStorage '19),
//! reproduced over a Redis-like Rust storage engine.
//!
//! The paper distils the 31 storage-relevant GDPR articles into six
//! features a compliant store must provide (its Table 1):
//!
//! | Feature | Module |
//! |---|---|
//! | Timely deletion (Art. 5, 13, 17) | [`retention`] |
//! | Monitoring & logging (Art. 5, 30, 33, 34) | audit integration in [`store`] |
//! | Indexing via metadata (Art. 5, 15, 20, 21) | [`metadata`], [`index`] |
//! | Access control (Art. 25, 32) | [`acl`] |
//! | Encryption (Art. 25, 32) | at-rest via the engine device layer, in-transit via `netsim` |
//! | Manage data location (Art. 46) | [`location`] |
//!
//! [`store::GdprStore`] wraps the engine and enforces all of them on every
//! operation; [`rights`] implements the data-subject rights (access,
//! erasure, portability, objection); [`breach`] supports Article 33/34
//! notification; [`policy`] captures the paper's *compliance spectrum*
//! (real-time vs eventual, full vs partial) as a configuration value; and
//! [`compliance`] renders the Table 1 self-assessment.
//!
//! # Sharded routing
//!
//! The compliance layer is built for multi-core parallelism, mirroring the
//! engine's hash-sharded keyspace (see `kvstore::shard`). A per-key
//! operation takes **no global exclusive lock**:
//!
//! * the engine routes the key to its owning shard (shard lock only);
//! * the [`index::ShardedMetadataIndex`] locks just the key's segment,
//!   aligned with the engine's routing; cross-shard queries (the
//!   data-subject rights) merge over all segments;
//! * compliance counters ([`store::GdprStats`]) and ACL check counters are
//!   lock-free atomics, and the ACL table itself is behind a read-write
//!   lock (checks share a read guard; grants/revocations are rare);
//! * audit emission goes through [`audit_pipeline::AuditPipeline`]'s
//!   per-shard buffers; only the *real-time* compliance policy pays the
//!   serialized write-through, because durable-before-acknowledge is that
//!   policy's defining guarantee.
//!
//! `ycsb::concurrent::ConcurrentDriver` (via the `bench` crate's
//! `shard_scaling` binary) measures the resulting shard × thread scaling.
//!
//! # Quick start
//!
//! ```
//! use gdpr_core::acl::Grant;
//! use gdpr_core::metadata::{PersonalMetadata, Region};
//! use gdpr_core::policy::CompliancePolicy;
//! use gdpr_core::store::{AccessContext, GdprStore};
//!
//! # fn main() -> Result<(), gdpr_core::GdprError> {
//! let store = GdprStore::open_in_memory(CompliancePolicy::strict())?;
//! let ctx = AccessContext::new("web-frontend", "account-management");
//!
//! // Under a strict policy access is closed by default (Article 25);
//! // open it explicitly for this actor and purpose.
//! store.grant(Grant::new("web-frontend", "account-management"));
//!
//! // Personal data always carries metadata: owner, purposes, TTL, location.
//! let meta = PersonalMetadata::new("alice")
//!     .with_purpose("account-management")
//!     .with_ttl_millis(30 * 24 * 3600 * 1000)
//!     .with_location(Region::Eu);
//! store.put(&ctx, "user:alice:email", b"alice@example.com".to_vec(), meta)?;
//!
//! assert_eq!(store.get(&ctx, "user:alice:email")?, Some(b"alice@example.com".to_vec()));
//!
//! // The right to be forgotten erases every key owned by the subject.
//! let report = store.right_to_erasure(&ctx, "alice")?;
//! assert_eq!(report.erased_keys.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod acl;
pub mod audit_pipeline;
pub mod breach;
pub mod compliance;
pub mod export;
pub mod hot_cache;
pub mod index;
pub mod location;
pub mod metadata;
pub mod policy;
pub mod retention;
pub mod rights;
pub mod store;

use std::error::Error;
use std::fmt;

/// Errors returned by the GDPR compliance layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum GdprError {
    /// The underlying storage engine failed.
    Store(kvstore::StoreError),
    /// The audit subsystem failed (under strict compliance this aborts the
    /// operation: no durable evidence, no operation).
    Audit(audit::AuditError),
    /// The access-control layer denied the operation.
    AccessDenied {
        /// Actor that attempted the operation.
        actor: String,
        /// Purpose the actor claimed.
        purpose: String,
        /// Why it was denied.
        reason: String,
    },
    /// The operation conflicted with the data subject's recorded objections
    /// (Article 21) or the purpose limitation (Article 5).
    PurposeViolation {
        /// Key whose metadata blocked the operation.
        key: String,
        /// The offending purpose.
        purpose: String,
    },
    /// The requested placement violates the location policy (Article 46).
    LocationViolation {
        /// Region that was requested or recorded.
        region: String,
    },
    /// Personal data was stored without the metadata GDPR requires.
    MissingMetadata {
        /// Key that has no metadata shadow record.
        key: String,
    },
    /// A malformed metadata record was encountered.
    CorruptMetadata {
        /// Key whose metadata could not be decoded.
        key: String,
        /// Decoder detail.
        detail: String,
    },
    /// The operation referenced a key that holds no value (e.g. replacing
    /// the metadata of a key that was never stored or already erased).
    NoSuchKey {
        /// The missing key.
        key: String,
    },
}

impl fmt::Display for GdprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GdprError::Store(e) => write!(f, "storage error: {e}"),
            GdprError::Audit(e) => write!(f, "audit error: {e}"),
            GdprError::AccessDenied {
                actor,
                purpose,
                reason,
            } => {
                write!(
                    f,
                    "access denied for actor {actor:?} (purpose {purpose:?}): {reason}"
                )
            }
            GdprError::PurposeViolation { key, purpose } => {
                write!(f, "purpose {purpose:?} is not permitted for key {key:?}")
            }
            GdprError::LocationViolation { region } => {
                write!(
                    f,
                    "data placement in region {region:?} violates the location policy"
                )
            }
            GdprError::MissingMetadata { key } => {
                write!(f, "key {key:?} holds personal data without GDPR metadata")
            }
            GdprError::CorruptMetadata { key, detail } => {
                write!(f, "metadata for key {key:?} is corrupt: {detail}")
            }
            GdprError::NoSuchKey { key } => {
                write!(f, "key {key:?} does not exist")
            }
        }
    }
}

impl Error for GdprError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GdprError::Store(e) => Some(e),
            GdprError::Audit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<kvstore::StoreError> for GdprError {
    fn from(e: kvstore::StoreError) -> Self {
        GdprError::Store(e)
    }
}

impl From<audit::AuditError> for GdprError {
    fn from(e: audit::AuditError) -> Self {
        GdprError::Audit(e)
    }
}

/// Result alias for the compliance layer.
pub type Result<T> = std::result::Result<T, GdprError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_covers_variants() {
        let errs: Vec<GdprError> = vec![
            GdprError::Store(kvstore::StoreError::Config("x".into())),
            GdprError::Audit(audit::AuditError::Corrupt("y".into())),
            GdprError::AccessDenied {
                actor: "a".into(),
                purpose: "p".into(),
                reason: "no grant".into(),
            },
            GdprError::PurposeViolation {
                key: "k".into(),
                purpose: "ads".into(),
            },
            GdprError::LocationViolation {
                region: "US".into(),
            },
            GdprError::MissingMetadata { key: "k".into() },
            GdprError::CorruptMetadata {
                key: "k".into(),
                detail: "short".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn source_chains_for_wrapped_errors() {
        let e = GdprError::from(kvstore::StoreError::Config("x".into()));
        assert!(e.source().is_some());
        let e = GdprError::AccessDenied {
            actor: "a".into(),
            purpose: "p".into(),
            reason: "r".into(),
        };
        assert!(e.source().is_none());
    }
}
