//! Roles, op mixes and the workload specification.
//!
//! A [`BenchSpec`] is a pure description: it names a [`Role`], sizes the
//! subject/record universe and fixes a seed. Expansion into a concrete op
//! stream lives in [`crate::ops`] and takes nothing but the spec, so shard
//! counts, thread counts and transports can never leak into generation.

/// The four GDPRbench parties. Each role runs a distinct op mix under its
/// own actor/purpose pair (installed as an access grant before a run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Role {
    /// A data subject exercising rights over their own data.
    Customer,
    /// The operator curating metadata (purpose changes, re-stamps).
    Controller,
    /// The data-plane consumer reading values under purpose checks.
    Processor,
    /// The supervisory authority auditing holdings and counters.
    Regulator,
}

impl Role {
    /// Every role, in canonical order.
    #[must_use]
    pub fn all() -> [Role; 4] {
        [
            Role::Customer,
            Role::Controller,
            Role::Processor,
            Role::Regulator,
        ]
    }

    /// The workload label (`customer`, `controller`, …).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Role::Customer => "customer",
            Role::Controller => "controller",
            Role::Processor => "processor",
            Role::Regulator => "regulator",
        }
    }

    /// Parse a workload label.
    #[must_use]
    pub fn parse(label: &str) -> Option<Role> {
        match label {
            "customer" => Some(Role::Customer),
            "controller" => Some(Role::Controller),
            "processor" => Some(Role::Processor),
            "regulator" => Some(Role::Regulator),
            _ => None,
        }
    }

    /// The acting entity this role authenticates as.
    #[must_use]
    pub fn actor(self) -> &'static str {
        match self {
            Role::Customer => "customer",
            Role::Controller => "controller",
            Role::Processor => "processor",
            Role::Regulator => "regulator",
        }
    }

    /// The declared processing purpose bound to this role's sessions.
    ///
    /// The processor's purpose participates in purpose-limitation checks
    /// on every data read; the rights paths the other roles exercise are
    /// purpose-agnostic by design (a subject's erasure request is not
    /// subject to the controller's purpose whitelist).
    #[must_use]
    pub fn purpose(self) -> &'static str {
        match self {
            Role::Customer => "account-service",
            Role::Controller => "administration",
            Role::Processor => "processing",
            Role::Regulator => "audit",
        }
    }
}

impl std::fmt::Display for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Actor/purpose of the load phase (bulk `GDPR.PUT`s stamping records).
pub const LOAD_ACTOR: &str = "loader";
/// Purpose the loader declares; every generated record whitelists it so
/// the load itself always passes the purpose-limitation check.
pub const LOAD_PURPOSE: &str = "load";

/// Optional purposes a record may additionally whitelist. The processor's
/// `processing` purpose appears on most records (reads mostly succeed);
/// `marketing` is rare and exists mainly to be objected to.
pub const PURPOSE_POOL: [&str; 3] = ["processing", "analytics", "marketing"];

/// A complete, seeded GDPRbench workload description.
///
/// Everything a run needs is in here; in particular there is **no shard or
/// thread field** — those belong to the store and the driver, and by
/// construction cannot change what ops are generated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchSpec {
    /// The role whose mix the transaction phase draws from.
    pub role: Role,
    /// Number of data subjects in the universe.
    pub subjects: u64,
    /// Records loaded per subject.
    pub keys_per_subject: u64,
    /// Value payload size in bytes.
    pub value_len: usize,
    /// Transaction-phase operations to generate.
    pub operation_count: u64,
    /// Master seed; the load and transaction streams derive from it.
    pub seed: u64,
}

impl BenchSpec {
    /// A spec with the defaults used by the bench harness.
    #[must_use]
    pub fn new(role: Role, subjects: u64, keys_per_subject: u64, operation_count: u64) -> Self {
        BenchSpec {
            role,
            subjects: subjects.max(1),
            keys_per_subject: keys_per_subject.max(1),
            value_len: 100,
            operation_count,
            seed: 42,
        }
    }

    /// Builder-style: set the master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: set the value payload size.
    #[must_use]
    pub fn value_len(mut self, len: usize) -> Self {
        self.value_len = len;
        self
    }

    /// Total records the load phase inserts.
    #[must_use]
    pub fn record_count(&self) -> u64 {
        self.subjects * self.keys_per_subject
    }

    /// Every actor/purpose grant a run needs (the loader plus all four
    /// roles). Installed on the store before driving, exactly once,
    /// regardless of which role the spec runs.
    #[must_use]
    pub fn grants() -> Vec<(&'static str, &'static str)> {
        let mut grants = vec![(LOAD_ACTOR, LOAD_PURPOSE)];
        for role in Role::all() {
            grants.push((role.actor(), role.purpose()));
        }
        grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_labels_roundtrip() {
        for role in Role::all() {
            assert_eq!(Role::parse(role.name()), Some(role));
            assert_eq!(format!("{role}"), role.name());
        }
        assert_eq!(Role::parse("nope"), None);
    }

    #[test]
    fn grants_cover_loader_and_all_roles() {
        let grants = BenchSpec::grants();
        assert_eq!(grants.len(), 5);
        assert!(grants.contains(&(LOAD_ACTOR, LOAD_PURPOSE)));
        for role in Role::all() {
            assert!(grants.contains(&(role.actor(), role.purpose())));
        }
    }

    #[test]
    fn spec_clamps_degenerate_sizes() {
        let spec = BenchSpec::new(Role::Customer, 0, 0, 10);
        assert_eq!(spec.subjects, 1);
        assert_eq!(spec.keys_per_subject, 1);
        assert_eq!(spec.record_count(), 1);
    }
}
