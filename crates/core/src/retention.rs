//! Retention enforcement (Articles 5(e), 13(2)(a) and 17).
//!
//! "Storage limitation" means every piece of personal data has a lifetime,
//! and the paper's Figure 2 shows why that is a storage-system problem:
//! with Redis' stock probabilistic expiry, data that should be gone lingers
//! for hours once the keyspace is large. This module wraps the engine's
//! expiry machinery in compliance terms: run retention sweeps, measure the
//! erasure lag and report the backlog of overdue keys.

use kvstore::clock::SimClock;
use kvstore::expire::{ActiveExpireConfig, ErasureSimulator, ExpiryMode};
use kvstore::ttl_wheel::DeadlineIndexKind;

use crate::store::GdprStore;
use crate::Result;

/// Outcome of one retention sweep over the store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetentionSweepReport {
    /// Data keys erased by this sweep.
    pub erased_keys: Vec<String>,
    /// Keys whose retention deadline has passed but which are still
    /// present after the sweep (non-zero only under the lazy policy).
    pub overdue_remaining: usize,
    /// Number of expiry cycles executed.
    pub cycles: u64,
}

impl GdprStore {
    /// Run retention sweeps until either no overdue key remains or
    /// `max_cycles` cycles have executed (the latter only matters under the
    /// lazy probabilistic policy, which may need many cycles).
    ///
    /// # Errors
    ///
    /// Propagates engine and audit errors.
    pub fn enforce_retention(&self, max_cycles: u64) -> Result<RetentionSweepReport> {
        let mut report = RetentionSweepReport::default();
        for _ in 0..max_cycles.max(1) {
            let outcome = self.tick()?;
            report.cycles += 1;
            report.erased_keys.extend(
                outcome
                    .removed
                    .into_iter()
                    .filter(|k| !Self::is_meta_key(k)),
            );
            if self.kv.pending_expired() == 0 {
                break;
            }
        }
        report.overdue_remaining = self.kv.pending_expired();
        Ok(report)
    }

    /// Number of keys (data and metadata shadows) whose retention deadline
    /// has already passed but which have not been physically erased — the
    /// quantity Figure 2 of the paper tracks.
    #[must_use]
    pub fn overdue_keys(&self) -> usize {
        self.kv.pending_expired()
    }
}

/// Configuration of a Figure 2-style erasure-delay experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErasureDelayExperiment {
    /// Total number of keys loaded into the store.
    pub total_keys: usize,
    /// Fraction of keys with the short TTL (the paper uses 0.2).
    pub short_fraction: f64,
    /// Short TTL in milliseconds (the paper uses 5 minutes).
    pub short_ttl_ms: u64,
    /// Long TTL in milliseconds (the paper uses 5 days).
    pub long_ttl_ms: u64,
    /// Expiry policy under test.
    pub mode: ExpiryMode,
    /// Deadline-index implementation serving the sweep (the wheel by
    /// default; the BTree baseline is used for differential replays).
    pub index: DeadlineIndexKind,
}

impl ErasureDelayExperiment {
    /// The paper's Figure 2 parameters for a given key count and policy.
    #[must_use]
    pub fn figure2(total_keys: usize, mode: ExpiryMode) -> Self {
        ErasureDelayExperiment {
            total_keys,
            short_fraction: 0.2,
            short_ttl_ms: 5 * 60 * 1_000,
            long_ttl_ms: 5 * 24 * 3_600 * 1_000,
            mode,
            index: DeadlineIndexKind::default(),
        }
    }

    /// Builder-style: run the experiment on a specific deadline index.
    #[must_use]
    pub fn with_index(mut self, index: DeadlineIndexKind) -> Self {
        self.index = index;
        self
    }

    /// Run the experiment on a simulated clock: populate a fresh engine,
    /// jump to just past the short TTL, and measure how long (in simulated
    /// time) the policy takes to erase every expired key.
    #[must_use]
    pub fn run(&self, seed: u64) -> kvstore::expire::ErasureReport {
        use kvstore::db::Db;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use std::sync::Arc;

        let clock = SimClock::new(0);
        let mut db = Db::with_deadline_index(Arc::new(clock.clone()), self.index);
        let short_count = (self.total_keys as f64 * self.short_fraction).round() as usize;
        for i in 0..self.total_keys {
            let key = format!("user{i:012}");
            db.set(&key, vec![0u8; 100]);
            let ttl = if i < short_count {
                self.short_ttl_ms
            } else {
                self.long_ttl_ms
            };
            db.expire_in_millis(&key, ttl);
        }
        // Jump to the moment the short-term keys have just expired, which
        // is where the paper starts its stopwatch.
        clock.advance_millis(self.short_ttl_ms);

        let mut rng = StdRng::seed_from_u64(seed);
        let simulator = ErasureSimulator::new(self.mode, ActiveExpireConfig::default());
        simulator.run(&mut db, &clock, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::Grant;
    use crate::metadata::PersonalMetadata;
    use crate::policy::CompliancePolicy;
    use crate::store::AccessContext;
    use kvstore::config::StoreConfig;

    fn ctx() -> AccessContext {
        AccessContext::new("app", "billing")
    }

    #[test]
    fn enforce_retention_erases_expired_data_and_metadata() {
        let clock = SimClock::new(1_000);
        let store = GdprStore::open(
            CompliancePolicy::strict(),
            StoreConfig::in_memory()
                .aof_in_memory()
                .clock(clock.clone()),
            Box::new(audit::sink::MemorySink::new()),
        )
        .unwrap();
        store.grant(Grant::new("app", "billing"));
        for i in 0..20 {
            let meta = PersonalMetadata::new("alice")
                .with_purpose("billing")
                .with_ttl_millis(500);
            store
                .put(&ctx(), &format!("k{i}"), b"v".to_vec(), meta)
                .unwrap();
        }
        assert_eq!(store.overdue_keys(), 0);
        clock.advance_millis(1_000);
        assert!(store.overdue_keys() > 0);
        let report = store.enforce_retention(10).unwrap();
        assert_eq!(report.erased_keys.len(), 20);
        assert_eq!(report.overdue_remaining, 0);
        assert_eq!(store.len(), 0);
        assert!(store.stats().erased_by_retention >= 20);
    }

    #[test]
    fn lazy_policy_may_leave_overdue_keys_after_few_cycles() {
        let clock = SimClock::new(1_000);
        let mut policy = CompliancePolicy::eventual();
        policy.expiry_mode = ExpiryMode::LazyProbabilistic;
        policy.enforce_access_control = false;
        let store = GdprStore::open(
            policy,
            StoreConfig::in_memory()
                .aof_in_memory()
                .clock(clock.clone())
                .rng_seed(7),
            Box::new(audit::sink::MemorySink::new()),
        )
        .unwrap();
        for i in 0..500 {
            let meta = PersonalMetadata::new("s")
                .with_purpose("billing")
                .with_ttl_millis(100);
            store
                .put(&ctx(), &format!("k{i:04}"), b"v".to_vec(), meta)
                .unwrap();
        }
        clock.advance_millis(500);
        let report = store.enforce_retention(2).unwrap();
        // With only two probabilistic cycles over 1000 expired entries
        // (data + shadows), a backlog must remain.
        assert!(
            report.overdue_remaining > 0,
            "lazy expiry cannot clear 1000 keys in 2 cycles"
        );
        assert!(report.cycles <= 2);
    }

    #[test]
    fn figure2_experiment_strict_is_subsecond_and_lazy_is_not() {
        let strict = ErasureDelayExperiment::figure2(4_000, ExpiryMode::Strict).run(1);
        assert_eq!(strict.erased_keys, 800);
        assert!(strict.erase_seconds() < 1.0);

        let lazy = ErasureDelayExperiment::figure2(4_000, ExpiryMode::LazyProbabilistic).run(1);
        assert_eq!(lazy.erased_keys, 800);
        assert!(
            lazy.erase_seconds() > 30.0,
            "lazy erasure of 800/4000 keys should take tens of simulated seconds, got {}",
            lazy.erase_seconds()
        );
    }

    #[test]
    fn figure2_delay_grows_with_database_size() {
        let small = ErasureDelayExperiment::figure2(1_000, ExpiryMode::LazyProbabilistic).run(2);
        let large = ErasureDelayExperiment::figure2(8_000, ExpiryMode::LazyProbabilistic).run(2);
        assert!(
            large.erase_seconds() > small.erase_seconds() * 3.0,
            "8k keys ({}) should take much longer than 1k keys ({})",
            large.erase_seconds(),
            small.erase_seconds()
        );
    }
}
