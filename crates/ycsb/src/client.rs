//! The benchmark driver: applies a workload to any store through the
//! [`KvInterface`] adapter trait and measures it.

use std::collections::BTreeMap;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::stats::{LatencyHistogram, RunReport};
use crate::workload::{CoreWorkload, WorkloadOp, WorkloadSpec};
use crate::{Result, WorkloadError};

/// The operations a store must support to run YCSB. Adapters for the
/// embedded engine, the GDPR layer and the simulated network client
/// implement this next to the benchmark harness.
pub trait KvInterface {
    /// Insert a new record with the given fields.
    fn insert(&mut self, key: &str, fields: &BTreeMap<String, Vec<u8>>) -> Result<()>;

    /// Read a record; returns `None` if it does not exist.
    fn read(&mut self, key: &str) -> Result<Option<BTreeMap<String, Vec<u8>>>>;

    /// Overwrite the given fields of an existing record.
    fn update(&mut self, key: &str, fields: &BTreeMap<String, Vec<u8>>) -> Result<()>;

    /// Read up to `count` records in key order starting at `start_key`.
    fn scan(&mut self, start_key: &str, count: usize) -> Result<Vec<String>>;

    /// Hook called periodically (roughly every [`Driver::tick_every`]
    /// operations) so the store can run background duties (expiry cycles,
    /// batched fsyncs). Default: nothing.
    fn tick(&mut self) -> Result<()> {
        Ok(())
    }
}

/// Drives a [`CoreWorkload`] against a [`KvInterface`].
#[derive(Debug)]
pub struct Driver {
    workload: CoreWorkload,
    rng: StdRng,
    /// Call the adapter's `tick` every this many operations (0 = never).
    pub tick_every: u64,
}

impl Driver {
    /// Create a driver for a workload specification with a fixed RNG seed
    /// (so two configurations see the same request stream).
    #[must_use]
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        Driver {
            workload: CoreWorkload::new(spec),
            rng: StdRng::seed_from_u64(seed),
            tick_every: 100,
        }
    }

    /// The workload specification being driven.
    #[must_use]
    pub fn spec(&self) -> &WorkloadSpec {
        self.workload.spec()
    }

    /// Run the load phase: insert every record.
    ///
    /// # Errors
    ///
    /// Propagates adapter errors.
    pub fn run_load<S: KvInterface + ?Sized>(&mut self, store: &mut S) -> Result<RunReport> {
        let record_count = self.workload.spec().record_count;
        let mut latency = LatencyHistogram::new();
        let mut errors = 0u64;
        let started = Instant::now();
        for i in 0..record_count {
            let op = self.workload.load_op(&mut self.rng, i);
            let op_start = Instant::now();
            let result = match &op {
                WorkloadOp::Insert { key, fields } => store.insert(key, fields),
                _ => unreachable!("load phase only inserts"),
            };
            latency.record(op_start.elapsed());
            if result.is_err() {
                errors += 1;
            }
            self.maybe_tick(store, i)?;
        }
        Ok(RunReport {
            phase: format!("Load-{}", self.workload.spec().name),
            operations: record_count,
            errors,
            elapsed: started.elapsed(),
            latency,
        })
    }

    /// Run the transaction phase: `operation_count` operations drawn from
    /// the workload mix.
    ///
    /// # Errors
    ///
    /// Propagates adapter errors raised by `tick`; per-operation errors are
    /// counted in the report instead of aborting the run (as YCSB does).
    pub fn run_transactions<S: KvInterface + ?Sized>(
        &mut self,
        store: &mut S,
    ) -> Result<RunReport> {
        let operation_count = self.workload.spec().operation_count;
        let mut latency = LatencyHistogram::new();
        let mut errors = 0u64;
        let started = Instant::now();
        for i in 0..operation_count {
            let op = self.workload.next_op(&mut self.rng);
            let op_start = Instant::now();
            let outcome = self.apply(store, &op);
            latency.record(op_start.elapsed());
            if outcome.is_err() {
                errors += 1;
            }
            self.maybe_tick(store, i)?;
        }
        Ok(RunReport {
            phase: self.workload.spec().name.clone(),
            operations: operation_count,
            errors,
            elapsed: started.elapsed(),
            latency,
        })
    }

    fn apply<S: KvInterface + ?Sized>(&self, store: &mut S, op: &WorkloadOp) -> Result<()> {
        match op {
            WorkloadOp::Read { key } => store.read(key).map(|_| ()),
            WorkloadOp::Update { key, fields } => store.update(key, fields),
            WorkloadOp::Insert { key, fields } => store.insert(key, fields),
            WorkloadOp::Scan { start_key, count } => store.scan(start_key, *count).map(|_| ()),
            WorkloadOp::ReadModifyWrite { key, fields } => {
                store.read(key)?;
                store.update(key, fields)
            }
        }
    }

    fn maybe_tick<S: KvInterface + ?Sized>(&self, store: &mut S, op_index: u64) -> Result<()> {
        if self.tick_every > 0 && op_index.is_multiple_of(self.tick_every) {
            store.tick()?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------

/// A trivial in-memory adapter, used for the crate's own tests and as the
/// reference implementation of [`KvInterface`] semantics.
#[derive(Debug, Default)]
pub struct MemoryKv {
    records: std::collections::BTreeMap<String, BTreeMap<String, Vec<u8>>>,
    /// Number of `tick` calls observed (exposed for tests).
    pub ticks: u64,
    /// If set, every n-th operation fails (for error-accounting tests).
    pub fail_every: Option<u64>,
    ops: u64,
}

impl MemoryKv {
    /// Create an empty adapter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    fn maybe_fail(&mut self) -> Result<()> {
        self.ops += 1;
        if let Some(n) = self.fail_every {
            if n > 0 && self.ops.is_multiple_of(n) {
                return Err(WorkloadError::new("injected failure"));
            }
        }
        Ok(())
    }
}

impl KvInterface for MemoryKv {
    fn insert(&mut self, key: &str, fields: &BTreeMap<String, Vec<u8>>) -> Result<()> {
        self.maybe_fail()?;
        self.records.insert(key.to_string(), fields.clone());
        Ok(())
    }

    fn read(&mut self, key: &str) -> Result<Option<BTreeMap<String, Vec<u8>>>> {
        self.maybe_fail()?;
        Ok(self.records.get(key).cloned())
    }

    fn update(&mut self, key: &str, fields: &BTreeMap<String, Vec<u8>>) -> Result<()> {
        self.maybe_fail()?;
        let entry = self.records.entry(key.to_string()).or_default();
        for (f, v) in fields {
            entry.insert(f.clone(), v.clone());
        }
        Ok(())
    }

    fn scan(&mut self, start_key: &str, count: usize) -> Result<Vec<String>> {
        self.maybe_fail()?;
        Ok(self
            .records
            .range(start_key.to_string()..)
            .take(count)
            .map(|(k, _)| k.clone())
            .collect())
    }

    fn tick(&mut self) -> Result<()> {
        self.ticks += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;

    #[test]
    fn load_phase_populates_every_record() {
        let mut driver = Driver::new(WorkloadSpec::workload_a(200, 100), 1);
        let mut store = MemoryKv::new();
        let report = driver.run_load(&mut store).unwrap();
        assert_eq!(report.operations, 200);
        assert_eq!(report.errors, 0);
        assert_eq!(store.len(), 200);
        assert!(report.phase.starts_with("Load-"));
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn transaction_phase_runs_the_requested_ops() {
        let mut driver = Driver::new(WorkloadSpec::workload_a(100, 500), 2);
        let mut store = MemoryKv::new();
        driver.run_load(&mut store).unwrap();
        let report = driver.run_transactions(&mut store).unwrap();
        assert_eq!(report.operations, 500);
        assert_eq!(report.errors, 0);
        assert_eq!(report.phase, "A");
    }

    #[test]
    fn workload_d_and_e_grow_the_store() {
        for name in ["D", "E"] {
            let mut driver = Driver::new(WorkloadSpec::by_name(name, 100, 1_000), 3);
            let mut store = MemoryKv::new();
            driver.run_load(&mut store).unwrap();
            driver.run_transactions(&mut store).unwrap();
            assert!(
                store.len() > 100,
                "workload {name} should insert new records"
            );
        }
    }

    #[test]
    fn same_seed_same_request_stream() {
        let spec = WorkloadSpec::workload_a(50, 200);
        let mut d1 = Driver::new(spec.clone(), 9);
        let mut d2 = Driver::new(spec, 9);
        let mut s1 = MemoryKv::new();
        let mut s2 = MemoryKv::new();
        d1.run_load(&mut s1).unwrap();
        d2.run_load(&mut s2).unwrap();
        d1.run_transactions(&mut s1).unwrap();
        d2.run_transactions(&mut s2).unwrap();
        assert_eq!(
            s1.records, s2.records,
            "identical seeds must produce identical state"
        );
    }

    #[test]
    fn errors_are_counted_not_fatal() {
        let mut driver = Driver::new(WorkloadSpec::workload_a(100, 200), 4);
        let mut store = MemoryKv::new();
        driver.run_load(&mut store).unwrap();
        store.fail_every = Some(10);
        let report = driver.run_transactions(&mut store).unwrap();
        assert!(report.errors > 0);
        assert_eq!(report.operations, 200);
    }

    #[test]
    fn tick_is_called_periodically() {
        let mut driver = Driver::new(WorkloadSpec::workload_c(50, 300), 5);
        driver.tick_every = 50;
        let mut store = MemoryKv::new();
        driver.run_load(&mut store).unwrap();
        let ticks_after_load = store.ticks;
        assert!(ticks_after_load >= 1);
        driver.run_transactions(&mut store).unwrap();
        assert!(store.ticks > ticks_after_load);
    }

    #[test]
    fn memory_kv_scan_is_ordered() {
        let mut kv = MemoryKv::new();
        for i in [3, 1, 2] {
            kv.insert(&format!("user{i}"), &BTreeMap::new()).unwrap();
        }
        assert_eq!(kv.scan("user1", 2).unwrap(), vec!["user1", "user2"]);
        assert!(!kv.is_empty());
    }
}
