//! Concurrency stress tests for the sharded stack: N threads performing
//! puts, gets, erasures and objections at once, with the invariants that
//! matter for compliance checked afterwards:
//!
//! * the metadata index stays consistent with the keyspace (every indexed
//!   key exists and carries metadata naming the right subject; every data
//!   key in the keyspace is indexed under its subject);
//! * denied operations never mutate state (an actor without a grant leaves
//!   no keys, no metadata and no index postings behind);
//! * under the strict (real-time) policy the audit hash chain still
//!   verifies end to end after concurrent emission.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use gdpr_storage::gdpr_core::acl::Grant;
use gdpr_storage::gdpr_core::metadata::{PersonalMetadata, Region};
use gdpr_storage::gdpr_core::policy::CompliancePolicy;
use gdpr_storage::gdpr_core::store::{AccessContext, GdprStore};
use gdpr_storage::gdpr_core::GdprError;
use gdpr_storage::kvstore::config::StoreConfig;

const WRITER_THREADS: usize = 4;
const KEYS_PER_WRITER: usize = 120;

fn ctx() -> AccessContext {
    AccessContext::new("app", "service")
}

fn subject(thread: usize) -> String {
    format!("subject{thread}")
}

fn meta(thread: usize) -> PersonalMetadata {
    PersonalMetadata::new(&subject(thread))
        .with_purpose("service")
        .with_purpose("analytics")
        .with_location(Region::Eu)
}

fn open_sharded(policy: CompliancePolicy) -> GdprStore {
    let store = GdprStore::open(
        policy,
        StoreConfig::in_memory().aof_in_memory().shards(8),
        Box::new(gdpr_storage::audit::sink::MemorySink::new()),
    )
    .unwrap();
    store.grant(Grant::new("app", "service"));
    store.grant(Grant::new("app", "analytics"));
    store
}

#[test]
fn concurrent_put_get_erasure_objection_keeps_index_consistent() {
    let store = open_sharded(CompliancePolicy::eventual());
    let denied_attempts = AtomicU64::new(0);

    std::thread::scope(|scope| {
        // Writers: each owns a subject and fills its key range, reading
        // back as it goes.
        for t in 0..WRITER_THREADS {
            let store = &store;
            scope.spawn(move || {
                for i in 0..KEYS_PER_WRITER {
                    let key = format!("user:{}:k{i:03}", subject(t));
                    store
                        .put(&ctx(), &key, format!("v{i}").into_bytes(), meta(t))
                        .unwrap();
                    if i % 3 == 0 {
                        let _ = store.get(&ctx(), &key);
                    }
                }
            });
        }

        // Eraser: repeatedly exercises the right to be forgotten against
        // writer 0's subject while that writer is still inserting.
        {
            let store = &store;
            scope.spawn(move || {
                for _ in 0..20 {
                    store.right_to_erasure(&ctx(), &subject(0)).unwrap();
                    std::thread::yield_now();
                }
            });
        }

        // Objector: races metadata rewrites against writer 1.
        {
            let store = &store;
            scope.spawn(move || {
                for _ in 0..20 {
                    store
                        .right_to_object(&ctx(), &subject(1), "analytics")
                        .unwrap();
                    std::thread::yield_now();
                }
            });
        }

        // Rogue: no grant — every attempt must be denied and must not
        // mutate anything.
        {
            let store = &store;
            let denied = &denied_attempts;
            scope.spawn(move || {
                let rogue = AccessContext::new("rogue", "service");
                for i in 0..100 {
                    let key = format!("user:mallory:k{i:03}");
                    let meta = PersonalMetadata::new("mallory")
                        .with_purpose("service")
                        .with_location(Region::Eu);
                    let err = store
                        .put(&rogue, &key, b"stolen".to_vec(), meta)
                        .unwrap_err();
                    assert!(matches!(err, GdprError::AccessDenied { .. }));
                    denied.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // Background duties run concurrently too (expiry cycles, audit
        // buffer drains).
        {
            let store = &store;
            scope.spawn(move || {
                for _ in 0..50 {
                    store.tick().unwrap();
                    std::thread::yield_now();
                }
            });
        }
    });

    // --- invariant: denied ops never mutate state -------------------------
    assert_eq!(denied_attempts.load(Ordering::Relaxed), 100);
    assert!(store.stats().denied_ops >= 100);
    assert!(store.keys_of_subject("mallory").unwrap().is_empty());
    let all_keys = store.scan(&ctx(), "", 10_000).unwrap();
    assert!(
        all_keys.iter().all(|k| !k.contains("mallory")),
        "denied writes must leave no keys behind"
    );

    // --- invariant: index ↔ keyspace consistency --------------------------
    // Every indexed key exists with metadata naming the right subject.
    for t in 0..WRITER_THREADS {
        for key in store.keys_of_subject(&subject(t)).unwrap() {
            let meta = store
                .metadata(&ctx(), &key)
                .unwrap()
                .unwrap_or_else(|| panic!("indexed key {key} has no metadata"));
            assert_eq!(meta.subject, subject(t));
            assert!(
                store.get(&ctx(), &key).unwrap().is_some(),
                "indexed key {key} missing from keyspace"
            );
        }
    }
    // Every data key in the keyspace is indexed under its subject.
    for key in &all_keys {
        let meta = store
            .metadata(&ctx(), key)
            .unwrap()
            .expect("data key without metadata");
        assert!(
            store.keys_of_subject(&meta.subject).unwrap().contains(key),
            "key {key} not indexed for subject {}",
            meta.subject
        );
    }

    // --- erasure settles deterministically once writers stop --------------
    let report = store.right_to_erasure(&ctx(), &subject(0)).unwrap();
    let _ = report;
    assert!(store.keys_of_subject(&subject(0)).unwrap().is_empty());
    assert!(store
        .scan(&ctx(), "", 10_000)
        .unwrap()
        .iter()
        .all(|k| !k.contains(&subject(0))));

    // Untouched writers keep their full key range.
    for t in 2..WRITER_THREADS {
        assert_eq!(
            store.keys_of_subject(&subject(t)).unwrap().len(),
            KEYS_PER_WRITER
        );
    }

    // Objections stuck: analytics reads on subject 1 are refused, service
    // reads still work. One settle pass covers keys inserted after the
    // objector thread's final concurrent pass.
    store
        .right_to_object(&ctx(), &subject(1), "analytics")
        .unwrap();
    let analytics = AccessContext::new("app", "analytics");
    if let Some(key) = store.keys_of_subject(&subject(1)).unwrap().first() {
        assert!(
            store.get(&analytics, key).is_err(),
            "objection must block analytics reads"
        );
        assert!(store.get(&ctx(), key).is_ok());
    }

    assert!(store.stats().allowed_ops > 0);
    assert!(store.stats().erased_by_request > 0);
}

#[test]
fn strict_policy_audit_chain_survives_concurrent_emission() {
    let store = GdprStore::open_in_memory(CompliancePolicy::strict()).unwrap();
    store.grant(Grant::new("app", "service"));

    std::thread::scope(|scope| {
        for t in 0..4 {
            let store = &store;
            scope.spawn(move || {
                for i in 0..25 {
                    let key = format!("user:{}:k{i:02}", subject(t));
                    let meta = PersonalMetadata::new(&subject(t))
                        .with_purpose("service")
                        .with_location(Region::Eu);
                    store.put(&ctx(), &key, b"v".to_vec(), meta).unwrap();
                    store.get(&ctx(), &key).unwrap();
                }
            });
        }
    });

    // 4 threads × 25 puts+gets, plus the grant record.
    let trail = store.audit_trail().unwrap();
    assert!(
        trail.len() >= 201,
        "expected ≥201 audit lines, got {}",
        trail.len()
    );

    // The hash chain must verify end to end despite interleaved writers.
    let parsed = gdpr_storage::audit::reader::parse_trail(&trail.join("\n")).unwrap();
    gdpr_storage::audit::reader::verify_trail(&parsed).unwrap();
    assert!(store.audit_chain_tip().is_some());

    assert_eq!(store.len(), 100);
    assert_eq!(store.stats().denied_ops, 0);
}

#[test]
fn group_commit_under_compliance_hammering_keeps_state_and_journal_aligned() {
    // Real-time durability (fsync=always) on a file-backed journal, with
    // the per-shard segments' group committers coalescing the concurrent
    // writers: nothing may be lost, nothing reordered within a key, and a
    // crash-replay must land on exactly the surviving state.
    let dir = std::env::temp_dir().join(format!("gdpr-stress-gc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.aof");

    let config = StoreConfig::with_aof(&path).shards(8);
    // The compliance layer stamps its own journal fsync policy onto the
    // engine config, so real-time durability is selected there.
    let mut policy = CompliancePolicy::eventual();
    policy.journal_fsync = gdpr_storage::kvstore::aof::FsyncPolicy::Always;
    {
        let store = GdprStore::open(
            policy.clone(),
            config.clone(),
            Box::new(gdpr_storage::audit::sink::MemorySink::new()),
        )
        .unwrap();
        store.grant(Grant::new("app", "service"));
        store.grant(Grant::new("app", "analytics"));

        std::thread::scope(|scope| {
            for t in 0..WRITER_THREADS {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..KEYS_PER_WRITER {
                        let key = format!("user:{}:k{}", subject(t), i % 30);
                        store
                            .put(&ctx(), &key, format!("{i:06}").into_bytes(), meta(t))
                            .unwrap();
                    }
                });
            }
            // One eraser racing the writers exercises erasure + journal
            // scrub against the group committer.
            let store = &store;
            scope.spawn(move || {
                for _ in 0..3 {
                    store.right_to_erasure(&ctx(), &subject(0)).unwrap();
                    std::thread::yield_now();
                }
            });
        });

        let aof = store.aof_stats().unwrap();
        assert_eq!(aof.unsynced_records, 0, "always: nothing at risk");
        assert!(aof.group_commits > 0, "group committer must have run");
        let per_segment = store.aof_segment_stats().unwrap();
        assert_eq!(per_segment.len(), 8, "one journal segment per shard");
        assert!(per_segment.iter().all(|s| s.unsynced_records == 0));
        // "Crash": dropped without a clean shutdown.
    }

    let reopened = GdprStore::open(
        policy,
        config,
        Box::new(gdpr_storage::audit::sink::MemorySink::new()),
    )
    .unwrap();
    // Grants live in the in-memory ACL, not the journal; reinstall them.
    reopened.grant(Grant::new("app", "service"));
    reopened.grant(Grant::new("app", "analytics"));
    // Writers other than thread 0 (raced by the eraser) must have all 30
    // slots, each holding the last value written to it.
    for t in 1..WRITER_THREADS {
        let keys = reopened.keys_of_subject(&subject(t)).unwrap();
        assert_eq!(keys.len(), 30, "subject{t} keys after replay");
        for k in 0..30 {
            let last = (0..KEYS_PER_WRITER).rev().find(|i| i % 30 == k).unwrap();
            assert_eq!(
                reopened
                    .get(&ctx(), &format!("user:{}:k{k}", subject(t)))
                    .unwrap(),
                Some(format!("{last:06}").into_bytes()),
                "per-key order must survive group commit + crash replay"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn writers_racing_strict_wheel_tick_never_double_fire_or_miss_deadlines() {
    // The timer-wheel strict-expiry path under contention: writers keep
    // inserting TTL'd keys (including reschedules that leave stale wheel
    // entries behind) while a ticker runs the strict sweep. Invariants:
    //
    // * no double fire — every key appears at most once across all tick
    //   outcomes (the wheel's generation check must hold under racing
    //   reschedules);
    // * no stale fire — a key whose TTL was rewritten far into the future
    //   must survive every sweep;
    // * no missed deadline beyond one tick — once writers stop, a single
    //   final sweep (after the short TTLs elapsed) leaves nothing overdue.
    use gdpr_storage::kvstore::expire::ExpiryMode;
    use gdpr_storage::kvstore::store::KvStore;
    use std::time::Duration;

    const WRITERS: usize = 4;
    const KEYS: usize = 200;

    let store = KvStore::open(
        StoreConfig::in_memory()
            .shards(8)
            .expiry_mode(ExpiryMode::Strict),
    )
    .unwrap();
    let fired = Mutex::new(Vec::<String>::new());

    std::thread::scope(|scope| {
        for t in 0..WRITERS {
            let store = store.clone();
            scope.spawn(move || {
                for i in 0..KEYS {
                    let key = format!("t{t}:k{i:03}");
                    store.set(&key, vec![t as u8]).unwrap();
                    match i % 3 {
                        0 => {
                            // Expires almost immediately: must be swept.
                            store.expire_in(&key, Duration::from_millis(1)).unwrap();
                        }
                        1 => {
                            // Rescheduled far out: the first deadline goes
                            // stale in the wheel and must never fire.
                            store.expire_in(&key, Duration::from_secs(10)).unwrap();
                            store.expire_in(&key, Duration::from_secs(3_600)).unwrap();
                        }
                        _ => {} // no TTL at all
                    }
                }
            });
        }
        {
            let store = store.clone();
            let fired = &fired;
            scope.spawn(move || {
                for _ in 0..300 {
                    let outcome = store.tick().unwrap();
                    fired.lock().unwrap().extend(outcome.removed);
                    std::thread::yield_now();
                }
            });
        }
    });

    // Writers and the racing ticker are done; give the last short TTLs
    // their millisecond, then one final sweep bounds the miss window.
    std::thread::sleep(Duration::from_millis(20));
    let outcome = store.tick().unwrap();
    fired.lock().unwrap().extend(outcome.removed);
    let fired = fired.into_inner().unwrap();

    // No double fire.
    let mut sorted = fired.clone();
    sorted.sort();
    let before = sorted.len();
    sorted.dedup();
    assert_eq!(sorted.len(), before, "a key fired twice: {fired:?}");

    // Exactly the short-TTL keys fired; rescheduled and TTL-less keys
    // survived with their values.
    assert_eq!(
        store.pending_expired(),
        0,
        "missed deadline beyond one tick"
    );
    for t in 0..WRITERS {
        for i in 0..KEYS {
            let key = format!("t{t}:k{i:03}");
            match i % 3 {
                0 => {
                    assert!(sorted.binary_search(&key).is_ok(), "{key} never swept");
                    assert_eq!(store.get(&key).unwrap(), None, "{key} still present");
                }
                1 => {
                    assert!(sorted.binary_search(&key).is_err(), "{key} fired stale");
                    assert_eq!(store.get(&key).unwrap(), Some(vec![t as u8]), "{key} lost");
                    assert!(store.ttl(&key).unwrap().unwrap() > Duration::from_secs(3_000));
                }
                _ => {
                    assert!(sorted.binary_search(&key).is_err());
                    assert_eq!(store.get(&key).unwrap(), Some(vec![t as u8]));
                }
            }
        }
    }

    // The keyspace expiry counter agrees with the fired list: index and
    // keyspace stayed consistent throughout.
    assert_eq!(store.stats().db.expired_keys, sorted.len() as u64);
    let rescued = (0..KEYS).filter(|i| i % 3 == 1).count() * WRITERS;
    assert_eq!(store.stats().deadline_index.entries as usize, rescued);
}
