//! The replication wire surface.
//!
//! A replica opens an ordinary RESP connection to its primary and sends
//! `REPLSYNC`. The primary answers with one [`ReplFrame::FullSync`] frame
//! (a portable snapshot blob plus the journal watermark it corresponds
//! to), then keeps the connection and *pushes* the journal stream:
//! [`ReplFrame::Record`] frames carrying `(sequence, engine command
//! bytes)` in order, and [`ReplFrame::Heartbeat`] frames whenever the
//! stream is idle so the replica can keep measuring its lag against the
//! primary's watermark. A primary that can no longer serve the replica's
//! cursor (backlog overrun, or a journal rewrite renumbered the stream)
//! sends a RESP error starting with [`REPLLOST`]; the replica reacts by
//! running a fresh `REPLSYNC`.
//!
//! Every frame is plain RESP2, so the stream survives any RESP-aware
//! middlebox and the replica can reuse the ordinary client decoder.

use crate::{Frame, RespError};

/// The wire command a replica sends to begin replication.
pub const REPLSYNC: &str = "REPLSYNC";

/// Error-reply prefix telling the replica its cursor is gone and it must
/// run a fresh full sync.
pub const REPLLOST: &str = "REPLLOST";

const FULLSYNC_TAG: &[u8] = b"FULLSYNC";
const RECORD_TAG: &[u8] = b"REPLREC";
const HEARTBEAT_TAG: &[u8] = b"REPLHB";

/// One frame of the primary → replica replication stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplFrame {
    /// The full-sync payload opening every stream: apply `snapshot`, then
    /// tail from (`epoch`, `last_seq`).
    FullSync {
        /// Journal epoch the watermark belongs to.
        epoch: u64,
        /// Highest journal sequence number covered by the snapshot.
        last_seq: u64,
        /// Portable keyspace snapshot blob (`kvstore::snapshot` format,
        /// loadable at any shard count).
        snapshot: Vec<u8>,
    },
    /// One journal record: `seq` is the global sequence number, `record`
    /// the encoded engine command. `watermark` is the primary's highest
    /// allocated sequence as of the send — it rides on every record so
    /// the replica's lag gauge stays honest *while* a burst is applying
    /// (heartbeats alone queue behind the records in FIFO order and
    /// would only correct the lag after the burst drained).
    Record {
        /// Global journal sequence number of this record.
        seq: u64,
        /// The primary's highest allocated sequence at send time.
        watermark: u64,
        /// Encoded engine command bytes.
        record: Vec<u8>,
    },
    /// Idle-stream keepalive carrying the primary's current watermark.
    Heartbeat {
        /// Highest journal sequence number allocated on the primary.
        last_seq: u64,
    },
}

impl ReplFrame {
    /// Encode into the RESP frame that travels on the wire.
    #[must_use]
    pub fn to_frame(&self) -> Frame {
        match self {
            ReplFrame::FullSync {
                epoch,
                last_seq,
                snapshot,
            } => Frame::Array(vec![
                Frame::Bulk(FULLSYNC_TAG.to_vec()),
                Frame::Integer(*epoch as i64),
                Frame::Integer(*last_seq as i64),
                Frame::Bulk(snapshot.clone()),
            ]),
            ReplFrame::Record {
                seq,
                watermark,
                record,
            } => Frame::Array(vec![
                Frame::Bulk(RECORD_TAG.to_vec()),
                Frame::Integer(*seq as i64),
                Frame::Integer(*watermark as i64),
                Frame::Bulk(record.clone()),
            ]),
            ReplFrame::Heartbeat { last_seq } => Frame::Array(vec![
                Frame::Bulk(HEARTBEAT_TAG.to_vec()),
                Frame::Integer(*last_seq as i64),
            ]),
        }
    }

    /// Parse a frame received from the primary.
    ///
    /// # Errors
    ///
    /// Returns [`RespError::Protocol`] for anything that is not a
    /// well-formed replication stream frame.
    pub fn from_frame(frame: &Frame) -> Result<Self, RespError> {
        let bad = |detail: &str| RespError::Protocol(format!("replication stream: {detail}"));
        let Frame::Array(items) = frame else {
            return Err(bad("expected an array frame"));
        };
        let tag = match items.first() {
            Some(Frame::Bulk(tag)) => tag.as_slice(),
            _ => return Err(bad("missing tag")),
        };
        let int = |i: usize, what: &str| -> Result<u64, RespError> {
            match items.get(i) {
                Some(Frame::Integer(v)) if *v >= 0 => Ok(*v as u64),
                _ => Err(bad(&format!("missing or negative {what}"))),
            }
        };
        let bulk = |i: usize, what: &str| -> Result<Vec<u8>, RespError> {
            match items.get(i) {
                Some(Frame::Bulk(bytes)) => Ok(bytes.clone()),
                _ => Err(bad(&format!("missing {what}"))),
            }
        };
        match tag {
            t if t == FULLSYNC_TAG => {
                if items.len() != 4 {
                    return Err(bad("FULLSYNC arity"));
                }
                Ok(ReplFrame::FullSync {
                    epoch: int(1, "epoch")?,
                    last_seq: int(2, "watermark")?,
                    snapshot: bulk(3, "snapshot blob")?,
                })
            }
            t if t == RECORD_TAG => {
                if items.len() != 4 {
                    return Err(bad("REPLREC arity"));
                }
                Ok(ReplFrame::Record {
                    seq: int(1, "sequence")?,
                    watermark: int(2, "watermark")?,
                    record: bulk(3, "record bytes")?,
                })
            }
            t if t == HEARTBEAT_TAG => {
                if items.len() != 2 {
                    return Err(bad("REPLHB arity"));
                }
                Ok(ReplFrame::Heartbeat {
                    last_seq: int(1, "watermark")?,
                })
            }
            other => Err(bad(&format!(
                "unknown tag {:?}",
                String::from_utf8_lossy(other)
            ))),
        }
    }
}

/// Whether a decoded request frame is the `REPLSYNC` command (checked at
/// the transport layer, which owns the connection the stream takes over).
#[must_use]
pub fn is_replsync_command(frame: &Frame) -> bool {
    match frame {
        Frame::Array(items) => matches!(
            items.first(),
            Some(Frame::Bulk(name)) if name.eq_ignore_ascii_case(REPLSYNC.as_bytes())
        ),
        _ => false,
    }
}

/// Whether a RESP error message is the stream-lost signal.
#[must_use]
pub fn is_repllost_error(message: &str) -> bool {
    message.starts_with(REPLLOST)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_frames_roundtrip() {
        for frame in [
            ReplFrame::FullSync {
                epoch: 3,
                last_seq: 999,
                snapshot: b"GDPRKV01...blob".to_vec(),
            },
            ReplFrame::Record {
                seq: 1_000,
                watermark: 1_024,
                record: b"\x00binary\r\ncommand".to_vec(),
            },
            ReplFrame::Heartbeat { last_seq: 1_000 },
        ] {
            let parsed = ReplFrame::from_frame(&frame.to_frame()).unwrap();
            assert_eq!(parsed, frame);
        }
    }

    #[test]
    fn malformed_stream_frames_are_rejected() {
        for frame in [
            Frame::Integer(1),
            Frame::Array(vec![]),
            Frame::Array(vec![Frame::Bulk(b"BOGUS".to_vec())]),
            Frame::Array(vec![Frame::Bulk(b"REPLREC".to_vec()), Frame::Integer(1)]),
            Frame::Array(vec![
                Frame::Bulk(b"REPLREC".to_vec()),
                Frame::Integer(-4),
                Frame::Integer(7),
                Frame::Bulk(Vec::new()),
            ]),
            Frame::Array(vec![
                Frame::Bulk(b"FULLSYNC".to_vec()),
                Frame::Integer(1),
                Frame::Integer(2),
            ]),
        ] {
            assert!(ReplFrame::from_frame(&frame).is_err(), "{frame:?}");
        }
    }

    #[test]
    fn replsync_detection_is_case_insensitive() {
        assert!(is_replsync_command(&Frame::command(["replsync"])));
        assert!(is_replsync_command(&Frame::command(["REPLSYNC"])));
        assert!(!is_replsync_command(&Frame::command(["GET", "k"])));
        assert!(!is_replsync_command(&Frame::Integer(3)));
    }

    #[test]
    fn repllost_detection() {
        assert!(is_repllost_error("REPLLOST backlog overrun"));
        assert!(!is_repllost_error("ERR other"));
    }
}
