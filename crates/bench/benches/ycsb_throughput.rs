//! Figure 1 companion: micro-scale YCSB workload A against the main
//! configurations (criterion-sized; the full sweep lives in the
//! `fig1_throughput` binary).

use std::time::Duration;

use bench::adapters::{EmbeddedAdapter, GdprAdapter, RemoteAdapter};
use criterion::{criterion_group, criterion_main, Criterion};
use gdpr_core::policy::CompliancePolicy;
use gdpr_core::store::GdprStore;
use kvstore::config::StoreConfig;
use kvstore::store::KvStore;
use netsim::client::RemoteClient;
use netsim::link::LinkConfig;
use netsim::server::RespKvServer;
use ycsb::client::{Driver, KvInterface};
use ycsb::workload::WorkloadSpec;

const RECORDS: u64 = 500;
const OPS: u64 = 1_000;

fn run_workload_a<S: KvInterface + ?Sized>(adapter: &mut S) {
    let mut driver = Driver::new(WorkloadSpec::workload_a(RECORDS, OPS), 42);
    driver.run_load(adapter).unwrap();
    driver.run_transactions(adapter).unwrap();
}

fn bench_ycsb(c: &mut Criterion) {
    let mut group = c.benchmark_group("ycsb_workload_a");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));

    group.bench_function("unmodified_embedded", |b| {
        b.iter(|| {
            let mut adapter =
                EmbeddedAdapter::new(KvStore::open(StoreConfig::in_memory()).unwrap());
            run_workload_a(&mut adapter);
        });
    });

    group.bench_function("aof_everysec_monitoring", |b| {
        b.iter(|| {
            let store =
                KvStore::open(StoreConfig::in_memory().aof_in_memory().log_reads(true)).unwrap();
            let mut adapter = EmbeddedAdapter::new(store);
            run_workload_a(&mut adapter);
        });
    });

    group.bench_function("luks_tls_remote", |b| {
        b.iter(|| {
            let store = KvStore::open(
                StoreConfig::in_memory()
                    .aof_in_memory()
                    .encrypted(b"bench-passphrase"),
            )
            .unwrap();
            let client = RemoteClient::connect_secure(
                RespKvServer::new(store),
                LinkConfig::tls_proxied_4_9gbps(),
                b"bench-secret",
            );
            let mut adapter = RemoteAdapter::new(client);
            run_workload_a(&mut adapter);
        });
    });

    group.bench_function("strict_gdpr_layer", |b| {
        b.iter(|| {
            let store = GdprStore::open_in_memory(CompliancePolicy::strict()).unwrap();
            let mut adapter = GdprAdapter::new(store);
            run_workload_a(&mut adapter);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_ycsb);
criterion_main!(benches);
