//! Hot-cache scaling bench: the TinyLFU hot-read cache against the full
//! compliance slow path, plus the bounded-memory story under write
//! pressure.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin cache_scaling \
//!     [records=N] [ops=N] [seed=N] [threads=N] [maxmemory=bytes]
//! ```
//!
//! Two experiments, emitted together into `BENCH_cache_scaling.json`:
//!
//! 1. **Hot reads** — a zipfian GET mix over a preloaded keyspace, run
//!    once with the hot cache disabled and once enabled, same seed. The
//!    cache serves repeat reads of the hot set without re-walking the
//!    metadata index, so the on/off ratio is the compliance overhead the
//!    cache removes; the hit rate says how much of the load it absorbed.
//! 2. **Bounded memory** — write several ceilings' worth of data into an
//!    engine capped by `maxmemory` under `sampled-lru` (footprint must
//!    stay at or under the ceiling, evictions do the work) and under
//!    `noeviction` (growth must be refused with OOM instead).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use bench::arg_value;
use gdpr_core::acl::Grant;
use gdpr_core::hot_cache::HotCacheConfig;
use gdpr_core::metadata::PersonalMetadata;
use gdpr_core::policy::CompliancePolicy;
use gdpr_core::store::{AccessContext, GdprStore};
use kvstore::config::{EvictionPolicy, StoreConfig};
use kvstore::store::KvStore;
use kvstore::StoreError;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ycsb::generator::{NumberGenerator, ScrambledZipfianGenerator};

const VALUE_BYTES: usize = 100;
const ACTOR: &str = "bench";
const PURPOSE: &str = "benchmarking";

struct HotReadCell {
    hotcache: &'static str,
    ops_per_sec: f64,
    hit_rate: f64,
    cache_hits: u64,
    cache_misses: u64,
}

struct BoundedCell {
    maxmemory: u64,
    bytes_written: u64,
    mem_bytes: u64,
    evicted_keys: u64,
    bounded: bool,
    oom_errors_noeviction: u64,
}

fn open_store(shards: usize, hotcache: bool) -> GdprStore {
    let config = StoreConfig::in_memory().aof_in_memory().shards(shards);
    let mut store = GdprStore::open(
        CompliancePolicy::eventual(),
        config,
        Box::new(audit::sink::NullSink::new()),
    )
    .expect("open GDPR store");
    // Pin the cache state explicitly so the run is reproducible no matter
    // what GDPR_HOT_CACHE says in the environment.
    store.set_hot_cache(HotCacheConfig::default().enabled(hotcache));
    store.grant(Grant::new(ACTOR, PURPOSE));
    store
}

fn preload(store: &GdprStore, ctx: &AccessContext, records: u64) {
    for i in 0..records {
        let meta = PersonalMetadata::new("bench-subject").with_purpose(PURPOSE);
        store
            .put(ctx, &format!("user{i:08}"), vec![b'x'; VALUE_BYTES], meta)
            .expect("preload");
    }
}

/// Zipfian GET storm over `threads` client threads; returns ops/s
/// measured against process CPU time (wall clock when the platform does
/// not expose it), so a noisy co-tenant stealing the host's cores does
/// not masquerade as a slowdown of the code under test.
fn read_storm(store: &GdprStore, records: u64, ops: u64, threads: usize, seed: u64) -> f64 {
    let errors = AtomicU64::new(0);
    let cpu_started = bench::process_cpu_seconds();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let errors = &errors;
            let store = &store;
            scope.spawn(move || {
                let ctx = AccessContext::new(ACTOR, PURPOSE);
                let mut rng = StdRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9e37));
                let mut chooser = ScrambledZipfianGenerator::new(records);
                for _ in 0..ops / threads as u64 {
                    let key = format!("user{:08}", chooser.next_value(&mut rng));
                    if store.get(&ctx, &key).is_err() {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let elapsed = match (cpu_started, bench::process_cpu_seconds()) {
        (Some(before), Some(after)) if after > before => after - before,
        _ => started.elapsed().as_secs_f64(),
    };
    assert_eq!(errors.load(Ordering::Relaxed), 0, "GETs must not error");
    (ops / threads as u64 * threads as u64) as f64 / elapsed
}

/// Timed rounds alternated between the two configurations; the
/// per-configuration median compares like with like even when residual
/// noise (cache pollution from co-tenants) drifts over the run.
const ROUNDS: usize = 5;

fn hot_read_cells(records: u64, ops: u64, threads: usize, seed: u64) -> [HotReadCell; 2] {
    let stores = [
        open_store(threads.max(1), false),
        open_store(threads.max(1), true),
    ];
    let ctx = AccessContext::new(ACTOR, PURPOSE);
    let round_ops = (ops / ROUNDS as u64).max(1);
    let mut rates: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for store in &stores {
        preload(store, &ctx, records);
        // Warm pass (untimed): lets TinyLFU admit the hot set so the timed
        // rounds measure steady state, not cold misses.
        read_storm(store, records, records, threads, seed.wrapping_add(1));
    }
    let before: Vec<_> = stores.iter().map(GdprStore::stats).collect();
    for round in 0..ROUNDS {
        for (i, store) in stores.iter().enumerate() {
            let rate = read_storm(
                store,
                records,
                round_ops,
                threads,
                seed.wrapping_add(round as u64),
            );
            println!(
                "    round {round} {}: {rate:.0} ops/s",
                if i == 1 { "on " } else { "off" }
            );
            rates[i].push(rate);
        }
    }
    let cells: Vec<HotReadCell> = stores
        .iter()
        .enumerate()
        .map(|(i, store)| {
            let mut sorted = rates[i].clone();
            sorted.sort_by(f64::total_cmp);
            let after = store.stats();
            let hits = after.cache_hits - before[i].cache_hits;
            let misses = after.cache_misses - before[i].cache_misses;
            HotReadCell {
                hotcache: if i == 1 { "on" } else { "off" },
                ops_per_sec: sorted[sorted.len() / 2],
                hit_rate: if hits + misses > 0 {
                    hits as f64 / (hits + misses) as f64
                } else {
                    0.0
                },
                cache_hits: hits,
                cache_misses: misses,
            }
        })
        .collect();
    cells.try_into().ok().expect("two cells")
}

/// Write `4 × maxmemory` worth of values through a capped engine and
/// report whether the footprint stayed bounded (lru) and whether growth
/// was refused (noeviction).
fn bounded_memory_cell(maxmemory: u64, seed: u64) -> BoundedCell {
    let writes = (4 * maxmemory).div_ceil(VALUE_BYTES as u64);
    let lru = KvStore::open(
        StoreConfig::in_memory()
            .shards(4)
            .max_memory(maxmemory)
            .eviction_policy(EvictionPolicy::SampledLru),
    )
    .expect("open lru store");
    for i in 0..writes {
        lru.set(&format!("w{seed}k{i:08}"), vec![b'y'; VALUE_BYTES])
            .expect("lru write never OOMs");
    }
    let stats = lru.stats();

    let strict = KvStore::open(
        StoreConfig::in_memory()
            .shards(4)
            .max_memory(maxmemory)
            .eviction_policy(EvictionPolicy::Noeviction),
    )
    .expect("open noeviction store");
    let mut oom_errors = 0u64;
    for i in 0..writes {
        match strict.set(&format!("w{seed}k{i:08}"), vec![b'y'; VALUE_BYTES]) {
            Ok(()) => {}
            Err(StoreError::Oom { .. }) => oom_errors += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    BoundedCell {
        maxmemory,
        bytes_written: writes * VALUE_BYTES as u64,
        mem_bytes: stats.db.mem_bytes,
        evicted_keys: stats.db.evicted_keys,
        bounded: stats.db.mem_bytes <= maxmemory,
        oom_errors_noeviction: oom_errors,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let records = arg_value(&args, "records").unwrap_or(8_000);
    // Rounds are timed against process CPU time, whose 10ms granularity
    // wants each round to run a few hundred milliseconds.
    let ops = arg_value(&args, "ops").unwrap_or(200_000);
    let seed = arg_value(&args, "seed").unwrap_or(42);
    let threads =
        arg_value(&args, "threads").unwrap_or_else(|| bench::host_cores() as u64) as usize;
    let maxmemory = arg_value(&args, "maxmemory").unwrap_or(64 * 1024);

    println!(
        "cache_scaling — zipfian GETs, records={records}, ops={ops}, threads={threads}, \
         cores={}",
        bench::host_cores()
    );

    let cells = hot_read_cells(records, ops, threads, seed);
    for cell in &cells {
        println!(
            "  hotcache={:<3}  {:>10.0} ops/s   hit rate {:>5.1}%   ({} hits / {} misses)",
            cell.hotcache,
            cell.ops_per_sec,
            cell.hit_rate * 100.0,
            cell.cache_hits,
            cell.cache_misses,
        );
    }
    let speedup = cells[1].ops_per_sec / cells[0].ops_per_sec;
    println!("  speedup on/off = {speedup:.2}x");

    let bounded = bounded_memory_cell(maxmemory, seed);
    println!(
        "  maxmemory={} bytes: wrote {} bytes, resident {} bytes (bounded={}), \
         {} evictions; noeviction refused {} writes with OOM",
        bounded.maxmemory,
        bounded.bytes_written,
        bounded.mem_bytes,
        bounded.bounded,
        bounded.evicted_keys,
        bounded.oom_errors_noeviction,
    );

    let json = render_json(records, ops, seed, threads, &cells, speedup, &bounded);
    std::fs::write("BENCH_cache_scaling.json", &json).expect("write BENCH_cache_scaling.json");
    println!("\nwrote BENCH_cache_scaling.json");
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    records: u64,
    ops: u64,
    seed: u64,
    threads: usize,
    cells: &[HotReadCell],
    speedup: f64,
    bounded: &BoundedCell,
) -> String {
    let mut out = bench::json_envelope("cache_scaling");
    out.push_str(&format!("  \"records\": {records},\n"));
    out.push_str(&format!("  \"operations\": {ops},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"value_bytes\": {VALUE_BYTES},\n"));
    out.push_str("  \"hot_read\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"hotcache\": \"{}\", \"ops_per_sec\": {:.1}, \"hit_rate\": {:.4}, \
             \"cache_hits\": {}, \"cache_misses\": {}}}{}\n",
            cell.hotcache,
            cell.ops_per_sec,
            cell.hit_rate,
            cell.cache_hits,
            cell.cache_misses,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"speedup_on_vs_off\": {speedup:.2},\n"));
    out.push_str(&format!(
        "  \"bounded_memory\": {{\"maxmemory\": {}, \"policy\": \"sampled-lru\", \
         \"bytes_written\": {}, \"mem_bytes\": {}, \"bounded\": {}, \"evicted_keys\": {}, \
         \"oom_errors_noeviction\": {}}}\n",
        bounded.maxmemory,
        bounded.bytes_written,
        bounded.mem_bytes,
        bounded.bounded,
        bounded.evicted_keys,
        bounded.oom_errors_noeviction,
    ));
    out.push_str("}\n");
    out
}
