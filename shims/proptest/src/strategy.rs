//! The [`Strategy`] trait and core combinators.

use std::marker::PhantomData;
use std::ops::Range;

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no shrinking: `generate` produces a final
/// value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map {
            source: self,
            map: f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.source.generate(rng))
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// A union over the given arms (must be non-empty).
    #[must_use]
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// Values of `T` drawn from the type's whole domain.
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T> std::fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Any")
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

/// The whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_range!(u8, u16, u32, u64, usize, i32, i64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

// ---------------------------------------------------------------------------
// String patterns

/// `&str` patterns act as string strategies. Only the `[class]{m,n}` shape
/// (one character class with a bounded repetition) is supported — exactly
/// what this workspace's tests use.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) =
            parse_pattern(self).unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
        let len = if min == max {
            min
        } else {
            rng.gen_range(min..=max)
        };
        (0..len)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect()
    }
}

fn parse_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let reps = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match reps.split_once(',') {
        Some((lo, hi)) => (lo.parse().ok()?, hi.parse().ok()?),
        None => {
            let n = reps.parse().ok()?;
            (n, n)
        }
    };
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            if lo > hi {
                return None;
            }
            alphabet.extend((lo..=hi).filter(char::is_ascii));
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() || min > max {
        None
    } else {
        Some((alphabet, min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy::tests")
    }

    #[test]
    fn pattern_strategy_respects_class_and_length() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = "[a-c9]{2,5}".generate(&mut rng);
            assert!((2..=5).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '9')), "{s:?}");
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let mut rng = rng();
        let s = "[a-]{8,8}".generate(&mut rng);
        assert!(s.chars().all(|c| c == 'a' || c == '-'));
    }

    #[test]
    fn union_uses_every_arm() {
        let mut rng = rng();
        let union = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[union.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = rng();
        let strat = (0u8..10, "[x]{1,1}").prop_map(|(n, s)| format!("{n}{s}"));
        let v = strat.generate(&mut rng);
        assert!(v.ends_with('x'));
    }
}
