//! Blocking client side of the TCP data path.
//!
//! [`TcpRemoteClient`] is the real-socket sibling of
//! `netsim::client::RemoteClient`: one connection, RESPframing both ways,
//! explicit pipelining. [`TcpRemoteAdapter`] lifts it to
//! [`SharedKvInterface`] over a pool of connections, so
//! [`ycsb::concurrent::ConcurrentDriver`] can drive a live server from
//! many client threads — the deployment shape the paper's YCSB + Redis
//! (+ Stunnel) measurements used.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use kvstore::object::Value;
use kvstore::serialize::{decode_value, encode_value, Reader};
use parking_lot::Mutex;
use resp::command::GdprRequest;
use resp::decode::Decoder;
use resp::encode::encode_frame;
use resp::Frame;
use ycsb::concurrent::SharedKvInterface;
use ycsb::WorkloadError;

use crate::{Result, ServerError};

/// Serialize a YCSB field map into the single opaque blob that travels as
/// a `SET` value (shared with the simulated path via `bench::adapters`).
#[must_use]
pub fn encode_fields(fields: &BTreeMap<String, Vec<u8>>) -> Vec<u8> {
    let mut out = Vec::new();
    encode_value(&mut out, &Value::Hash(fields.clone()));
    out
}

/// Decode a blob produced by [`encode_fields`].
#[must_use]
pub fn decode_fields(bytes: &[u8]) -> Option<BTreeMap<String, Vec<u8>>> {
    let mut reader = Reader::new(bytes);
    match decode_value(&mut reader, "ycsb record").ok()? {
        Value::Hash(map) => Some(map),
        _ => None,
    }
}

/// A blocking RESP2 client over one TCP connection.
#[derive(Debug)]
pub struct TcpRemoteClient {
    stream: TcpStream,
    decoder: Decoder,
    requests: u64,
}

impl TcpRemoteClient {
    /// Connect to a server.
    ///
    /// # Errors
    ///
    /// Returns the connect error.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpRemoteClient {
            stream,
            decoder: Decoder::new(),
            requests: 0,
        })
    }

    /// Connect with a timeout on both the connection attempt and later
    /// reads (a hung server then surfaces as an error instead of blocking
    /// the caller forever).
    ///
    /// # Errors
    ///
    /// Returns the connect error.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> Result<Self> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        Ok(TcpRemoteClient {
            stream,
            decoder: Decoder::new(),
            requests: 0,
        })
    }

    /// Number of requests sent so far.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Send a batch of frames without waiting for replies (explicit
    /// pipelining; pair with [`Self::read_replies`]).
    ///
    /// # Errors
    ///
    /// Returns write errors.
    pub fn send_batch(&mut self, frames: &[Frame]) -> Result<()> {
        let mut out = Vec::new();
        for frame in frames {
            out.extend_from_slice(&encode_frame(frame));
        }
        self.requests += frames.len() as u64;
        self.stream.write_all(&out)?;
        Ok(())
    }

    /// Read exactly `count` reply frames.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Closed`] if the connection ends early and
    /// protocol errors for malformed replies. Error *frames* are returned
    /// as values (a pipelined batch can mix successes and errors).
    pub fn read_replies(&mut self, count: usize) -> Result<Vec<Frame>> {
        let mut replies = Vec::with_capacity(count);
        let mut buf = [0u8; 16 * 1024];
        while replies.len() < count {
            while replies.len() < count {
                match self.decoder.next_frame()? {
                    Some(frame) => replies.push(frame),
                    None => break,
                }
            }
            if replies.len() == count {
                break;
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(ServerError::Closed);
            }
            self.decoder.feed(&buf[..n]);
        }
        Ok(replies)
    }

    /// Send a pipelined batch and collect all replies in order. A RESP
    /// error frame is returned in place, not raised.
    ///
    /// # Errors
    ///
    /// Returns transport and protocol errors.
    pub fn pipeline(&mut self, frames: &[Frame]) -> Result<Vec<Frame>> {
        self.send_batch(frames)?;
        self.read_replies(frames.len())
    }

    /// One request/reply round trip. A RESP error frame from the server is
    /// raised as [`ServerError::Server`].
    ///
    /// # Errors
    ///
    /// Returns transport, protocol and server errors.
    pub fn roundtrip(&mut self, request: &Frame) -> Result<Frame> {
        self.send_batch(std::slice::from_ref(request))?;
        let reply = self.read_replies(1)?.pop().ok_or(ServerError::Closed)?;
        match reply {
            Frame::Error(message) => Err(ServerError::Server(message)),
            other => Ok(other),
        }
    }

    // ---- plain Redis convenience wrappers --------------------------------

    /// `PING`.
    ///
    /// # Errors
    ///
    /// As for [`Self::roundtrip`].
    pub fn ping(&mut self) -> Result<()> {
        self.roundtrip(&Frame::command(["PING"])).map(|_| ())
    }

    /// `SET key value`.
    ///
    /// # Errors
    ///
    /// As for [`Self::roundtrip`].
    pub fn set(&mut self, key: &str, value: &[u8]) -> Result<()> {
        self.roundtrip(&Frame::command([
            b"SET".to_vec(),
            key.as_bytes().to_vec(),
            value.to_vec(),
        ]))
        .map(|_| ())
    }

    /// `GET key`.
    ///
    /// # Errors
    ///
    /// As for [`Self::roundtrip`].
    pub fn get(&mut self, key: &str) -> Result<Option<Vec<u8>>> {
        Ok(match self.roundtrip(&Frame::command(["GET", key]))? {
            Frame::Bulk(b) => Some(b),
            _ => None,
        })
    }

    /// `DEL key`; returns whether the key existed.
    ///
    /// # Errors
    ///
    /// As for [`Self::roundtrip`].
    pub fn delete(&mut self, key: &str) -> Result<bool> {
        Ok(matches!(
            self.roundtrip(&Frame::command(["DEL", key]))?,
            Frame::Integer(1)
        ))
    }

    /// `SCAN start count`; returns the matching keys.
    ///
    /// # Errors
    ///
    /// As for [`Self::roundtrip`].
    pub fn scan(&mut self, start: &str, count: usize) -> Result<Vec<String>> {
        match self.roundtrip(&Frame::command([
            "SCAN".to_string(),
            start.to_string(),
            count.to_string(),
        ]))? {
            Frame::Array(items) => Ok(items
                .into_iter()
                .filter_map(|f| match f {
                    Frame::Bulk(b) => Some(String::from_utf8_lossy(&b).into_owned()),
                    _ => None,
                })
                .collect()),
            _ => Ok(Vec::new()),
        }
    }

    /// `TICK` — run the server engine's background duty cycle; returns how
    /// many keys the expiry cycle removed.
    ///
    /// # Errors
    ///
    /// As for [`Self::roundtrip`].
    pub fn tick(&mut self) -> Result<u64> {
        match self.roundtrip(&Frame::command(["TICK"]))? {
            Frame::Integer(n) => Ok(n.max(0) as u64),
            _ => Ok(0),
        }
    }

    /// `SHUTDOWN` — ask the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// As for [`Self::roundtrip`].
    pub fn shutdown_server(&mut self) -> Result<()> {
        self.roundtrip(&Frame::command(["SHUTDOWN"])).map(|_| ())
    }

    // ---- GDPR surface ----------------------------------------------------

    /// Send one [`GdprRequest`] and return the raw reply frame.
    ///
    /// # Errors
    ///
    /// As for [`Self::roundtrip`].
    pub fn gdpr(&mut self, request: &GdprRequest) -> Result<Frame> {
        self.roundtrip(&request.to_frame())
    }

    /// `GDPR.AUTH actor purpose` — bind this connection to an access
    /// context.
    ///
    /// # Errors
    ///
    /// As for [`Self::roundtrip`].
    pub fn auth(&mut self, actor: &str, purpose: &str) -> Result<()> {
        self.gdpr(&GdprRequest::Auth {
            actor: actor.to_string(),
            purpose: purpose.to_string(),
        })
        .map(|_| ())
    }

    /// `GDPR.KEYSOF subject` — the subject's keys per the metadata index.
    ///
    /// # Errors
    ///
    /// As for [`Self::roundtrip`].
    pub fn keys_of_subject(&mut self, subject: &str) -> Result<Vec<String>> {
        match self.gdpr(&GdprRequest::KeysOf {
            subject: subject.to_string(),
        })? {
            Frame::Array(items) => Ok(items
                .into_iter()
                .filter_map(|f| match f {
                    Frame::Bulk(b) => Some(String::from_utf8_lossy(&b).into_owned()),
                    _ => None,
                })
                .collect()),
            _ => Ok(Vec::new()),
        }
    }

    /// `GDPR.ERASE subject` — returns how many keys were erased.
    ///
    /// # Errors
    ///
    /// As for [`Self::roundtrip`].
    pub fn erase_subject(&mut self, subject: &str) -> Result<u64> {
        match self.gdpr(&GdprRequest::Erase {
            subject: subject.to_string(),
        })? {
            Frame::Integer(n) => Ok(n.max(0) as u64),
            _ => Ok(0),
        }
    }

    /// `GDPR.EXPORT subject` — the Article 20 JSON export.
    ///
    /// # Errors
    ///
    /// As for [`Self::roundtrip`].
    pub fn export_subject(&mut self, subject: &str) -> Result<String> {
        match self.gdpr(&GdprRequest::Export {
            subject: subject.to_string(),
            cursor: None,
            count: None,
        })? {
            Frame::Bulk(json) => Ok(String::from_utf8_lossy(&json).into_owned()),
            other => Err(ServerError::Server(format!(
                "unexpected export reply {other:?}"
            ))),
        }
    }

    /// `GDPR.EXPORT subject CURSOR cursor [COUNT n]` — one page of the
    /// Article 20 export. Returns `(next_cursor, chunk)`; pass `"0"` as
    /// `cursor` for the first page and keep calling with the returned
    /// cursor until it is `"0"` again.
    ///
    /// # Errors
    ///
    /// As for [`Self::roundtrip`], plus a server error for an unexpected
    /// reply shape.
    pub fn export_subject_page(
        &mut self,
        subject: &str,
        cursor: &str,
        count: Option<u64>,
    ) -> Result<(String, String)> {
        match self.gdpr(&GdprRequest::Export {
            subject: subject.to_string(),
            cursor: Some(cursor.to_string()),
            count,
        })? {
            Frame::Array(items) => match <[Frame; 2]>::try_from(items) {
                Ok([Frame::Bulk(next), Frame::Bulk(chunk)]) => Ok((
                    String::from_utf8_lossy(&next).into_owned(),
                    String::from_utf8_lossy(&chunk).into_owned(),
                )),
                other => Err(ServerError::Server(format!(
                    "unexpected export page reply {other:?}"
                ))),
            },
            other => Err(ServerError::Server(format!(
                "unexpected export page reply {other:?}"
            ))),
        }
    }

    /// Drive a paged export to completion, concatenating every chunk —
    /// the result is byte-identical to [`Self::export_subject`] on a
    /// quiescent subject.
    ///
    /// # Errors
    ///
    /// As for [`Self::export_subject_page`].
    pub fn export_subject_paged(&mut self, subject: &str, count: u64) -> Result<String> {
        let mut out = String::new();
        let mut cursor = "0".to_string();
        loop {
            let (next, chunk) = self.export_subject_page(subject, &cursor, Some(count))?;
            out.push_str(&chunk);
            if next == "0" {
                return Ok(out);
            }
            cursor = next;
        }
    }
}

/// How a [`TcpRemoteAdapter`] authenticates the connections it opens.
#[derive(Debug, Clone)]
pub struct AdapterAuth {
    /// Actor presented in `GDPR.AUTH`.
    pub actor: String,
    /// Purpose presented in `GDPR.AUTH`.
    pub purpose: String,
}

/// [`SharedKvInterface`] over a pool of real TCP connections.
///
/// Each driver thread borrows a pooled connection per operation (creating
/// one on first use), so M client threads fan out over up to M sockets —
/// the same shape as M YCSB client threads against a live Redis.
#[derive(Debug)]
pub struct TcpRemoteAdapter {
    addr: SocketAddr,
    auth: Option<AdapterAuth>,
    connect_timeout: Duration,
    pool: Mutex<Vec<TcpRemoteClient>>,
}

impl TcpRemoteAdapter {
    /// Create an adapter for a plain (raw-engine) server.
    ///
    /// # Errors
    ///
    /// Returns address-resolution errors.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ServerError::Server("address resolves to nothing".to_string()))?;
        Ok(TcpRemoteAdapter {
            addr,
            auth: None,
            connect_timeout: Duration::from_secs(5),
            pool: Mutex::new(Vec::new()),
        })
    }

    /// Builder-style: authenticate every pooled connection with
    /// `GDPR.AUTH actor purpose` (required against a compliance server).
    #[must_use]
    pub fn with_auth(mut self, actor: &str, purpose: &str) -> Self {
        self.auth = Some(AdapterAuth {
            actor: actor.to_string(),
            purpose: purpose.to_string(),
        });
        self
    }

    /// The server address the adapter drives.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of idle pooled connections.
    #[must_use]
    pub fn pooled_connections(&self) -> usize {
        self.pool.lock().len()
    }

    fn checkout(&self) -> Result<TcpRemoteClient> {
        if let Some(client) = self.pool.lock().pop() {
            return Ok(client);
        }
        let mut client = TcpRemoteClient::connect_timeout(&self.addr, self.connect_timeout)?;
        if let Some(auth) = &self.auth {
            client.auth(&auth.actor, &auth.purpose)?;
        }
        Ok(client)
    }

    /// Run `f` on a pooled connection. The connection returns to the pool
    /// on success and on clean RESP error replies (the stream stays in
    /// sync — one reply per request); it is discarded only on transport
    /// or protocol errors, where the stream offset is suspect.
    fn with_conn<R>(&self, f: impl FnOnce(&mut TcpRemoteClient) -> Result<R>) -> Result<R> {
        let mut client = self.checkout()?;
        let result = f(&mut client);
        if matches!(&result, Ok(_) | Err(ServerError::Server(_))) {
            self.pool.lock().push(client);
        }
        result
    }
}

fn to_workload_error(e: ServerError) -> WorkloadError {
    WorkloadError::new(e)
}

impl SharedKvInterface for TcpRemoteAdapter {
    fn insert(&self, key: &str, fields: &BTreeMap<String, Vec<u8>>) -> ycsb::Result<()> {
        self.with_conn(|c| c.set(key, &encode_fields(fields)))
            .map_err(to_workload_error)
    }

    fn read(&self, key: &str) -> ycsb::Result<Option<BTreeMap<String, Vec<u8>>>> {
        let bytes = self.with_conn(|c| c.get(key)).map_err(to_workload_error)?;
        Ok(bytes.as_deref().and_then(decode_fields))
    }

    fn update(&self, key: &str, fields: &BTreeMap<String, Vec<u8>>) -> ycsb::Result<()> {
        // The single-blob encoding forces the same read-merge-write the
        // simulated remote adapter performs.
        self.with_conn(|c| {
            let mut merged = c
                .get(key)?
                .as_deref()
                .and_then(decode_fields)
                .unwrap_or_default();
            for (f, v) in fields {
                merged.insert(f.clone(), v.clone());
            }
            c.set(key, &encode_fields(&merged))
        })
        .map_err(to_workload_error)
    }

    fn scan(&self, start_key: &str, count: usize) -> ycsb::Result<Vec<String>> {
        self.with_conn(|c| c.scan(start_key, count))
            .map_err(to_workload_error)
    }

    fn tick(&self) -> ycsb::Result<()> {
        self.with_conn(|c| c.tick().map(|_| ()))
            .map_err(to_workload_error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::Dispatcher;
    use crate::tcp::{ServerConfig, TcpServer};
    use gdpr_core::acl::Grant;
    use gdpr_core::policy::CompliancePolicy;
    use gdpr_core::store::GdprStore;
    use kvstore::config::StoreConfig;
    use kvstore::store::KvStore;
    use std::sync::Arc;

    fn fields() -> BTreeMap<String, Vec<u8>> {
        let mut f = BTreeMap::new();
        f.insert("field0".to_string(), b"v0".to_vec());
        f.insert("field1".to_string(), b"v1".to_vec());
        f
    }

    #[test]
    fn field_blob_roundtrip() {
        let f = fields();
        assert_eq!(decode_fields(&encode_fields(&f)).unwrap(), f);
        assert!(decode_fields(b"garbage").is_none());
    }

    #[test]
    fn adapter_drives_a_raw_engine_server() {
        let server = TcpServer::bind(
            Dispatcher::kv(KvStore::open(StoreConfig::in_memory()).unwrap()),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .unwrap();
        let adapter = TcpRemoteAdapter::connect(server.local_addr()).unwrap();
        adapter.insert("user1", &fields()).unwrap();
        assert_eq!(adapter.read("user1").unwrap().unwrap().len(), 2);
        let mut update = BTreeMap::new();
        update.insert("field0".to_string(), b"new".to_vec());
        adapter.update("user1", &update).unwrap();
        assert_eq!(
            adapter.read("user1").unwrap().unwrap()["field0"],
            b"new".to_vec()
        );
        assert_eq!(adapter.scan("user", 10).unwrap(), vec!["user1"]);
        adapter.tick().unwrap();
        assert!(adapter.pooled_connections() >= 1);
        server.shutdown();
    }

    #[test]
    fn adapter_authenticates_against_a_compliance_server() {
        let store = Arc::new(GdprStore::open_in_memory(CompliancePolicy::eventual()).unwrap());
        store.grant(Grant::new("ycsb", "benchmarking"));
        let server = TcpServer::bind(
            Dispatcher::gdpr(Arc::clone(&store)),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .unwrap();
        let adapter = TcpRemoteAdapter::connect(server.local_addr())
            .unwrap()
            .with_auth("ycsb", "benchmarking");
        adapter.insert("user1", &fields()).unwrap();
        assert_eq!(adapter.read("user1").unwrap().unwrap().len(), 2);
        // Compliance really ran: the key is indexed under its subject.
        assert_eq!(store.keys_of_subject("user1").unwrap(), vec!["user1"]);
        // Without auth, operations are refused — and the clean RESP error
        // keeps the (still in-sync) connection in the pool rather than
        // forcing a reconnect per denial.
        let unauthenticated = TcpRemoteAdapter::connect(server.local_addr()).unwrap();
        assert!(unauthenticated.insert("user2", &fields()).is_err());
        assert_eq!(unauthenticated.pooled_connections(), 1);
        server.shutdown();
    }
}
