//! Hot-cache differential battery: the TinyLFU hot-read tier must be
//! invisible to every observer except the latency profile.
//!
//! * a proptest drives [`CountMinSketch`] against a plain `BTreeMap`
//!   count model with random touch/peek sequences across several aging
//!   windows — estimates must dominate the (halving-aged) true counts,
//!   and two sketches with the same seed must agree bit-for-bit;
//! * twin [`HotCache`] instances replay the same random access/invalidate
//!   history and must make identical hit/admit decisions (admission is
//!   deterministic for a fixed seed, by construction);
//! * two full `GdprStore`s — hot cache on vs off — replay the same random
//!   compliance history (puts, purpose-mismatched reads, deletes, subject
//!   erasures, retention-clock advances) and every single response must
//!   be identical, including denials and error shapes;
//! * over a live TCP server, on BOTH transports: a heated key must stop
//!   being served the instant its subject is erased, and the instant its
//!   retention deadline passes — even before any expiry cycle runs.

use std::collections::BTreeMap;
use std::sync::Arc;

use gdpr_server::client::TcpRemoteClient;
use gdpr_server::dispatch::Dispatcher;
use gdpr_server::tcp::{ServerConfig, TcpServer, TcpServerHandle, Transport};
use gdpr_storage::audit::sink::MemorySink;
use gdpr_storage::gdpr_core::acl::Grant;
use gdpr_storage::gdpr_core::hot_cache::{
    CountMinSketch, HotCache, HotCacheConfig, HotEntry, Probe,
};
use gdpr_storage::gdpr_core::metadata::PersonalMetadata;
use gdpr_storage::gdpr_core::policy::CompliancePolicy;
use gdpr_storage::gdpr_core::store::{AccessContext, GdprStore};
use gdpr_storage::kvstore::clock::SimClock;
use gdpr_storage::kvstore::config::StoreConfig;
use gdpr_storage::kvstore::shard::ShardRouter;
use gdpr_storage::resp::command::GdprRequest;
use gdpr_storage::resp::Frame;
use proptest::prelude::*;

const ACTOR: &str = "app";
const PURPOSE: &str = "billing";
const START: u64 = 1_000_000;

// ---------------------------------------------------------------------------
// Count-min sketch vs a halving-aware exact model
// ---------------------------------------------------------------------------

/// One step of a random sketch history.
#[derive(Debug, Clone)]
enum SketchOp {
    /// Record one access of key `k`.
    Touch(u8),
    /// Read key `k`'s estimate without counting the read.
    Peek(u8),
}

fn sketch_op() -> impl Strategy<Value = SketchOp> {
    prop_oneof![
        (0u8..32).prop_map(SketchOp::Touch),
        (0u8..32).prop_map(SketchOp::Peek),
    ]
}

fn sketch_key(k: u8) -> String {
    format!("key{k:02}")
}

// ---------------------------------------------------------------------------
// Twin hot caches under a shared random history
// ---------------------------------------------------------------------------

/// One step of a random cache history.
#[derive(Debug, Clone)]
enum CacheOp {
    /// Probe key `k`; on a miss, offer it for admission.
    Access(u8),
    /// Run key `k`'s mutation bracket (invalidate + epoch bump).
    Invalidate(u8),
}

fn cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (0u8..16).prop_map(CacheOp::Access),
        (0u8..16).prop_map(CacheOp::Invalidate),
    ]
}

/// Probe-then-admit one key; returns `(hit, admitted)` so two caches can
/// be compared decision-by-decision. A hit must return the value the
/// history admitted for that key.
fn cache_step(cache: &HotCache, key: &str) -> (bool, bool) {
    match cache.probe(key) {
        Probe::Hit(entry) => {
            assert_eq!(
                entry.value,
                key.as_bytes().to_vec(),
                "hit returned a foreign value"
            );
            (true, false)
        }
        Probe::Miss(token) => {
            let entry = HotEntry {
                value: key.as_bytes().to_vec(),
                meta: None,
            };
            (false, cache.admit(key, entry, token))
        }
    }
}

// ---------------------------------------------------------------------------
// Cache-on vs cache-off GdprStore differential
// ---------------------------------------------------------------------------

/// One step of a random compliance history, applied to both stores.
#[derive(Debug, Clone)]
enum StoreOp {
    /// `put` of key `k` for subject `s`; `for_billing` controls whether
    /// the metadata's purposes cover the reading context (a mismatch must
    /// deny identically on both stores); `ttl_ds` ≠ 0 attaches a
    /// retention deadline of that many deciseconds.
    Put {
        k: u8,
        s: u8,
        for_billing: bool,
        v: u8,
        ttl_ds: u16,
    },
    /// `get` of key `k` (hot path on one store, slow path on the other).
    Get(u8),
    /// `delete` of key `k`.
    Delete(u8),
    /// Article 17 erasure of subject `s`.
    Erase(u8),
    /// Advance the shared retention clock and run both expiry cycles.
    AdvanceAndTick(u16),
}

fn store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        ((0u8..12, 0u8..4, any::<bool>()), (any::<u8>(), 0u16..4_000)).prop_map(
            |((k, s, for_billing), (v, ttl_ds))| StoreOp::Put {
                k,
                s,
                for_billing,
                v,
                ttl_ds,
            }
        ),
        (0u8..12).prop_map(StoreOp::Get),
        (0u8..12).prop_map(StoreOp::Delete),
        (0u8..4).prop_map(StoreOp::Erase),
        (0u16..2_000).prop_map(StoreOp::AdvanceAndTick),
    ]
}

fn store_with_cache(enabled: bool, clock: SimClock) -> GdprStore {
    let mut store = GdprStore::open(
        CompliancePolicy::strict(),
        StoreConfig::in_memory()
            .aof_in_memory()
            .shards(2)
            .clock(clock),
        Box::new(MemorySink::new()),
    )
    .expect("open GDPR store");
    // A tiny segment capacity forces TinyLFU displacement decisions even
    // over the test's small key pool.
    store.set_hot_cache(
        HotCacheConfig::default()
            .enabled(enabled)
            .capacity_per_segment(4),
    );
    store.grant(Grant::new(ACTOR, PURPOSE));
    store
}

/// Canonical rendering of any store response: success payloads and error
/// shapes must match byte-for-byte across the cache-on/cache-off pair.
fn render<T: std::fmt::Debug, E: std::fmt::Debug>(result: &Result<T, E>) -> String {
    format!("{result:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Sketch estimates never undercount: after any touch/peek sequence,
    /// every key's estimate dominates its exact count as aged by the same
    /// halvings the sketch performed.
    #[test]
    fn sketch_estimates_dominate_the_halving_model(
        ops in proptest::collection::vec(sketch_op(), 1..400),
        seed in any::<u64>(),
    ) {
        // halve_every=96 forces several aging windows inside one case.
        let mut sketch = CountMinSketch::new(64, 96, seed);
        let mut model: BTreeMap<String, u32> = BTreeMap::new();
        let mut halvings = 0u64;
        for op in &ops {
            match op {
                SketchOp::Touch(k) => {
                    let key = sketch_key(*k);
                    let count = {
                        let count = model.entry(key.clone()).or_insert(0);
                        *count += 1;
                        *count
                    };
                    // increment() reports the pre-halving estimate, so it
                    // must dominate the pre-halving exact count.
                    let returned = sketch.increment(&key);
                    prop_assert!(
                        returned >= count,
                        "{key}: increment returned {returned} < exact count {count}"
                    );
                    if sketch.halvings() > halvings {
                        halvings = sketch.halvings();
                        for count in model.values_mut() {
                            *count /= 2;
                        }
                    }
                }
                SketchOp::Peek(k) => {
                    let key = sketch_key(*k);
                    let want = model.get(&key).copied().unwrap_or(0);
                    let got = sketch.estimate(&key);
                    prop_assert!(
                        got >= want,
                        "{key}: estimate {got} < aged exact count {want}"
                    );
                }
            }
        }
        for (key, want) in &model {
            let got = sketch.estimate(key);
            prop_assert!(got >= *want, "{key}: final estimate {got} < {want}");
        }
    }

    /// Two sketches with the same seed replaying the same stream agree on
    /// every returned estimate, every final estimate and the halving
    /// count — the determinism TinyLFU admission relies on.
    #[test]
    fn sketch_is_deterministic_for_a_fixed_seed(
        touches in proptest::collection::vec(0u8..32, 1..300),
        seed in any::<u64>(),
    ) {
        let mut a = CountMinSketch::new(128, 64, seed);
        let mut b = CountMinSketch::new(128, 64, seed);
        for k in &touches {
            let key = sketch_key(*k);
            prop_assert_eq!(a.increment(&key), b.increment(&key));
        }
        for k in 0u8..32 {
            let key = sketch_key(k);
            prop_assert_eq!(a.estimate(&key), b.estimate(&key));
        }
        prop_assert_eq!(a.halvings(), b.halvings());
        prop_assert_eq!(a.width(), b.width());
    }

    /// Twin caches replaying one history make identical hit/admit
    /// decisions and end with identical residency and counters.
    #[test]
    fn twin_caches_replay_identically(
        ops in proptest::collection::vec(cache_op(), 1..300),
    ) {
        let config = HotCacheConfig {
            enabled: true,
            capacity_per_segment: 2,
            sketch_width: 64,
            halve_every: 48,
            seed: 0xfeed,
        };
        let a = HotCache::new(config.clone(), ShardRouter::new(2, 7));
        let b = HotCache::new(config, ShardRouter::new(2, 7));
        for (i, op) in ops.iter().enumerate() {
            match op {
                CacheOp::Access(k) => {
                    let key = sketch_key(*k);
                    let left = cache_step(&a, &key);
                    let right = cache_step(&b, &key);
                    prop_assert!(
                        left == right,
                        "step {i}: {op:?} diverged: {left:?} vs {right:?}"
                    );
                }
                CacheOp::Invalidate(k) => {
                    let key = sketch_key(*k);
                    a.invalidate(&key);
                    b.invalidate(&key);
                }
            }
        }
        prop_assert_eq!(a.resident(), b.resident());
        prop_assert_eq!(a.stats(), b.stats());
    }

    /// The hot cache changes no observable response: a cache-on and a
    /// cache-off store replaying the same compliance history (sharing one
    /// retention clock) answer every operation identically — values,
    /// denials, erasure reports and expiry-cycle outcomes included.
    #[test]
    fn cache_on_and_cache_off_stores_answer_identically(
        ops in proptest::collection::vec(store_op(), 1..120),
    ) {
        let clock = SimClock::new(START);
        let on = store_with_cache(true, clock.clone());
        let off = store_with_cache(false, clock.clone());
        let ctx = AccessContext::new(ACTOR, PURPOSE);
        for (i, op) in ops.iter().enumerate() {
            let (left, right) = match op {
                StoreOp::Put { k, s, for_billing, v, ttl_ds } => {
                    let key = format!("rec{k:02}");
                    let mut meta = PersonalMetadata::new(&format!("subject-{s}"))
                        .with_purpose(if *for_billing { PURPOSE } else { "analytics" });
                    if *ttl_ds != 0 {
                        meta = meta.with_ttl_millis(u64::from(*ttl_ds) * 100);
                    }
                    let value = vec![*v; 16];
                    (
                        render(&on.put(&ctx, &key, value.clone(), meta.clone())),
                        render(&off.put(&ctx, &key, value, meta)),
                    )
                }
                StoreOp::Get(k) => {
                    let key = format!("rec{k:02}");
                    (render(&on.get(&ctx, &key)), render(&off.get(&ctx, &key)))
                }
                StoreOp::Delete(k) => {
                    let key = format!("rec{k:02}");
                    (render(&on.delete(&ctx, &key)), render(&off.delete(&ctx, &key)))
                }
                StoreOp::Erase(s) => {
                    let subject = format!("subject-{s}");
                    (
                        render(&on.right_to_erasure(&ctx, &subject)),
                        render(&off.right_to_erasure(&ctx, &subject)),
                    )
                }
                StoreOp::AdvanceAndTick(ms) => {
                    // One shared clock: a single advance moves both stores.
                    clock.advance_millis(u64::from(*ms));
                    (render(&on.tick()), render(&off.tick()))
                }
            };
            prop_assert!(
                left == right,
                "step {i}: {op:?} diverged:\n  on:  {left}\n  off: {right}"
            );
        }
        // The pair only proves anything if the cached store actually
        // cached: gets must have probed the hot tier on one side only.
        let (on_stats, off_stats) = (on.stats(), off.stats());
        prop_assert_eq!(off_stats.cache_hits, 0);
        prop_assert_eq!(off_stats.cache_misses, 0);
        if ops.iter().any(|op| matches!(op, StoreOp::Get(_))) {
            prop_assert!(
                on_stats.cache_hits + on_stats.cache_misses > 0,
                "cache-on store never probed the hot tier"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Erasure and retention over live TCP, on both transports
// ---------------------------------------------------------------------------

const BOTH: [Transport; 2] = [Transport::Reactor, Transport::Threads];

/// A live GDPR server with the hot cache force-enabled (regardless of
/// `GDPR_HOT_CACHE` in the environment) and a simulated retention clock.
fn hot_gdpr_server(transport: Transport, clock: SimClock) -> (TcpServerHandle, Arc<GdprStore>) {
    let mut store = GdprStore::open(
        CompliancePolicy::eventual(),
        StoreConfig::in_memory()
            .aof_in_memory()
            .shards(2)
            .clock(clock),
        Box::new(MemorySink::new()),
    )
    .expect("open GDPR store");
    store.set_hot_cache(HotCacheConfig::default().enabled(true));
    store.grant(Grant::new(ACTOR, PURPOSE));
    let store = Arc::new(store);
    let server = TcpServer::bind(
        Dispatcher::gdpr(Arc::clone(&store)),
        "127.0.0.1:0",
        ServerConfig {
            transport,
            ..ServerConfig::default()
        },
    )
    .expect("bind server");
    (server, store)
}

/// Put one record over the wire and heat it until the hot tier serves it.
fn put_and_heat(client: &mut TcpRemoteClient, store: &GdprStore, key: &str, ttl_ms: Option<u64>) {
    let reply = client
        .gdpr(&GdprRequest::Put {
            key: key.to_string(),
            subject: "alice".to_string(),
            purposes: vec![PURPOSE.to_string()],
            value: b"secret".to_vec(),
            ttl_ms,
        })
        .expect("put");
    assert_eq!(reply, Frame::Simple("OK".into()));
    for _ in 0..8 {
        assert_eq!(
            client.get(key).expect("get"),
            Some(b"secret".to_vec()),
            "heated read must return the stored value"
        );
    }
    assert!(
        store.stats().cache_hits >= 1,
        "the hot tier never served the heated key"
    );
}

#[test]
fn erased_subject_is_never_served_from_the_hot_tier_over_tcp() {
    for transport in BOTH {
        let (server, store) = hot_gdpr_server(transport, SimClock::new(START));
        let mut client = TcpRemoteClient::connect(server.local_addr()).unwrap();
        client.auth(ACTOR, PURPOSE).unwrap();
        put_and_heat(&mut client, &store, "pii:alice", None);
        assert!(client.erase_subject("alice").unwrap() >= 1, "{transport}");
        assert_eq!(
            client.get("pii:alice").unwrap(),
            None,
            "{transport}: erased value served from the hot tier"
        );
        drop(client);
        server.shutdown();
    }
}

#[test]
fn expired_keys_are_never_served_from_the_hot_tier_over_tcp() {
    for transport in BOTH {
        let clock = SimClock::new(START);
        let (server, store) = hot_gdpr_server(transport, clock.clone());
        let mut client = TcpRemoteClient::connect(server.local_addr()).unwrap();
        client.auth(ACTOR, PURPOSE).unwrap();
        put_and_heat(&mut client, &store, "pii:ttl", Some(5_000));
        clock.advance_millis(6_000);
        // No expiry cycle has run yet, so the entry may still sit in the
        // hot map — the hit path must notice the cached retention
        // deadline on its own.
        assert_eq!(
            client.get("pii:ttl").unwrap(),
            None,
            "{transport}: expired value served from the hot tier before the cycle"
        );
        client.tick().unwrap();
        assert_eq!(
            client.get("pii:ttl").unwrap(),
            None,
            "{transport}: expired value served after the expiry cycle"
        );
        drop(client);
        server.shutdown();
    }
}
