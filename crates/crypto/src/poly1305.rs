//! The Poly1305 one-time authenticator (RFC 8439 §2.5).
//!
//! Implemented with 26-bit limb arithmetic over 64-bit accumulators, the
//! classic portable formulation. Combined with ChaCha20 in
//! [`crate::aead::ChaCha20Poly1305`].

/// Length of the one-time key in bytes.
pub const KEY_LEN: usize = 32;
/// Length of the authentication tag in bytes.
pub const TAG_LEN: usize = 16;

/// Incremental Poly1305 MAC.
///
/// A Poly1305 key must only ever be used for a single message; the AEAD
/// construction derives a fresh key per nonce.
#[derive(Debug, Clone)]
pub struct Poly1305 {
    /// The clamped polynomial evaluation point `r`, split into 26-bit limbs.
    r: [u32; 5],
    /// The final addend `s`.
    s: [u32; 4],
    /// Accumulator limbs.
    h: [u32; 5],
    /// Partial block buffer.
    buffer: [u8; 16],
    buffer_len: usize,
}

impl Poly1305 {
    /// Create an authenticator from a 32-byte one-time key.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        // r is the first 16 bytes, clamped.
        let t0 = u32::from_le_bytes([key[0], key[1], key[2], key[3]]);
        let t1 = u32::from_le_bytes([key[4], key[5], key[6], key[7]]);
        let t2 = u32::from_le_bytes([key[8], key[9], key[10], key[11]]);
        let t3 = u32::from_le_bytes([key[12], key[13], key[14], key[15]]);

        let r = [
            t0 & 0x03ff_ffff,
            ((t0 >> 26) | (t1 << 6)) & 0x03ff_ff03,
            ((t1 >> 20) | (t2 << 12)) & 0x03ff_c0ff,
            ((t2 >> 14) | (t3 << 18)) & 0x03f0_3fff,
            (t3 >> 8) & 0x000f_ffff,
        ];

        let s = [
            u32::from_le_bytes([key[16], key[17], key[18], key[19]]),
            u32::from_le_bytes([key[20], key[21], key[22], key[23]]),
            u32::from_le_bytes([key[24], key[25], key[26], key[27]]),
            u32::from_le_bytes([key[28], key[29], key[30], key[31]]),
        ];

        Poly1305 {
            r,
            s,
            h: [0; 5],
            buffer: [0u8; 16],
            buffer_len: 0,
        }
    }

    /// One-shot MAC of `data` under `key`.
    #[must_use]
    pub fn mac(key: &[u8; KEY_LEN], data: &[u8]) -> [u8; TAG_LEN] {
        let mut p = Poly1305::new(key);
        p.update(data);
        p.finalize()
    }

    /// Verify `tag` over `data` in constant time.
    #[must_use]
    pub fn verify(key: &[u8; KEY_LEN], data: &[u8], tag: &[u8]) -> bool {
        crate::constant_time_eq(&Self::mac(key, data), tag)
    }

    /// Absorb message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buffer_len > 0 {
            let take = (16 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 16 {
                let block = self.buffer;
                self.process_block(&block, false);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 16 {
            let mut block = [0u8; 16];
            block.copy_from_slice(&data[..16]);
            self.process_block(&block, false);
            data = &data[16..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Process one 16-byte block. `partial` marks the final short block
    /// (which gets an explicit 0x01 terminator instead of the implicit
    /// 2^128 bit).
    fn process_block(&mut self, block: &[u8; 16], partial: bool) {
        let t0 = u32::from_le_bytes([block[0], block[1], block[2], block[3]]);
        let t1 = u32::from_le_bytes([block[4], block[5], block[6], block[7]]);
        let t2 = u32::from_le_bytes([block[8], block[9], block[10], block[11]]);
        let t3 = u32::from_le_bytes([block[12], block[13], block[14], block[15]]);

        let hibit: u32 = if partial { 0 } else { 1 << 24 };

        // h += m
        self.h[0] = self.h[0].wrapping_add(t0 & 0x03ff_ffff);
        self.h[1] = self.h[1].wrapping_add(((t0 >> 26) | (t1 << 6)) & 0x03ff_ffff);
        self.h[2] = self.h[2].wrapping_add(((t1 >> 20) | (t2 << 12)) & 0x03ff_ffff);
        self.h[3] = self.h[3].wrapping_add(((t2 >> 14) | (t3 << 18)) & 0x03ff_ffff);
        self.h[4] = self.h[4].wrapping_add((t3 >> 8) | hibit);

        // h *= r (schoolbook multiply with modular reduction folded in via
        // the 5*r trick for the limbs that wrap past 2^130).
        let [r0, r1, r2, r3, r4] = self.r.map(u64::from);
        let [h0, h1, h2, h3, h4] = self.h.map(u64::from);
        let s1 = r1 * 5;
        let s2 = r2 * 5;
        let s3 = r3 * 5;
        let s4 = r4 * 5;

        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        // Carry propagation.
        let mut c: u64;
        let mut d0 = d0;
        let mut d1 = d1;
        let mut d2 = d2;
        let mut d3 = d3;
        let mut d4 = d4;

        c = d0 >> 26;
        let h0 = (d0 & 0x03ff_ffff) as u32;
        d1 += c;
        c = d1 >> 26;
        let h1 = (d1 & 0x03ff_ffff) as u32;
        d2 += c;
        c = d2 >> 26;
        let h2 = (d2 & 0x03ff_ffff) as u32;
        d3 += c;
        c = d3 >> 26;
        let h3 = (d3 & 0x03ff_ffff) as u32;
        d4 += c;
        c = d4 >> 26;
        let h4 = (d4 & 0x03ff_ffff) as u32;
        d0 = u64::from(h0) + c * 5;
        c = d0 >> 26;
        let h0 = (d0 & 0x03ff_ffff) as u32;
        let h1 = h1 + c as u32;

        self.h = [h0, h1, h2, h3, h4];
    }

    /// Finish and return the 16-byte tag.
    #[must_use]
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buffer_len > 0 {
            // Pad the final partial block with a 0x01 terminator and zeros.
            let mut block = [0u8; 16];
            block[..self.buffer_len].copy_from_slice(&self.buffer[..self.buffer_len]);
            block[self.buffer_len] = 1;
            self.process_block(&block, true);
        }

        // Full carry.
        let [mut h0, mut h1, mut h2, mut h3, mut h4] = self.h;
        let mut c: u32;
        c = h1 >> 26;
        h1 &= 0x03ff_ffff;
        h2 += c;
        c = h2 >> 26;
        h2 &= 0x03ff_ffff;
        h3 += c;
        c = h3 >> 26;
        h3 &= 0x03ff_ffff;
        h4 += c;
        c = h4 >> 26;
        h4 &= 0x03ff_ffff;
        h0 += c * 5;
        c = h0 >> 26;
        h0 &= 0x03ff_ffff;
        h1 += c;

        // Compute h + -p (i.e. h - (2^130 - 5)) to check whether h >= p.
        let mut g0 = h0.wrapping_add(5);
        c = g0 >> 26;
        g0 &= 0x03ff_ffff;
        let mut g1 = h1.wrapping_add(c);
        c = g1 >> 26;
        g1 &= 0x03ff_ffff;
        let mut g2 = h2.wrapping_add(c);
        c = g2 >> 26;
        g2 &= 0x03ff_ffff;
        let mut g3 = h3.wrapping_add(c);
        c = g3 >> 26;
        g3 &= 0x03ff_ffff;
        let g4 = h4.wrapping_add(c).wrapping_sub(1 << 26);

        // Select h if h < p, else g.
        let mask = (g4 >> 31).wrapping_sub(1); // all-ones if g4 >= 0 (h >= p)
        let h0 = (h0 & !mask) | (g0 & mask);
        let h1 = (h1 & !mask) | (g1 & mask);
        let h2 = (h2 & !mask) | (g2 & mask);
        let h3 = (h3 & !mask) | (g3 & mask);
        let h4 = (h4 & !mask) | (g4 & mask);

        // Serialize h to 128 bits little-endian.
        let f0 = (h0 | (h1 << 26)) as u64;
        let f1 = ((h1 >> 6) | (h2 << 20)) as u64;
        let f2 = ((h2 >> 12) | (h3 << 14)) as u64;
        let f3 = ((h3 >> 18) | (h4 << 8)) as u64;

        // Add s with carry across 32-bit words.
        let mut acc = f0 + u64::from(self.s[0]);
        let w0 = acc as u32;
        acc = f1 + u64::from(self.s[1]) + (acc >> 32);
        let w1 = acc as u32;
        acc = f2 + u64::from(self.s[2]) + (acc >> 32);
        let w2 = acc as u32;
        acc = f3 + u64::from(self.s[3]) + (acc >> 32);
        let w3 = acc as u32;

        let mut tag = [0u8; TAG_LEN];
        tag[0..4].copy_from_slice(&w0.to_le_bytes());
        tag[4..8].copy_from_slice(&w1.to_le_bytes());
        tag[8..12].copy_from_slice(&w2.to_le_bytes());
        tag[12..16].copy_from_slice(&w3.to_le_bytes());
        tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    fn rfc_key() -> [u8; 32] {
        let hex = "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b";
        let mut key = [0u8; 32];
        for i in 0..32 {
            key[i] = u8::from_str_radix(&hex[i * 2..i * 2 + 2], 16).unwrap();
        }
        key
    }

    /// RFC 8439 §2.5.2 test vector.
    #[test]
    fn rfc8439_vector() {
        let tag = Poly1305::mac(&rfc_key(), b"Cryptographic Forum Research Group");
        assert_eq!(to_hex(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let key = rfc_key();
        let tag = Poly1305::mac(&key, b"hello");
        assert!(Poly1305::verify(&key, b"hello", &tag));
        assert!(!Poly1305::verify(&key, b"hellp", &tag));
        let mut bad = tag;
        bad[15] ^= 0x80;
        assert!(!Poly1305::verify(&key, b"hello", &bad));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = rfc_key();
        let data: Vec<u8> = (0..200u8).collect();
        for split in [0usize, 1, 15, 16, 17, 31, 32, 100, 200] {
            let mut p = Poly1305::new(&key);
            p.update(&data[..split]);
            p.update(&data[split..]);
            assert_eq!(p.finalize(), Poly1305::mac(&key, &data), "split {split}");
        }
    }

    #[test]
    fn empty_message_has_tag_s() {
        // With no blocks processed, the tag is simply s.
        let mut key = [0u8; 32];
        key[16..].copy_from_slice(&[0xabu8; 16]);
        let tag = Poly1305::mac(&key, b"");
        assert_eq!(tag, [0xabu8; 16]);
    }

    #[test]
    fn exact_block_boundary() {
        let key = rfc_key();
        let a = Poly1305::mac(&key, &[7u8; 16]);
        let b = Poly1305::mac(&key, &[7u8; 32]);
        assert_ne!(a, b);
    }
}
