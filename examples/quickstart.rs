//! Quickstart: store personal data under the strict GDPR policy, exercise
//! the compliance checks, and print the Table 1-style self-assessment.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::error::Error;
use std::time::Duration;

use gdpr_storage::gdpr_core::acl::Grant;
use gdpr_storage::gdpr_core::compliance::assess;
use gdpr_storage::gdpr_core::metadata::{PersonalMetadata, Region};
use gdpr_storage::gdpr_core::policy::CompliancePolicy;
use gdpr_storage::gdpr_core::store::{AccessContext, GdprStore};

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Open a store enforcing the strict end of the compliance spectrum:
    //    every feature on, every GDPR task performed in real time.
    let store = GdprStore::open_in_memory(CompliancePolicy::strict())?;
    println!(
        "opened store with policy {:?} (strict: {})",
        store.policy().name,
        store.policy().is_strict()
    );

    // 2. Access is closed by default (Article 25). Grant the web frontend
    //    the right to process data for account management.
    store.grant(Grant::new("web-frontend", "account-management"));
    let ctx = AccessContext::new("web-frontend", "account-management");

    // 3. Personal data always carries metadata: whose it is, why it may be
    //    processed, how long it may be kept and where it lives.
    let metadata = PersonalMetadata::new("alice")
        .with_purpose("account-management")
        .with_recipient("email-delivery-provider")
        .with_ttl_millis(Duration::from_secs(30 * 24 * 3600).as_millis() as u64)
        .with_location(Region::Eu);
    store.put(
        &ctx,
        "user:alice:email",
        b"alice@example.com".to_vec(),
        metadata,
    )?;
    println!("stored user:alice:email with a 30-day retention period");

    // 4. Reads are checked against the purpose whitelist and audited.
    let value = store.get(&ctx, "user:alice:email")?;
    println!(
        "read back: {:?}",
        value.map(|v| String::from_utf8_lossy(&v).into_owned())
    );

    // 5. A different purpose is refused — purpose limitation (Article 5).
    store.grant(Grant::new("ad-service", "marketing"));
    let marketing = AccessContext::new("ad-service", "marketing");
    match store.get(&marketing, "user:alice:email") {
        Err(e) => println!("marketing read refused as expected: {e}"),
        Ok(_) => println!("unexpected: marketing read allowed"),
    }

    // 6. The right to be forgotten (Article 17) erases everything about the
    //    subject, including journal tombstones under the strict policy.
    let report = store.right_to_erasure(&ctx, "alice")?;
    println!(
        "erasure: {} keys removed, {} journal records scrubbed, real-time: {}",
        report.erased_keys.len(),
        report.journal_records_scrubbed,
        report.completed_in_real_time
    );

    // 7. Everything that happened above is evidence (Article 30).
    let trail = store.audit_trail().unwrap_or_default();
    println!(
        "audit trail holds {} records; chain tip {:?}",
        trail.len(),
        store.audit_chain_tip()
    );

    // 8. Print the compliance self-assessment (the paper's Table 1).
    println!("\n{}", assess(store.policy()).render_table());
    Ok(())
}
