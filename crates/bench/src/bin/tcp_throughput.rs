//! TCP throughput sweep: YCSB-A-style mixed workload driven over *real*
//! sockets against a live `gdpr-server`, varying the client-thread count,
//! to measure what the networked deployment shape (the one the paper's
//! YCSB + Redis measurements used) costs on top of the embedded path.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin tcp_throughput \
//!     [records=N] [ops=N] [seed=N] [shards=N] [maxthreads=N] [policy=0|1|2]
//! ```
//!
//! `policy` selects 0 = raw engine (no compliance), 1 = eventual
//! (default), 2 = strict. Emits a human table and writes
//! `BENCH_tcp_throughput.json` into the current directory. As with
//! `shard_scaling`, `host_cores` is recorded: on a single-core container
//! the sweep demonstrates parity, not speedup.

use std::sync::Arc;

use bench::arg_value;
use gdpr_core::acl::Grant;
use gdpr_core::policy::CompliancePolicy;
use gdpr_core::store::GdprStore;
use gdpr_server::client::TcpRemoteAdapter;
use gdpr_server::dispatch::Dispatcher;
use gdpr_server::tcp::{ServerConfig, TcpServer, TcpServerHandle};
use kvstore::config::StoreConfig;
use kvstore::store::KvStore;
use ycsb::concurrent::ConcurrentDriver;
use ycsb::stats::RunReport;
use ycsb::workload::WorkloadSpec;

struct Cell {
    threads: usize,
    load: RunReport,
    run: RunReport,
}

const ACTOR: &str = "ycsb";
const PURPOSE: &str = "benchmarking";

fn start_server(policy_id: u64, shards: usize) -> TcpServerHandle {
    let config = StoreConfig::in_memory().aof_in_memory().shards(shards);
    let dispatcher = if policy_id == 0 {
        Dispatcher::kv(KvStore::open(config).expect("open engine"))
    } else {
        let policy = if policy_id >= 2 {
            CompliancePolicy::strict()
        } else {
            CompliancePolicy::eventual()
        };
        let store = GdprStore::open(policy, config, Box::new(audit::sink::NullSink::new()))
            .expect("open GDPR store");
        store.grant(Grant::new(ACTOR, PURPOSE));
        Dispatcher::gdpr(Arc::new(store))
    };
    let server_config = ServerConfig {
        max_connections: 256,
        ..ServerConfig::default()
    };
    TcpServer::bind(dispatcher, "127.0.0.1:0", server_config).expect("bind server")
}

fn sweep_axis(max: u64) -> Vec<usize> {
    let mut axis = Vec::new();
    let mut v = 1usize;
    while v as u64 <= max.max(1) {
        axis.push(v);
        v *= 2;
    }
    axis
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let records = arg_value(&args, "records").unwrap_or(4_000);
    let ops = arg_value(&args, "ops").unwrap_or(12_000);
    let seed = arg_value(&args, "seed").unwrap_or(42);
    let shards = arg_value(&args, "shards").unwrap_or(4) as usize;
    let max_threads = arg_value(&args, "maxthreads").unwrap_or(8);
    let policy_id = arg_value(&args, "policy").unwrap_or(1);
    let policy_name = match policy_id {
        0 => "none",
        2 => "strict",
        _ => "eventual",
    };

    let cores = bench::host_cores();
    println!(
        "tcp_throughput — YCSB-A mix over real sockets, policy={policy_name}, \
         records={records}, ops={ops}, shards={shards}, cores={cores}"
    );
    if cores == 1 {
        println!("  note: single-core host — expect parity, not speedup, across thread counts");
    }

    let mut cells = Vec::new();
    for &threads in &sweep_axis(max_threads) {
        // A fresh server per cell keeps the cells independent.
        let server = start_server(policy_id, shards);
        let adapter = TcpRemoteAdapter::connect(server.local_addr())
            .expect("connect adapter")
            .with_auth(ACTOR, PURPOSE);
        let driver = ConcurrentDriver::new(WorkloadSpec::workload_a(records, ops), threads, seed);
        let load = driver.run_load(&adapter).expect("load phase");
        let run = driver
            .run_transactions(&adapter)
            .expect("transaction phase");
        println!(
            "  threads={threads:<3}  load {:>10.0} ops/s   run {:>10.0} ops/s   p99 {:>6} µs   errors {}",
            load.throughput(),
            run.throughput(),
            run.latency.percentile_micros(0.99),
            load.errors + run.errors,
        );
        server.shutdown();
        cells.push(Cell { threads, load, run });
    }

    let json = render_json(policy_name, records, ops, seed, shards, &cells);
    std::fs::write("BENCH_tcp_throughput.json", &json).expect("write BENCH_tcp_throughput.json");
    println!("\nwrote BENCH_tcp_throughput.json ({} cells)", cells.len());
}

fn render_json(
    policy: &str,
    records: u64,
    ops: u64,
    seed: u64,
    shards: usize,
    cells: &[Cell],
) -> String {
    let mut out = bench::json_envelope("tcp_throughput");
    out.push_str("  \"workload\": \"A\",\n");
    out.push_str("  \"transport\": \"tcp-loopback\",\n");
    out.push_str(&format!("  \"policy\": \"{policy}\",\n"));
    out.push_str(&format!("  \"records\": {records},\n"));
    out.push_str(&format!("  \"operations\": {ops},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"shards\": {shards},\n"));
    out.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"load_ops_per_sec\": {:.1}, \"run_ops_per_sec\": {:.1}, \"run_p99_micros\": {}, \"errors\": {}}}{}\n",
            cell.threads,
            cell.load.throughput(),
            cell.run.throughput(),
            cell.run.latency.percentile_micros(0.99),
            cell.load.errors + cell.run.errors,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
