//! Ablation: per-operation cost of the access-control check (Articles
//! 25/32) as the number of installed grants grows.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdpr_core::acl::{AccessController, Grant};

fn controller_with(grants: usize) -> AccessController {
    let mut acl = AccessController::new();
    for i in 0..grants {
        acl.grant(Grant::new(
            &format!("service-{}", i % 50),
            &format!("purpose-{}", i % 20),
        ));
    }
    // The grant the benchmark will look for.
    acl.grant(Grant::new("hot-service", "billing"));
    acl
}

fn bench_acl(c: &mut Criterion) {
    let mut group = c.benchmark_group("acl");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    for &grants in &[10usize, 1_000, 10_000] {
        group.bench_with_input(
            BenchmarkId::new("check_allowed", grants),
            &grants,
            |b, &grants| {
                let acl = controller_with(grants);
                b.iter(|| acl.check("hot-service", "billing", "alice", 0));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("check_denied", grants),
            &grants,
            |b, &grants| {
                let acl = controller_with(grants);
                b.iter(|| acl.check("unknown-service", "exfiltration", "alice", 0));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_acl);
criterion_main!(benches);
