//! A write-only driver for crash-replay smoke tests: connects to a running
//! `gdpr-server`, authenticates, writes a deterministic batch of keys, and
//! exits **without** sending `SHUTDOWN` — so a harness can `kill -9` the
//! server afterwards knowing exactly which writes were acknowledged (under
//! `fsync=always` every acknowledged write must survive the replay).
//!
//! ```text
//! cargo run --release --example crash_writer -- 127.0.0.1:16381 [count]
//! cargo run --release --example crash_writer -- 127.0.0.1:16382 [count] verify
//! ```
//!
//! Prints `crash_writer: N writes acknowledged` on success. In `verify`
//! mode it reads the batch back instead (against a server reopened on the
//! crashed journal) and fails unless every key (`cw000`, `cw001`, …, each
//! holding its own index as ASCII) replayed intact.

use std::error::Error;

use gdpr_storage::gdpr_server::client::TcpRemoteClient;
use gdpr_storage::resp::command::GdprRequest;

fn main() -> Result<(), Box<dyn Error>> {
    let addr = std::env::args()
        .nth(1)
        .ok_or("usage: crash_writer <addr> [count]")?;
    let count: usize = std::env::args()
        .nth(2)
        .map(|c| c.parse())
        .transpose()?
        .unwrap_or(50);

    let verify = std::env::args().nth(3).as_deref() == Some("verify");

    let mut client = TcpRemoteClient::connect(addr.as_str())?;
    client.ping()?;
    client.gdpr(&GdprRequest::Grant {
        actor: "crash-writer".into(),
        purpose: "smoke-testing".into(),
    })?;
    client.auth("crash-writer", "smoke-testing")?;

    if verify {
        for i in 0..count {
            let value = client.get(&format!("cw{i:03}"))?;
            if value.as_deref() != Some(format!("{i}").as_bytes()) {
                return Err(format!("key cw{i:03} did not replay: {value:?}").into());
            }
        }
        println!("crash_writer: {count} keys verified");
        return Ok(());
    }

    for i in 0..count {
        client.set(&format!("cw{i:03}"), format!("{i}").as_bytes())?;
    }
    // Read one key back so the acknowledgements are known to have been
    // processed in order, then drop the connection with the server alive.
    let back = client.get("cw000")?;
    assert_eq!(back.as_deref(), Some(b"0".as_ref()), "readback failed");
    println!("crash_writer: {count} writes acknowledged");
    Ok(())
}
