//! Shared plumbing for the benchmark harness: store adapters that let the
//! YCSB driver run against every configuration of the reproduction, and
//! the experiment runners behind the `fig1_*` / `fig2_*` binaries.
//!
//! Every table and figure of the paper maps to a binary in `src/bin/` (see
//! DESIGN.md §4); the Criterion benches under `benches/` cover the same
//! code paths at micro scale plus the ablations listed in DESIGN.md §5.

pub mod adapters;
pub mod fig1;
pub mod fig2;

use std::path::PathBuf;

/// A scratch directory for benchmark artefacts (AOF files, audit trails).
/// Created under the system temp dir and namespaced by process id so
/// concurrent runs do not collide.
#[must_use]
pub fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gdpr-bench-{}-{label}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Remove a scratch directory, ignoring errors (best-effort cleanup).
pub fn cleanup_scratch(dir: &std::path::Path) {
    let _ = std::fs::remove_dir_all(dir);
}

/// Schema version stamped into every `BENCH_*.json` envelope. Bump when
/// the shared envelope fields change shape so downstream tooling can
/// dispatch on it.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Logical cores on the host (1 when undetectable). Recorded in every
/// benchmark artefact: scaling sweeps are meaningless without knowing
/// how much hardware parallelism the run actually had.
#[must_use]
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// CPU seconds this process has consumed (user + system), or `None` when
/// the platform does not expose `/proc/self/stat`.
///
/// On shared hosts wall-clock throughput is dominated by stolen CPU — a
/// noisy neighbour can halve a round's rate without the code under test
/// changing at all. Process CPU time only accrues while the benchmark is
/// actually running, so ops per CPU-second is stable where ops per
/// wall-second is not.
#[must_use]
pub fn process_cpu_seconds() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Field 2 (comm) may contain spaces; everything after the closing
    // paren is fixed-position. utime and stime are fields 14 and 15
    // (1-based), i.e. indices 11 and 12 after the paren.
    let rest = stat.rsplit_once(')')?.1;
    let mut fields = rest.split_ascii_whitespace();
    let utime: f64 = fields.nth(11)?.parse().ok()?;
    let stime: f64 = fields.next()?.parse().ok()?;
    // USER_HZ is 100 on every Linux configuration Rust targets.
    Some((utime + stime) / 100.0)
}

/// Opening lines of a `BENCH_*.json` document: the common envelope every
/// harness binary shares (`schema_version`, `bench` name, `host_cores`).
/// Callers append their bench-specific fields and the `cells` array, then
/// close the object.
#[must_use]
pub fn json_envelope(bench: &str) -> String {
    format!(
        "{{\n  \"schema_version\": {BENCH_SCHEMA_VERSION},\n  \"bench\": \"{bench}\",\n  \
         \"host_cores\": {},\n",
        host_cores()
    )
}

/// Parse `key=value` style command-line overrides used by the harness
/// binaries (e.g. `records=100000 ops=200000`).
#[must_use]
pub fn arg_value(args: &[String], key: &str) -> Option<u64> {
    args.iter().find_map(|a| {
        a.strip_prefix(&format!("{key}="))
            .and_then(|v| v.parse::<u64>().ok())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_dir_is_created_and_cleaned() {
        let dir = scratch_dir("unit");
        assert!(dir.exists());
        cleanup_scratch(&dir);
        assert!(!dir.exists());
    }

    #[test]
    fn json_envelope_carries_shared_fields() {
        let head = json_envelope("unit_test");
        assert!(head.starts_with("{\n"));
        assert!(head.contains(&format!("\"schema_version\": {BENCH_SCHEMA_VERSION}")));
        assert!(head.contains("\"bench\": \"unit_test\""));
        assert!(head.contains(&format!("\"host_cores\": {}", host_cores())));
        assert!(head.ends_with(",\n"), "caller appends more fields");
    }

    #[test]
    fn arg_value_parses_overrides() {
        let args: Vec<String> = vec![
            "records=1000".into(),
            "ops=5".into(),
            "junk".into(),
            "bad=x".into(),
        ];
        assert_eq!(arg_value(&args, "records"), Some(1000));
        assert_eq!(arg_value(&args, "ops"), Some(5));
        assert_eq!(arg_value(&args, "missing"), None);
        assert_eq!(arg_value(&args, "bad"), None);
    }
}
