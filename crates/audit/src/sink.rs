//! Audit sinks: where trail lines are persisted.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::Result;

/// Counters describing sink activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkStats {
    /// Lines written to the sink.
    pub lines: u64,
    /// Bytes written to the sink.
    pub bytes: u64,
    /// Durable sync operations performed.
    pub syncs: u64,
}

/// A destination for audit-trail lines.
pub trait AuditSink: Send + std::fmt::Debug {
    /// Persist one line (without trailing newline; the sink adds it).
    fn write_line(&mut self, line: &str) -> Result<()>;

    /// Force previously written lines to durable storage.
    fn sync(&mut self) -> Result<()>;

    /// Activity counters.
    fn stats(&self) -> SinkStats;
}

/// A sink that discards everything (the "monitoring off" baseline).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink {
    stats: SinkStats,
}

impl NullSink {
    /// Create a null sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl AuditSink for NullSink {
    fn write_line(&mut self, line: &str) -> Result<()> {
        self.stats.lines += 1;
        self.stats.bytes += line.len() as u64 + 1;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.stats.syncs += 1;
        Ok(())
    }

    fn stats(&self) -> SinkStats {
        self.stats
    }
}

/// An in-memory sink, shareable so tests can read back what was written.
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
    stats: SinkStats,
}

impl MemorySink {
    /// Create an empty in-memory sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A handle to the same underlying line buffer.
    #[must_use]
    pub fn share(&self) -> MemorySink {
        MemorySink {
            lines: Arc::clone(&self.lines),
            stats: SinkStats::default(),
        }
    }

    /// A copy of every line written so far.
    #[must_use]
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().clone()
    }
}

impl AuditSink for MemorySink {
    fn write_line(&mut self, line: &str) -> Result<()> {
        self.lines.lock().push(line.to_string());
        self.stats.lines += 1;
        self.stats.bytes += line.len() as u64 + 1;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.stats.syncs += 1;
        Ok(())
    }

    fn stats(&self) -> SinkStats {
        self.stats
    }
}

/// An append-only file sink with explicit fsync.
#[derive(Debug)]
pub struct FileSink {
    path: PathBuf,
    file: File,
    stats: SinkStats,
}

impl FileSink {
    /// Open (creating if necessary) a trail file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from opening the file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(FileSink {
            path,
            file,
            stats: SinkStats::default(),
        })
    }

    /// Path of the trail file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl AuditSink for FileSink {
    fn write_line(&mut self, line: &str) -> Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.stats.lines += 1;
        self.stats.bytes += line.len() as u64 + 1;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        self.stats.syncs += 1;
        Ok(())
    }

    fn stats(&self) -> SinkStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_counts_but_stores_nothing() {
        let mut s = NullSink::new();
        s.write_line("one").unwrap();
        s.write_line("two").unwrap();
        s.sync().unwrap();
        assert_eq!(s.stats().lines, 2);
        assert_eq!(s.stats().syncs, 1);
        assert!(s.stats().bytes > 0);
    }

    #[test]
    fn memory_sink_roundtrip_and_share() {
        let mut s = MemorySink::new();
        let view = s.share();
        s.write_line("alpha").unwrap();
        s.write_line("beta").unwrap();
        assert_eq!(view.lines(), vec!["alpha", "beta"]);
        assert_eq!(s.stats().lines, 2);
    }

    #[test]
    fn file_sink_appends_lines() {
        let dir = std::env::temp_dir().join(format!("audit-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trail.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = FileSink::open(&path).unwrap();
            s.write_line("first").unwrap();
            s.write_line("second").unwrap();
            s.sync().unwrap();
            assert_eq!(s.path(), path.as_path());
            assert_eq!(s.stats().lines, 2);
        }
        // Re-open and append more.
        {
            let mut s = FileSink::open(&path).unwrap();
            s.write_line("third").unwrap();
            s.sync().unwrap();
        }
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "first\nsecond\nthird\n");
        let _ = std::fs::remove_file(&path);
    }
}
