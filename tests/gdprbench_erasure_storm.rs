//! Erasure-storm regression (satellite of the GDPRbench suite).
//!
//! A regulator-triggered mass-erasure sweep (`GDPR.ERASE` per subject, the
//! Art. 17 storm) races concurrent processor reads. Two invariants:
//!
//! * **no resurrection**: once a subject's erasure has *returned*, no
//!   subsequent purpose-checked read may serve that subject's data;
//! * **no orphans**: after the storm, every subject-to-keys index posting
//!   is gone and the keyspace (values *and* metadata shadow records) is
//!   empty — an erased subject must not leave index litter behind.
//!
//! Two variants: erasures issued in-process, and erasures issued over live
//! TCP against the same store the readers hit in-process (the cross-layer
//! case where a stale dispatcher-side cache or buffer could resurrect
//! data).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use gdpr_storage::gdpr_core::acl::Grant;
use gdpr_storage::gdpr_core::metadata::PersonalMetadata;
use gdpr_storage::gdpr_core::policy::CompliancePolicy;
use gdpr_storage::gdpr_core::store::{AccessContext, GdprStore};
use gdpr_storage::gdpr_server::client::TcpRemoteClient;
use gdpr_storage::gdpr_server::dispatch::Dispatcher;
use gdpr_storage::gdpr_server::tcp::{ServerConfig, TcpServer};
use gdpr_storage::gdprbench::ops::{key_name, subject_name};
use gdpr_storage::gdprbench::spec::{LOAD_ACTOR, LOAD_PURPOSE};
use gdpr_storage::kvstore::config::StoreConfig;
use gdpr_storage::resp::command::GdprRequest;
use gdpr_storage::resp::Frame;

const SUBJECTS: u64 = 32;
const KEYS_PER_SUBJECT: u64 = 8;
const READERS: usize = 3;

fn storm_store() -> Arc<GdprStore> {
    let store = GdprStore::open(
        CompliancePolicy::eventual(),
        StoreConfig::in_memory().aof_in_memory().shards(4),
        Box::new(gdpr_storage::audit::sink::NullSink::new()),
    )
    .expect("store opens");
    store.grant(Grant::new(LOAD_ACTOR, LOAD_PURPOSE));
    store.grant(Grant::new("processor", "processing"));
    store.grant(Grant::new("regulator", "audit"));
    let loader = AccessContext::new(LOAD_ACTOR, LOAD_PURPOSE);
    for s in 0..SUBJECTS {
        for k in 0..KEYS_PER_SUBJECT {
            let mut meta = PersonalMetadata::new(&subject_name(s));
            meta.purposes.insert(LOAD_PURPOSE.to_string());
            // Every record is processor-readable, so a post-erasure hit
            // cannot hide behind a purpose denial.
            meta.purposes.insert("processing".to_string());
            store
                .put(&loader, &key_name(s, k), b"storm-payload".to_vec(), meta)
                .expect("load put");
        }
    }
    Arc::new(store)
}

/// Run `erase` (which must only flip each subject's flag *after* that
/// subject's erasure call returned) while reader threads hammer
/// purpose-checked gets, then assert both invariants.
fn run_storm(store: &Arc<GdprStore>, erase: impl FnOnce(&[AtomicBool]) + Send) {
    let erased: Vec<AtomicBool> = (0..SUBJECTS).map(|_| AtomicBool::new(false)).collect();
    let done = AtomicBool::new(false);
    let violations = std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for r in 0..READERS {
            let store = Arc::clone(store);
            let erased = &erased;
            let done = &done;
            readers.push(scope.spawn(move || {
                let ctx = AccessContext::new("processor", "processing");
                let mut violations = 0u64;
                let mut i = r as u64;
                while !done.load(Ordering::Acquire) {
                    let s = i % SUBJECTS;
                    let k = (i / SUBJECTS) % KEYS_PER_SUBJECT;
                    // Order matters: sample the flag *before* the read. If
                    // the flag was already set and the read still returns
                    // data, the store served erased data.
                    let was_erased = erased[s as usize].load(Ordering::Acquire);
                    let got = store.get(&ctx, &key_name(s, k));
                    if was_erased {
                        if let Ok(Some(_)) = got {
                            violations += 1;
                        }
                    }
                    i += 1;
                }
                violations
            }));
        }
        erase(&erased);
        done.store(true, Ordering::Release);
        readers
            .into_iter()
            .map(|h| h.join().expect("reader"))
            .sum::<u64>()
    });
    assert_eq!(violations, 0, "processor reads served erased data");

    // No orphans: every index posting gone, keyspace (values + shadow
    // metadata records) completely empty.
    for s in 0..SUBJECTS {
        let keys = store
            .keys_of_subject(&subject_name(s))
            .expect("keysof scans");
        assert!(
            keys.is_empty(),
            "subject {s} still has index postings: {keys:?}"
        );
    }
    assert_eq!(store.len(), 0, "values remain after the storm");
    let leftovers = store.engine().keys("*").expect("keyspace scan");
    assert!(
        leftovers.is_empty(),
        "raw keyspace still holds {} entries (orphan metadata?): {:?}",
        leftovers.len(),
        &leftovers[..leftovers.len().min(8)]
    );
}

#[test]
fn in_process_erasure_storm_never_serves_erased_data_and_leaves_no_orphans() {
    let store = storm_store();
    let eraser = Arc::clone(&store);
    run_storm(&store, move |erased| {
        let ctx = AccessContext::new("regulator", "audit");
        for s in 0..SUBJECTS {
            eraser
                .right_to_erasure(&ctx, &subject_name(s))
                .expect("erasure completes");
            erased[s as usize].store(true, Ordering::Release);
        }
    });
}

#[test]
fn tcp_erasure_storm_never_serves_erased_data_and_leaves_no_orphans() {
    let store = storm_store();
    let handle = TcpServer::bind(
        Dispatcher::gdpr(Arc::clone(&store)),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("tcp server binds");
    let addr = handle.local_addr();
    run_storm(&store, move |erased| {
        let mut client = TcpRemoteClient::connect(addr).expect("eraser connects");
        client.auth("regulator", "audit").expect("eraser auth");
        for s in 0..SUBJECTS {
            let reply = client
                .gdpr(&GdprRequest::Erase {
                    subject: subject_name(s),
                })
                .expect("erase roundtrip");
            assert!(
                matches!(reply, Frame::Integer(_)),
                "unexpected ERASE reply {reply:?}"
            );
            erased[s as usize].store(true, Ordering::Release);
        }
    });
    handle.shutdown();
}
