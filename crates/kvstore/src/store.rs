//! The engine façade: [`KvStore`] ties the sharded keyspace, the AOF, the
//! device layer and the expiry machinery together behind a thread-safe
//! handle.
//!
//! # Execution model
//!
//! The keyspace is split into N shards (power of two, configurable via
//! [`StoreConfig::shards`]); each shard owns its own [`Db`] (dictionary,
//! expiry indexes, keyspace counters), its own expiry-sampling RNG and its
//! own lock. A seeded hash of the key ([`crate::shard::ShardRouter`])
//! decides the owning shard, so operations on different shards execute in
//! parallel:
//!
//! 1. every operation is a [`Command`];
//! 2. per-key commands lock **only the owning shard** and execute against
//!    its [`Db`]; keyspace-wide commands (`KEYS`, `SCAN`, `DBSIZE`,
//!    `FLUSHALL`) visit every shard and merge;
//! 3. if the command is a write — or *any* command when read-logging is
//!    enabled (the GDPR monitoring retrofit) — it is appended to the
//!    **owning shard's own journal segment** ([`ShardedAof`]) while the
//!    shard lock is held (so the journal order of each key matches its
//!    apply order); durability then settles *after* the lock drops — under
//!    `always` fsync a per-segment group committer coalesces concurrent
//!    writers into one fsync, so persistence scales with the shard count
//!    instead of re-serializing it;
//! 4. time-driven work (active expiry per shard, the `everysec` fsync
//!    timer of **every** segment, auto-rewrite) runs from
//!    [`KvStore::tick`], which a server loop or benchmark calls
//!    periodically — 10 Hz matches Redis' `serverCron`;
//! 5. on open, journal segments are loaded in parallel and their records
//!    merged by global sequence number, then routed through the current
//!    [`ShardRouter`] — so a journal written with M shards replays
//!    correctly into N shards, the way snapshots already do.
//!
//! Lock order (deadlock freedom): shard locks are only ever taken in
//! ascending index order, and a segment's log lock is only taken while
//! holding shard locks or from the group committer (which holds no shard
//! lock) — never shard-after-log. Engine-wide statistics are lock-free
//! atomics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use obs::{AtomicHistogram, LatencyHistogram};

use parking_lot::{Mutex, MutexGuard};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::aof::AofStats;
use crate::clock::{SharedClock, UnixMillis};
use crate::commands::{Command, Reply};
use crate::config::{EvictionPolicy, StoreConfig};
use crate::db::{Db, DbStats};
use crate::expire::{run_expire_cycle, CycleOutcome};
use crate::object::Bytes;
use crate::shard::ShardRouter;
use crate::sharded_aof::{LoadedJournal, ReplTail, ReplWatermark, ShardedAof};
use crate::snapshot;
use crate::stats::EngineStats;
use crate::ttl_wheel::DeadlineIndexStats;
use crate::{Result, StoreError};

/// How many random keys the sampled eviction policies examine per victim
/// (Redis' `maxmemory-samples` default).
const EVICTION_SAMPLES: usize = 5;

/// One slice of the keyspace: a dictionary plus its expiry-sampling RNG.
struct Shard {
    db: Db,
    rng: StdRng,
}

/// RAII registration of a replication stream (see
/// [`KvStore::begin_repl_stream`]); dropping it deregisters the stream
/// and lets an idle primary drop the backlog.
#[derive(Debug)]
pub struct ReplStreamGuard<'a> {
    aof: &'a ShardedAof,
}

impl Drop for ReplStreamGuard<'_> {
    fn drop(&mut self) {
        self.aof.end_tailing();
    }
}

/// Engine-wide counters, kept lock-free so hot-path bookkeeping never
/// serializes shards against each other.
#[derive(Debug, Default)]
struct EngineCounters {
    commands: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    expire_cycles: AtomicU64,
    keys_expired_by_cycles: AtomicU64,
    auto_rewrites: AtomicU64,
    records_since_rewrite: AtomicU64,
    last_tick_ms: AtomicU64,
}

struct Inner {
    shards: Vec<Mutex<Shard>>,
    /// The sharded journal: one append-only segment per shard.
    aof: Option<ShardedAof>,
    router: ShardRouter,
    config: StoreConfig,
    counters: EngineCounters,
    /// How long per-key commands hold their shard lock (execute + journal
    /// append), the engine's main contention signal.
    shard_lock_hold: AtomicHistogram,
}

/// A thread-safe handle to the storage engine.
///
/// Cloning the handle is cheap and shares the same underlying state.
#[derive(Clone)]
pub struct KvStore {
    inner: Arc<Inner>,
    clock: SharedClock,
}

impl std::fmt::Debug for KvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvStore")
            .field("shards", &self.inner.shards.len())
            .field("keys", &self.len())
            .field("aof", &self.inner.aof.is_some())
            .finish()
    }
}

impl KvStore {
    /// Open an engine with the given configuration, replaying any existing
    /// journal (segments loaded in parallel, records routed through the
    /// current router, shards rebuilt in parallel).
    ///
    /// # Errors
    ///
    /// Returns configuration, I/O, decryption or corruption errors
    /// encountered while opening or replaying persistence.
    pub fn open(config: StoreConfig) -> Result<Self> {
        let clock = Arc::clone(&config.clock);
        let router = ShardRouter::new(config.shards, config.shard_hash_seed);
        let shard_count = router.shard_count();

        let mut shards: Vec<Shard> = (0..shard_count)
            .map(|idx| Shard {
                db: Db::with_deadline_index(Arc::clone(&clock), config.deadline_index),
                rng: match config.rng_seed {
                    Some(seed) => StdRng::seed_from_u64(seed.wrapping_add(idx as u64)),
                    None => StdRng::from_entropy(),
                },
            })
            .collect();

        let aof = match ShardedAof::open(&config, &router)? {
            Some((aof, loaded)) => {
                let partitions = Self::partition_journal(loaded, &router)?;
                Self::replay(&partitions, &mut shards)?;
                Some(aof)
            }
            None => None,
        };

        let inner = Inner {
            shards: shards.into_iter().map(Mutex::new).collect(),
            aof,
            router,
            config,
            counters: EngineCounters::default(),
            shard_lock_hold: AtomicHistogram::new(),
        };
        Ok(KvStore {
            inner: Arc::new(inner),
            clock,
        })
    }

    /// Route recovered journal records to the shards that own them now.
    ///
    /// Fast path: the journal was written with this exact layout (same
    /// segment count, same router seed), so segment `i`'s records already
    /// belong to shard `i` — including its own copy of every broadcast.
    /// Otherwise the segments are merged by global sequence number (which
    /// reconstructs a valid linearization and deduplicates broadcast
    /// copies) and each record is re-routed through the current router.
    fn partition_journal(loaded: LoadedJournal, router: &ShardRouter) -> Result<Vec<Vec<Command>>> {
        let shard_count = router.shard_count();
        let same_layout =
            loaded.segments.len() == shard_count && loaded.writer_seed == router.seed();

        if same_layout {
            let mut partitions = Vec::with_capacity(shard_count);
            for records in loaded.segments {
                let mut commands = Vec::with_capacity(records.len());
                for (_seq, record) in records {
                    let cmd = Command::decode(&record)?;
                    if cmd.is_write() {
                        commands.push(cmd);
                    }
                }
                partitions.push(commands);
            }
            return Ok(partitions);
        }

        let mut merged: Vec<(u64, Vec<u8>)> = loaded.segments.into_iter().flatten().collect();
        merged.sort_by_key(|(seq, _)| *seq);
        let mut partitions: Vec<Vec<Command>> = (0..shard_count).map(|_| Vec::new()).collect();
        let mut last_seq = None;
        for (seq, record) in merged {
            // Broadcast records were written once per writer segment under
            // a shared sequence number; keep one copy.
            if last_seq == Some(seq) {
                continue;
            }
            last_seq = Some(seq);
            let cmd = Command::decode(&record)?;
            if !cmd.is_write() {
                continue;
            }
            match cmd.primary_key() {
                Some(key) => partitions[router.shard_of(key)].push(cmd),
                // FLUSHALL (the only key-less write) clears every shard;
                // relative order within each partition is preserved.
                None => {
                    for partition in &mut partitions {
                        partition.push(cmd.clone());
                    }
                }
            }
        }
        Ok(partitions)
    }

    /// Rebuild every shard from its partition — in parallel when there is
    /// more than one.
    fn replay(partitions: &[Vec<Command>], shards: &mut [Shard]) -> Result<()> {
        fn apply(shard: &mut Shard, commands: &[Command]) -> Result<()> {
            for cmd in commands {
                cmd.execute(&mut shard.db)?;
            }
            shard.db.reset_dirty();
            Ok(())
        }

        if shards.len() > 1 {
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(shards.len());
                for (shard, commands) in shards.iter_mut().zip(partitions) {
                    handles.push(scope.spawn(move || apply(shard, commands)));
                }
                for handle in handles {
                    handle.join().expect("replay thread panicked")?;
                }
                Ok(())
            })
        } else {
            for (shard, commands) in shards.iter_mut().zip(partitions) {
                apply(shard, commands)?;
            }
            Ok(())
        }
    }

    /// The clock this engine reads time from.
    #[must_use]
    pub fn clock(&self) -> SharedClock {
        Arc::clone(&self.clock)
    }

    /// Number of keyspace shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The shard index owning `key` (stable for the life of the store).
    #[must_use]
    pub fn shard_of(&self, key: &str) -> usize {
        self.inner.router.shard_of(key)
    }

    /// The key → shard router (shared with the compliance layer so its
    /// per-shard structures line up with the engine's).
    #[must_use]
    pub fn router(&self) -> ShardRouter {
        self.inner.router
    }

    // ----- command execution ------------------------------------------------

    /// Execute a command, journaling it according to the configuration.
    ///
    /// Per-key commands lock only the owning shard; keyspace-wide commands
    /// (`KEYS`, `SCAN`, `DBSIZE`, `FLUSHALL`) visit every shard.
    ///
    /// # Errors
    ///
    /// Propagates execution and persistence errors.
    pub fn execute(&self, command: Command) -> Result<Reply> {
        let is_write = command.is_write();
        let journal = self.inner.aof.is_some() && (is_write || self.inner.config.log_reads);

        let mut journaled = false;
        let mut ticket = None;
        let mut evict_ticket = None;
        let reply = match command.primary_key() {
            Some(key) => {
                let shard_idx = self.inner.router.shard_of(key);
                let mut shard = self.inner.shards[shard_idx].lock();
                let held = Instant::now();
                if let Some(budget) = self.shard_mem_budget() {
                    // `noeviction` rejects growth up front; a command that
                    // can only shrink the keyspace is always allowed.
                    if self.inner.config.eviction_policy == EvictionPolicy::Noeviction
                        && command.may_grow_memory()
                        && shard.db.mem_bytes() > budget
                    {
                        return Err(StoreError::Oom {
                            used: shard.db.mem_bytes(),
                            limit: budget,
                        });
                    }
                }
                let reply = command.execute(&mut shard.db)?;
                if journal {
                    // Append to the owning shard's segment while the shard
                    // is locked, so the journal order of this key matches
                    // its apply order. Durability settles after unlock.
                    if let Some(aof) = &self.inner.aof {
                        ticket = aof.append(shard_idx, &command.encode())?;
                    }
                    journaled = true;
                }
                if is_write {
                    // The sampled policies reclaim space right after the
                    // write, under the same shard lock, and journal each
                    // eviction as a DEL — so replicas and crash-replay see
                    // the eviction at exactly this point of the key's
                    // command stream and stay byte-convergent.
                    evict_ticket = self.evict_to_budget(shard_idx, &mut shard)?;
                }
                drop(shard);
                self.inner.shard_lock_hold.record(held.elapsed());
                reply
            }
            None => {
                let mut guards = self.lock_all_shards();
                let reply = match &command {
                    Command::Keys { .. } | Command::Scan { .. } => {
                        self.merge_key_query(&command, &mut guards)?
                    }
                    Command::DbSize => Reply::Int(guards.iter().map(|g| g.db.len() as i64).sum()),
                    _ => {
                        // FLUSHALL and any future keyspace-wide write.
                        let mut total = 0i64;
                        let mut last = Reply::Ok;
                        for guard in guards.iter_mut() {
                            last = command.execute(&mut guard.db)?;
                            if let Reply::Int(n) = last {
                                total += n;
                            }
                        }
                        if matches!(last, Reply::Int(_)) {
                            Reply::Int(total)
                        } else {
                            last
                        }
                    }
                };
                if journal {
                    // Keyspace-wide writes go to every segment under one
                    // shared sequence number, while all shards are locked;
                    // key-less reads (read-logging of KEYS/SCAN/DBSIZE)
                    // need only one copy, kept in segment 0 — the same
                    // convention the legacy-migration path uses.
                    if let Some(aof) = &self.inner.aof {
                        ticket = if is_write {
                            aof.append_broadcast(&command.encode())?
                        } else {
                            aof.append(0, &command.encode())?
                        };
                    }
                    journaled = true;
                }
                reply
            }
        };

        // With the shard lock(s) released, wait for durability (group
        // commit coalesces us with every other writer of the segment).
        if let (Some(ticket), Some(aof)) = (ticket, &self.inner.aof) {
            aof.commit(ticket)?;
        }
        if let (Some(ticket), Some(aof)) = (evict_ticket, &self.inner.aof) {
            aof.commit(ticket)?;
        }

        let counters = &self.inner.counters;
        counters.commands.fetch_add(1, Ordering::Relaxed);
        if is_write {
            counters.writes.fetch_add(1, Ordering::Relaxed);
        } else {
            counters.reads.fetch_add(1, Ordering::Relaxed);
        }
        if journaled {
            counters
                .records_since_rewrite
                .fetch_add(1, Ordering::Relaxed);
            self.maybe_auto_rewrite()?;
        }
        Ok(reply)
    }

    /// Acquire every shard lock in ascending index order (the global lock
    /// order that keeps multi-shard operations deadlock-free).
    fn lock_all_shards(&self) -> Vec<MutexGuard<'_, Shard>> {
        self.inner.shards.iter().map(Mutex::lock).collect()
    }

    /// Each shard's slice of the `maxmemory` budget, or `None` when the
    /// ceiling is unlimited.
    fn shard_mem_budget(&self) -> Option<u64> {
        match self.inner.config.max_memory {
            0 => None,
            max => Some((max / self.inner.shards.len() as u64).max(1)),
        }
    }

    /// Evict sampled victims from the locked shard until it is back under
    /// its budget (or nothing is left to evict), journaling each eviction
    /// as a `DEL` in the shard's segment under the held lock. Returns the
    /// durability ticket for the eviction batch, if any. No-op under
    /// `noeviction` or without a `maxmemory` ceiling.
    fn evict_to_budget(
        &self,
        shard_idx: usize,
        shard: &mut Shard,
    ) -> Result<Option<crate::sharded_aof::Ticket>> {
        let policy = self.inner.config.eviction_policy;
        if policy == EvictionPolicy::Noeviction {
            return Ok(None);
        }
        let Some(budget) = self.shard_mem_budget() else {
            return Ok(None);
        };
        let Shard { db, rng } = shard;
        let mut dels: Vec<Vec<u8>> = Vec::new();
        while db.mem_bytes() > budget {
            match db.evict_one(rng, policy, EVICTION_SAMPLES) {
                Some(victim) => dels.push(Command::Del { key: victim }.encode()),
                None => break,
            }
        }
        if dels.is_empty() {
            return Ok(None);
        }
        match &self.inner.aof {
            Some(aof) => aof.append_batch(shard_idx, dels.iter().map(Vec::as_slice)),
            None => Ok(None),
        }
    }

    fn merge_key_query(
        &self,
        command: &Command,
        guards: &mut [MutexGuard<'_, Shard>],
    ) -> Result<Reply> {
        let mut merged: Vec<String> = Vec::new();
        for guard in guards.iter_mut() {
            if let Reply::StringArray(keys) = command.execute(&mut guard.db)? {
                merged.extend(keys);
            }
        }
        merged.sort();
        if let Command::Scan { count, .. } = command {
            merged.truncate(*count as usize);
        }
        Ok(Reply::StringArray(merged))
    }

    fn maybe_auto_rewrite(&self) -> Result<()> {
        let threshold = self.inner.config.aof_rewrite_threshold_records;
        if threshold == 0 {
            return Ok(());
        }
        let counter = &self.inner.counters.records_since_rewrite;
        if counter.load(Ordering::Relaxed) < threshold {
            return Ok(());
        }
        // Claim the rewrite by swapping the counter out: of several threads
        // crossing the threshold together, only the one that observes a
        // value still >= threshold performs the (stop-the-world) rewrite;
        // losers put their observation back and carry on.
        let observed = counter.swap(0, Ordering::Relaxed);
        if observed < threshold {
            counter.fetch_add(observed, Ordering::Relaxed);
            return Ok(());
        }
        self.rewrite_aof()?;
        self.inner
            .counters
            .auto_rewrites
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    // ----- convenience wrappers ----------------------------------------------

    /// Set a string key.
    pub fn set(&self, key: &str, value: Bytes) -> Result<()> {
        self.execute(Command::Set {
            key: key.to_string(),
            value,
        })
        .map(|_| ())
    }

    /// Read a string key.
    pub fn get(&self, key: &str) -> Result<Option<Bytes>> {
        Ok(self
            .execute(Command::Get {
                key: key.to_string(),
            })?
            .into_bytes())
    }

    /// Delete a key; returns whether it existed.
    pub fn delete(&self, key: &str) -> Result<bool> {
        Ok(self.execute(Command::Del {
            key: key.to_string(),
        })? == Reply::Int(1))
    }

    /// Install `listener` on every shard (replacing any previous one), or
    /// clear it with `None`. The engine calls it after each per-key
    /// removal — explicit deletes, lazy and active expiry, `maxmemory`
    /// eviction — while the owning shard's lock is held, so caches layered
    /// above the engine can invalidate synchronously even for removals
    /// that never pass through their own write path. The listener must be
    /// cheap and must not call back into the engine.
    pub fn set_removal_listener(&self, listener: Option<crate::db::RemovalListener>) {
        for shard in &self.inner.shards {
            shard.lock().db.set_removal_listener(listener.clone());
        }
    }

    /// Whether the key exists.
    pub fn exists(&self, key: &str) -> Result<bool> {
        Ok(self.execute(Command::Exists {
            key: key.to_string(),
        })? == Reply::Int(1))
    }

    /// Set a TTL relative to now.
    pub fn expire_in(&self, key: &str, ttl: std::time::Duration) -> Result<bool> {
        Ok(self.execute(Command::Expire {
            key: key.to_string(),
            ttl_ms: ttl.as_millis() as u64,
        })? == Reply::Int(1))
    }

    /// Set an absolute expiration deadline in Unix milliseconds.
    pub fn expire_at(&self, key: &str, at_ms: UnixMillis) -> Result<bool> {
        Ok(self.execute(Command::ExpireAt {
            key: key.to_string(),
            at_ms,
        })? == Reply::Int(1))
    }

    /// Remaining TTL, if the key exists and has one.
    pub fn ttl(&self, key: &str) -> Result<Option<std::time::Duration>> {
        Ok(
            match self.execute(Command::Ttl {
                key: key.to_string(),
            })? {
                Reply::Int(ms) => Some(std::time::Duration::from_millis(ms as u64)),
                _ => None,
            },
        )
    }

    /// Set a hash field.
    pub fn hset(&self, key: &str, field: &str, value: Bytes) -> Result<()> {
        self.execute(Command::HSet {
            key: key.to_string(),
            field: field.to_string(),
            value,
        })
        .map(|_| ())
    }

    /// Set several hash fields at once.
    pub fn hset_multi(
        &self,
        key: &str,
        fields: &std::collections::BTreeMap<String, Bytes>,
    ) -> Result<()> {
        self.execute(Command::HSetMulti {
            key: key.to_string(),
            fields: fields.clone(),
        })
        .map(|_| ())
    }

    /// Read a hash field.
    pub fn hget(&self, key: &str, field: &str) -> Result<Option<Bytes>> {
        Ok(self
            .execute(Command::HGet {
                key: key.to_string(),
                field: field.to_string(),
            })?
            .into_bytes())
    }

    /// Read a whole hash.
    pub fn hgetall(&self, key: &str) -> Result<Option<std::collections::BTreeMap<String, Bytes>>> {
        Ok(
            match self.execute(Command::HGetAll {
                key: key.to_string(),
            })? {
                Reply::Map(m) => Some(m),
                _ => None,
            },
        )
    }

    /// Keys matching a glob pattern, merged across shards in lexicographic
    /// order.
    pub fn keys(&self, pattern: &str) -> Result<Vec<String>> {
        Ok(
            match self.execute(Command::Keys {
                pattern: pattern.to_string(),
            })? {
                Reply::StringArray(keys) => keys,
                _ => Vec::new(),
            },
        )
    }

    /// Ordered scan of up to `count` keys starting at `start`, merged
    /// across shards.
    pub fn scan(&self, start: &str, count: usize) -> Result<Vec<String>> {
        Ok(
            match self.execute(Command::Scan {
                start: start.to_string(),
                count: count as u64,
            })? {
                Reply::StringArray(keys) => keys,
                _ => Vec::new(),
            },
        )
    }

    /// Number of keys in the keyspace (summed over shards).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().db.len()).sum()
    }

    /// Whether the keyspace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of keys whose TTL deadline has passed but which have not been
    /// physically erased yet (Figure 2's quantity), summed over shards.
    #[must_use]
    pub fn pending_expired(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().db.pending_expired_len())
            .sum()
    }

    // ----- time-driven work ---------------------------------------------------

    /// Run one iteration of the engine's background duties: an expiry cycle
    /// per shard (per the configured mode) and, under `everysec`, a
    /// possible fsync. Returns the merged expiry-cycle outcome so callers
    /// (e.g. the GDPR layer) can audit the erased keys.
    ///
    /// # Errors
    ///
    /// Propagates persistence errors from the fsync or from journaling the
    /// expiry deletions.
    pub fn tick(&self) -> Result<CycleOutcome> {
        let mode = self.inner.config.expiry_mode;
        let expire_cfg = self.inner.config.active_expire;
        let mut merged = CycleOutcome::default();

        for (shard_idx, shard) in self.inner.shards.iter().enumerate() {
            let mut shard = shard.lock();
            let Shard { db, rng } = &mut *shard;
            let outcome = run_expire_cycle(db, mode, &expire_cfg, rng);

            // Propagate expiry deletions into this shard's journal segment
            // (under the shard lock, like any other write, and under one
            // log-lock acquisition for the whole batch) so that replaying
            // it cannot resurrect erased personal data.
            let mut ticket = None;
            if !outcome.removed.is_empty() {
                if let Some(aof) = &self.inner.aof {
                    let records: Vec<Vec<u8>> = outcome
                        .removed
                        .iter()
                        .map(|key| Command::Del { key: key.clone() }.encode())
                        .collect();
                    ticket = aof.append_batch(shard_idx, records.iter().map(Vec::as_slice))?;
                }
            }
            drop(shard);
            if let (Some(ticket), Some(aof)) = (ticket, &self.inner.aof) {
                aof.commit(ticket)?;
            }

            merged.removed.extend(outcome.removed);
            merged.iterations += outcome.iterations;
            merged.examined += outcome.examined;
        }

        let counters = &self.inner.counters;
        counters.expire_cycles.fetch_add(1, Ordering::Relaxed);
        counters
            .keys_expired_by_cycles
            .fetch_add(merged.removed.len() as u64, Ordering::Relaxed);

        // Service the `everysec` timer of *every* segment, including the
        // ones this tick appended nothing to — a shard with no expiring
        // keys must still get its pending appends flushed on schedule.
        if let Some(aof) = &self.inner.aof {
            aof.maybe_fsync_all()?;
        }
        counters
            .last_tick_ms
            .store(self.clock.now_millis(), Ordering::Relaxed);
        Ok(merged)
    }

    /// Rewrite (compact) the whole journal segment set from the live
    /// dataset — `BGREWRITEAOF`. Each shard's segment is regenerated from
    /// that shard's minimal command stream and the set is swapped
    /// atomically through the manifest. Returns the number of records
    /// dropped, i.e. how much stale (including deleted-but-persisting)
    /// data was purged.
    ///
    /// Holds every shard lock for the duration, so the rewritten segment
    /// set is a consistent point-in-time image.
    ///
    /// # Errors
    ///
    /// Propagates persistence errors. Returns `Ok(0)` when persistence is
    /// disabled.
    pub fn rewrite_aof(&self) -> Result<u64> {
        let Some(aof) = &self.inner.aof else {
            return Ok(0);
        };
        let mut guards = self.lock_all_shards();

        let per_segment: Vec<Vec<Vec<u8>>> = guards
            .iter()
            .map(|guard| {
                snapshot::rewrite_commands(&guard.db)
                    .iter()
                    .map(Command::encode)
                    .collect()
            })
            .collect();
        let dropped = aof.rewrite(&per_segment)?;
        self.inner
            .counters
            .records_since_rewrite
            .store(0, Ordering::Relaxed);
        for guard in guards.iter_mut() {
            guard.db.reset_dirty();
        }
        Ok(dropped)
    }

    /// Force an fsync of every journal segment regardless of policy.
    pub fn fsync(&self) -> Result<()> {
        if let Some(aof) = &self.inner.aof {
            aof.fsync_all()?;
        }
        Ok(())
    }

    // ----- snapshots -----------------------------------------------------------

    /// Serialize the current keyspace (all shards) to a snapshot byte blob.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u8> {
        let guards = self.lock_all_shards();
        let dbs: Vec<&Db> = guards.iter().map(|g| &g.db).collect();
        snapshot::save_shards_to_bytes(&dbs)
    }

    /// Replace the keyspace with the contents of a snapshot blob, routing
    /// every key to its owning shard (snapshots are portable across shard
    /// counts).
    ///
    /// # Errors
    ///
    /// Returns corruption errors from decoding.
    pub fn restore_snapshot(&self, bytes: &[u8]) -> Result<()> {
        let router = self.inner.router;
        let mut guards = self.lock_all_shards();
        let mut dbs: Vec<&mut Db> = guards.iter_mut().map(|g| &mut g.db).collect();
        snapshot::load_into_shards(&mut dbs, |key| router.shard_of(key), bytes)
    }

    // ----- replication -----------------------------------------------------------

    /// Register a replication stream for its lifetime (RAII). While at
    /// least one guard is alive, appends are mirrored into the in-memory
    /// backlog that [`Self::repl_tail`] serves — the no-replica case pays
    /// nothing on the append path. Returns `None` when persistence is
    /// disabled or the backlog is configured away
    /// (`repl_backlog_records = 0`): callers must refuse the stream
    /// rather than hand out a cursor that can never be served.
    #[must_use]
    pub fn begin_repl_stream(&self) -> Option<ReplStreamGuard<'_>> {
        let aof = self.inner.aof.as_ref()?;
        if !aof.tailing_enabled() {
            return None;
        }
        aof.begin_tailing();
        Some(ReplStreamGuard { aof })
    }

    /// Full-sync source for a replica: a portable snapshot blob plus the
    /// journal watermark it corresponds to, captured atomically under every
    /// shard lock (sequence allocation happens under shard locks, so no
    /// append can land between the snapshot and the watermark read).
    /// Returns `None` when persistence is disabled — replication needs the
    /// journal's global sequence numbers as its stream offsets.
    #[must_use]
    pub fn replication_snapshot(&self) -> Option<(Vec<u8>, ReplWatermark)> {
        let aof = self.inner.aof.as_ref()?;
        let guards = self.lock_all_shards();
        let dbs: Vec<&Db> = guards.iter().map(|g| &g.db).collect();
        let blob = snapshot::save_shards_to_bytes(&dbs);
        Some((
            blob,
            ReplWatermark {
                epoch: aof.epoch(),
                last_seq: aof.last_seq(),
            },
        ))
    }

    /// Poll the replication stream from a cursor (see
    /// [`ShardedAof::tail_since`]). `None` when persistence is disabled.
    #[must_use]
    pub fn repl_tail(&self, epoch: u64, after_seq: u64, max: usize) -> Option<ReplTail> {
        self.inner
            .aof
            .as_ref()
            .map(|aof| aof.tail_since(epoch, after_seq, max))
    }

    /// A canonical byte rendering of the whole keyspace: every key in
    /// lexicographic order with its encoded value and absolute expiry
    /// deadline. Two stores hold equivalent state iff these bytes are
    /// equal — the primary/replica convergence check (shard count and
    /// journal layout do not influence it).
    #[must_use]
    pub fn canonical_state(&self) -> Vec<u8> {
        use std::collections::BTreeMap;
        let guards = self.lock_all_shards();
        let mut entries: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        for guard in &guards {
            for (key, object) in guard.db.iter() {
                let mut encoded = Vec::new();
                match guard.db.expire_deadline(key) {
                    Some(at) => {
                        encoded.push(1);
                        encoded.extend_from_slice(&at.to_le_bytes());
                    }
                    None => encoded.push(0),
                }
                crate::serialize::encode_value(&mut encoded, &object.value);
                entries.insert(key.clone(), encoded);
            }
        }
        let mut out = Vec::new();
        for (key, encoded) in entries {
            crate::serialize::put_str(&mut out, &key);
            out.extend_from_slice(&encoded);
        }
        out
    }

    // ----- introspection --------------------------------------------------------

    /// Snapshots of the engine's stage-latency histograms, in a fixed
    /// order: how long per-key commands held their shard lock, and how
    /// long writers waited in [`ShardedAof::commit`] for group-commit
    /// durability (empty when persistence is off or fsync is not
    /// per-write).
    #[must_use]
    pub fn stage_latencies(&self) -> Vec<(&'static str, LatencyHistogram)> {
        vec![
            ("shard_lock_hold", self.inner.shard_lock_hold.snapshot()),
            (
                "aof_commit_wait",
                self.inner
                    .aof
                    .as_ref()
                    .map(ShardedAof::commit_wait_snapshot)
                    .unwrap_or_default(),
            ),
        ]
    }

    /// A point-in-time statistics snapshot (keyspace counters summed over
    /// shards).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        let mut db = DbStats::default();
        let mut deadline_index = DeadlineIndexStats {
            kind: self.inner.config.deadline_index,
            ..DeadlineIndexStats::default()
        };
        for shard in &self.inner.shards {
            let shard = shard.lock();
            let s = shard.db.stats();
            db.keyspace_hits += s.keyspace_hits;
            db.keyspace_misses += s.keyspace_misses;
            db.expired_keys += s.expired_keys;
            db.deleted_keys += s.deleted_keys;
            db.evicted_keys += s.evicted_keys;
            db.writes += s.writes;
            db.mem_bytes += s.mem_bytes;
            deadline_index.absorb(&shard.db.deadline_index_stats());
        }
        let counters = &self.inner.counters;
        EngineStats {
            commands_processed: counters.commands.load(Ordering::Relaxed),
            reads: counters.reads.load(Ordering::Relaxed),
            writes: counters.writes.load(Ordering::Relaxed),
            expire_cycles: counters.expire_cycles.load(Ordering::Relaxed),
            keys_expired_by_cycles: counters.keys_expired_by_cycles.load(Ordering::Relaxed),
            auto_rewrites: counters.auto_rewrites.load(Ordering::Relaxed),
            max_memory: self.inner.config.max_memory,
            eviction_policy: self.inner.config.eviction_policy,
            db,
            deadline_index,
            aof: self
                .inner
                .aof
                .as_ref()
                .map(ShardedAof::stats)
                .unwrap_or_default(),
            aof_segments: self
                .inner
                .aof
                .as_ref()
                .map_or(0, |aof| aof.segment_count() as u64),
            device: self
                .inner
                .aof
                .as_ref()
                .map(ShardedAof::device_stats)
                .unwrap_or_default(),
        }
    }

    /// AOF statistics aggregated over all segments, if persistence is
    /// enabled.
    #[must_use]
    pub fn aof_stats(&self) -> Option<AofStats> {
        self.inner.aof.as_ref().map(ShardedAof::stats)
    }

    /// Per-segment AOF statistics (index `i` is shard `i`'s segment), if
    /// persistence is enabled — the paper's risk-window metric observable
    /// per shard.
    #[must_use]
    pub fn aof_segment_stats(&self) -> Option<Vec<AofStats>> {
        self.inner.aof.as_ref().map(ShardedAof::segment_stats)
    }

    /// Current journal manifest epoch (bumps on every segment-set
    /// rewrite), if persistence is enabled.
    #[must_use]
    pub fn aof_epoch(&self) -> Option<u64> {
        self.inner.aof.as_ref().map(ShardedAof::epoch)
    }

    /// Bytes currently occupied by the journal across all segment devices.
    #[must_use]
    pub fn aof_len(&self) -> u64 {
        self.inner.aof.as_ref().map_or(0, ShardedAof::device_len)
    }

    /// The configured `maxmemory` ceiling in bytes (0 = unlimited).
    #[must_use]
    pub fn max_memory(&self) -> u64 {
        self.inner.config.max_memory
    }

    /// The configured over-`maxmemory` eviction policy.
    #[must_use]
    pub fn eviction_policy(&self) -> EvictionPolicy {
        self.inner.config.eviction_policy
    }

    /// Approximate resident bytes of the keyspace, summed over shards.
    #[must_use]
    pub fn mem_bytes(&self) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().db.mem_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use crate::expire::ExpiryMode;
    use std::time::Duration;

    #[test]
    fn basic_set_get_delete() {
        let store = KvStore::open(StoreConfig::in_memory()).unwrap();
        store.set("k", b"v".to_vec()).unwrap();
        assert_eq!(store.get("k").unwrap(), Some(b"v".to_vec()));
        assert!(store.exists("k").unwrap());
        assert!(store.delete("k").unwrap());
        assert!(!store.exists("k").unwrap());
        assert_eq!(store.len(), 0);
        assert!(store.is_empty());
    }

    #[test]
    fn clone_shares_state() {
        let store = KvStore::open(StoreConfig::in_memory()).unwrap();
        let other = store.clone();
        store.set("shared", b"1".to_vec()).unwrap();
        assert_eq!(other.get("shared").unwrap(), Some(b"1".to_vec()));
    }

    #[test]
    fn ttl_and_expiry_via_tick() {
        let clock = SimClock::new(0);
        let store = KvStore::open(
            StoreConfig::in_memory()
                .clock(clock.clone())
                .expiry_mode(ExpiryMode::Strict),
        )
        .unwrap();
        store.set("k", b"v".to_vec()).unwrap();
        store.expire_in("k", Duration::from_millis(500)).unwrap();
        assert!(store.ttl("k").unwrap().is_some());
        clock.advance_millis(600);
        assert_eq!(store.pending_expired(), 1);
        let outcome = store.tick().unwrap();
        assert_eq!(outcome.removed, vec!["k".to_string()]);
        assert_eq!(store.pending_expired(), 0);
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn aof_replay_recovers_state() {
        let dir = std::env::temp_dir().join(format!("kvstore-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replay.aof");
        let _ = std::fs::remove_file(&path);
        {
            let store = KvStore::open(StoreConfig::with_aof(&path)).unwrap();
            store.set("persistent", b"yes".to_vec()).unwrap();
            store.set("deleted", b"no".to_vec()).unwrap();
            store.delete("deleted").unwrap();
            store.hset("user", "email", b"a@b.c".to_vec()).unwrap();
            store.fsync().unwrap();
        }
        let reopened = KvStore::open(StoreConfig::with_aof(&path)).unwrap();
        assert_eq!(reopened.get("persistent").unwrap(), Some(b"yes".to_vec()));
        assert_eq!(reopened.get("deleted").unwrap(), None);
        assert_eq!(
            reopened.hget("user", "email").unwrap(),
            Some(b"a@b.c".to_vec())
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sharded_aof_replay_recovers_state() {
        let dir = std::env::temp_dir().join(format!("kvstore-shardrep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sharded.aof");
        let _ = std::fs::remove_file(&path);
        {
            let store = KvStore::open(StoreConfig::with_aof(&path).shards(4)).unwrap();
            for i in 0..64 {
                store.set(&format!("user{i:03}"), vec![i as u8]).unwrap();
            }
            store.delete("user000").unwrap();
            store.fsync().unwrap();
        }
        // Replay at a different shard count: routing is a runtime choice.
        {
            let reopened = KvStore::open(StoreConfig::with_aof(&path).shards(8)).unwrap();
            assert_eq!(reopened.shard_count(), 8);
            assert_eq!(reopened.len(), 63);
            assert_eq!(reopened.get("user000").unwrap(), None);
            assert_eq!(reopened.get("user063").unwrap(), Some(vec![63]));
            // The journal is re-sharded on open, so shards beyond the old
            // segment count journal their writes too.
            assert_eq!(reopened.aof_segment_stats().unwrap().len(), 8);
            for i in 64..96 {
                reopened.set(&format!("user{i:03}"), vec![i as u8]).unwrap();
            }
            reopened.fsync().unwrap();
        }
        let regrown = KvStore::open(StoreConfig::with_aof(&path).shards(8)).unwrap();
        assert_eq!(regrown.len(), 95);
        assert_eq!(regrown.get("user095").unwrap(), Some(vec![95]));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flushall_order_survives_shard_count_change() {
        let dir = std::env::temp_dir().join(format!("kvstore-flushrep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flush.aof");
        let _ = std::fs::remove_file(&path);
        {
            let store = KvStore::open(StoreConfig::with_aof(&path).shards(4)).unwrap();
            for i in 0..16 {
                store.set(&format!("before{i:02}"), b"x".to_vec()).unwrap();
            }
            store.execute(Command::FlushAll).unwrap();
            for i in 0..8 {
                store.set(&format!("after{i:02}"), b"y".to_vec()).unwrap();
            }
            store.fsync().unwrap();
        }
        // Merging segments written by 4 shards into 1 must keep the
        // broadcast FLUSHALL ordered between the two write generations.
        let narrow = KvStore::open(StoreConfig::with_aof(&path).shards(1)).unwrap();
        assert_eq!(narrow.len(), 8);
        assert_eq!(narrow.get("before00").unwrap(), None);
        assert_eq!(narrow.get("after07").unwrap(), Some(b"y".to_vec()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn encrypted_aof_replay_recovers_state() {
        let dir = std::env::temp_dir().join(format!("kvstore-store-enc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("enc.aof");
        let _ = std::fs::remove_file(&path);
        {
            let store = KvStore::open(StoreConfig::with_aof(&path).encrypted(b"vault pw")).unwrap();
            store.set("secret", b"pii".to_vec()).unwrap();
            store.fsync().unwrap();
        }
        // Plaintext must not be on disk — neither in the manifest nor in
        // any segment file of the layout.
        let mut scanned = 0;
        for entry in std::fs::read_dir(&dir).unwrap().flatten() {
            if entry.file_name().to_string_lossy().starts_with("enc.aof") {
                let raw = std::fs::read(entry.path()).unwrap();
                assert!(!raw.windows(3).any(|w| w == b"pii"), "{:?}", entry.path());
                scanned += 1;
            }
        }
        assert!(scanned >= 2, "manifest plus at least one segment");
        let reopened = KvStore::open(StoreConfig::with_aof(&path).encrypted(b"vault pw")).unwrap();
        assert_eq!(reopened.get("secret").unwrap(), Some(b"pii".to_vec()));
        // Wrong passphrase fails.
        assert!(KvStore::open(StoreConfig::with_aof(&path).encrypted(b"wrong")).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn in_memory_journal_honors_encryption_at_rest() {
        let store = KvStore::open(
            StoreConfig::in_memory()
                .aof_in_memory()
                .shards(2)
                .encrypted(b"mem pw"),
        )
        .unwrap();
        for i in 0..16 {
            store.set(&format!("k{i}"), b"personal".to_vec()).unwrap();
        }
        let device = store.stats().device;
        assert!(device.bytes_written > 0);
        assert!(
            device.bytes_on_device > device.bytes_written,
            "encrypting device frames (nonce+tag) must show up even for \
             in-memory segments: {device:?}"
        );

        let plain = KvStore::open(StoreConfig::in_memory().aof_in_memory().shards(2)).unwrap();
        plain.set("k", b"v".to_vec()).unwrap();
        let device = plain.stats().device;
        assert_eq!(device.bytes_on_device, device.bytes_written);
    }

    #[test]
    fn read_logging_journals_reads() {
        let store =
            KvStore::open(StoreConfig::in_memory().aof_in_memory().log_reads(true)).unwrap();
        store.set("k", b"v".to_vec()).unwrap();
        store.get("k").unwrap();
        store.get("k").unwrap();
        let stats = store.aof_stats().unwrap();
        assert_eq!(stats.records_appended, 3, "1 write + 2 reads journaled");

        let plain = KvStore::open(StoreConfig::in_memory().aof_in_memory()).unwrap();
        plain.set("k", b"v".to_vec()).unwrap();
        plain.get("k").unwrap();
        assert_eq!(
            plain.aof_stats().unwrap().records_appended,
            1,
            "reads not journaled by default"
        );
    }

    #[test]
    fn keyless_read_logging_journals_one_copy_not_a_broadcast() {
        let store = KvStore::open(
            StoreConfig::in_memory()
                .aof_in_memory()
                .shards(4)
                .log_reads(true),
        )
        .unwrap();
        let before = store.aof_stats().unwrap().records_appended;
        store.keys("*").unwrap();
        store.scan("", 10).unwrap();
        assert_eq!(
            store.aof_stats().unwrap().records_appended,
            before + 2,
            "a key-less read is one journal record, not one per segment"
        );
        // Keyspace-wide writes are still broadcast (one copy per segment).
        let before = store.aof_stats().unwrap().records_appended;
        store.execute(Command::FlushAll).unwrap();
        assert_eq!(store.aof_stats().unwrap().records_appended, before + 4);
    }

    #[test]
    fn rewrite_compacts_overwrites_and_deletes() {
        let store = KvStore::open(StoreConfig::in_memory().aof_in_memory()).unwrap();
        for i in 0..50 {
            store.set("hot", vec![i as u8]).unwrap();
        }
        store.set("cold", b"keep".to_vec()).unwrap();
        store.set("gone", b"delete me".to_vec()).unwrap();
        store.delete("gone").unwrap();
        let before = store.aof_stats().unwrap().records_appended;
        assert!(before >= 53);
        let dropped = store.rewrite_aof().unwrap();
        assert!(dropped > 0);
        // After rewrite the log replays to exactly the live dataset.
        let snapshot_before = store.snapshot();
        let replayed = KvStore::open(StoreConfig::in_memory()).unwrap();
        replayed.restore_snapshot(&snapshot_before).unwrap();
        assert_eq!(replayed.get("hot").unwrap(), Some(vec![49]));
        assert_eq!(replayed.get("cold").unwrap(), Some(b"keep".to_vec()));
        assert_eq!(replayed.get("gone").unwrap(), None);
    }

    #[test]
    fn auto_rewrite_triggers_at_threshold() {
        let store = KvStore::open(
            StoreConfig::in_memory()
                .aof_in_memory()
                .aof_rewrite_threshold(10),
        )
        .unwrap();
        for i in 0..25 {
            store.set("k", vec![i as u8]).unwrap();
        }
        let stats = store.stats();
        assert!(
            stats.auto_rewrites >= 2,
            "expected at least 2 auto rewrites, got {}",
            stats.auto_rewrites
        );
    }

    #[test]
    fn expiry_deletions_are_journaled() {
        let clock = SimClock::new(0);
        let store = KvStore::open(
            StoreConfig::in_memory()
                .aof_in_memory()
                .clock(clock.clone())
                .expiry_mode(ExpiryMode::Strict),
        )
        .unwrap();
        store.set("temp", b"v".to_vec()).unwrap();
        store.expire_in("temp", Duration::from_millis(10)).unwrap();
        let before = store.aof_stats().unwrap().records_appended;
        clock.advance_millis(20);
        store.tick().unwrap();
        let after = store.aof_stats().unwrap().records_appended;
        assert_eq!(after, before + 1, "expiry must journal a DEL");
    }

    #[test]
    fn snapshot_roundtrip_via_store() {
        let store = KvStore::open(StoreConfig::in_memory()).unwrap();
        store.set("a", b"1".to_vec()).unwrap();
        store.hset("h", "f", b"2".to_vec()).unwrap();
        let blob = store.snapshot();
        let restored = KvStore::open(StoreConfig::in_memory()).unwrap();
        restored.restore_snapshot(&blob).unwrap();
        assert_eq!(restored.get("a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(restored.hget("h", "f").unwrap(), Some(b"2".to_vec()));
    }

    #[test]
    fn snapshot_is_portable_across_shard_counts() {
        let sharded = KvStore::open(StoreConfig::in_memory().shards(4)).unwrap();
        for i in 0..40 {
            sharded.set(&format!("user{i:02}"), vec![i as u8]).unwrap();
        }
        sharded.expire_at("user00", 10_000_000_000_000).unwrap();
        let blob = sharded.snapshot();

        let single = KvStore::open(StoreConfig::in_memory()).unwrap();
        single.restore_snapshot(&blob).unwrap();
        assert_eq!(single.len(), 40);
        assert_eq!(single.get("user39").unwrap(), Some(vec![39]));
        assert!(single.ttl("user00").unwrap().is_some());

        let wider = KvStore::open(StoreConfig::in_memory().shards(16)).unwrap();
        wider.restore_snapshot(&blob).unwrap();
        assert_eq!(wider.len(), 40);
    }

    #[test]
    fn stats_track_reads_writes_and_hits() {
        let store = KvStore::open(StoreConfig::in_memory()).unwrap();
        store.set("k", b"v".to_vec()).unwrap();
        store.get("k").unwrap();
        store.get("missing").unwrap();
        let stats = store.stats();
        assert_eq!(stats.commands_processed, 3);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.db.keyspace_hits, 1);
        assert_eq!(stats.db.keyspace_misses, 1);
        assert!(stats.hit_ratio().unwrap() > 0.49);
        assert!(!stats.render().is_empty());
    }

    #[test]
    fn scan_and_keys_via_store() {
        let store = KvStore::open(StoreConfig::in_memory()).unwrap();
        for i in 0..5 {
            store.set(&format!("user{i}"), b"v".to_vec()).unwrap();
        }
        assert_eq!(store.keys("user*").unwrap().len(), 5);
        assert_eq!(store.scan("user2", 2).unwrap(), vec!["user2", "user3"]);
    }

    #[test]
    fn scan_and_keys_merge_across_shards_in_order() {
        let store = KvStore::open(StoreConfig::in_memory().shards(8)).unwrap();
        for i in 0..50 {
            store.set(&format!("user{i:02}"), b"v".to_vec()).unwrap();
        }
        assert_eq!(store.shard_count(), 8);
        let keys = store.keys("user*").unwrap();
        assert_eq!(keys.len(), 50);
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "merged KEYS must stay globally ordered");
        assert_eq!(
            store.scan("user10", 4).unwrap(),
            vec!["user10", "user11", "user12", "user13"]
        );
    }

    #[test]
    fn flushall_clears_every_shard() {
        let store = KvStore::open(StoreConfig::in_memory().shards(4)).unwrap();
        for i in 0..32 {
            store.set(&format!("k{i}"), b"v".to_vec()).unwrap();
        }
        let reply = store.execute(Command::FlushAll).unwrap();
        assert_eq!(reply, Reply::Int(32));
        assert!(store.is_empty());
    }

    #[test]
    fn sharded_strict_expiry_sweeps_every_shard() {
        let clock = SimClock::new(0);
        let store = KvStore::open(
            StoreConfig::in_memory()
                .shards(4)
                .clock(clock.clone())
                .expiry_mode(ExpiryMode::Strict),
        )
        .unwrap();
        for i in 0..64 {
            let key = format!("temp{i:02}");
            store.set(&key, b"v".to_vec()).unwrap();
            store.expire_in(&key, Duration::from_millis(100)).unwrap();
        }
        clock.advance_millis(200);
        assert_eq!(store.pending_expired(), 64);
        let outcome = store.tick().unwrap();
        assert_eq!(outcome.removed.len(), 64);
        assert!(store.is_empty());
    }

    #[test]
    fn noeviction_rejects_growth_with_oom_but_allows_reclaim() {
        let store = KvStore::open(StoreConfig::in_memory().max_memory(512)).unwrap();
        // Fill past the ceiling (each entry ~64 + key + 100 bytes).
        let mut stored = 0;
        loop {
            match store.set(&format!("k{stored:03}"), vec![0u8; 100]) {
                Ok(()) => stored += 1,
                Err(StoreError::Oom { used, limit }) => {
                    assert!(used > limit, "used={used} limit={limit}");
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(stored < 100, "OOM never hit");
        }
        assert!(stored >= 2, "at least a few writes fit under 512 bytes");
        // Reads, deletions and TTL changes stay allowed over budget.
        assert!(store.get("k000").unwrap().is_some());
        assert!(store.expire_in("k000", Duration::from_secs(60)).unwrap());
        assert!(store.delete("k000").unwrap());
        assert_eq!(store.stats().db.evicted_keys, 0);
    }

    #[test]
    fn sampled_eviction_keeps_shards_under_budget() {
        for policy in [EvictionPolicy::SampledLru, EvictionPolicy::SampledRandom] {
            let store = KvStore::open(
                StoreConfig::in_memory()
                    .shards(4)
                    .rng_seed(11)
                    .max_memory(16 * 1024)
                    .eviction_policy(policy),
            )
            .unwrap();
            for i in 0..400 {
                store.set(&format!("k{i:04}"), vec![0u8; 100]).unwrap();
            }
            let stats = store.stats();
            assert!(
                stats.db.mem_bytes <= 16 * 1024,
                "{policy}: mem {} exceeds ceiling",
                stats.db.mem_bytes
            );
            assert!(stats.db.evicted_keys > 0, "{policy}: nothing evicted");
            assert_eq!(store.len() as u64 + stats.db.evicted_keys, 400);
        }
    }

    #[test]
    fn evictions_are_journaled_and_replay_to_same_state() {
        let dir = std::env::temp_dir().join(format!("kvstore-evict-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("evict.aof");
        let _ = std::fs::remove_file(&path);
        let canonical = {
            let store = KvStore::open(
                StoreConfig::with_aof(&path)
                    .shards(2)
                    .rng_seed(7)
                    .max_memory(8 * 1024)
                    .eviction_policy(EvictionPolicy::SampledLru),
            )
            .unwrap();
            for i in 0..200 {
                store.set(&format!("k{i:04}"), vec![1u8; 100]).unwrap();
            }
            assert!(store.stats().db.evicted_keys > 0);
            store.fsync().unwrap();
            store.canonical_state()
        };
        // Crash-replay of a journal containing eviction DELs reproduces
        // the same keyspace — the replayer itself never evicts (the DELs
        // carry the decisions), so replay with no maxmemory must converge.
        let reopened = KvStore::open(StoreConfig::with_aof(&path).shards(2)).unwrap();
        assert_eq!(reopened.canonical_state(), canonical);
        assert_eq!(reopened.stats().db.evicted_keys, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_on_different_shards() {
        let store = KvStore::open(StoreConfig::in_memory().shards(8)).unwrap();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let store = store.clone();
                scope.spawn(move || {
                    for i in 0..200 {
                        let key = format!("t{t}:k{i}");
                        store.set(&key, vec![t as u8]).unwrap();
                        assert_eq!(store.get(&key).unwrap(), Some(vec![t as u8]));
                    }
                });
            }
        });
        assert_eq!(store.len(), 8 * 200);
        let stats = store.stats();
        assert_eq!(stats.writes, 8 * 200);
        assert_eq!(stats.reads, 8 * 200);
    }
}
