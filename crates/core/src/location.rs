//! Data-location management (Article 46).
//!
//! GDPR restricts transfers of personal data to jurisdictions without
//! adequate protection. At the storage layer that translates into two
//! capabilities the paper lists in Table 1: *know* where each value lives
//! (the region field in [`crate::metadata::PersonalMetadata`]) and
//! *restrict* where it may be placed or replicated ([`LocationPolicy`]).

use std::collections::BTreeSet;

use crate::metadata::Region;

/// Placement restrictions for personal data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocationPolicy {
    /// Regions where personal data may be stored. An empty set means no
    /// restriction (any region allowed).
    allowed: BTreeSet<Region>,
}

impl LocationPolicy {
    /// No restrictions (the unmodified baseline).
    #[must_use]
    pub fn unrestricted() -> Self {
        LocationPolicy {
            allowed: BTreeSet::new(),
        }
    }

    /// Only EU placement allowed.
    #[must_use]
    pub fn eu_only() -> Self {
        Self::restricted_to([Region::Eu])
    }

    /// Placement restricted to the given regions.
    pub fn restricted_to(regions: impl IntoIterator<Item = Region>) -> Self {
        LocationPolicy {
            allowed: regions.into_iter().collect(),
        }
    }

    /// Whether this policy imposes no restriction.
    #[must_use]
    pub fn is_unrestricted(&self) -> bool {
        self.allowed.is_empty()
    }

    /// Whether placing data in `region` is permitted.
    #[must_use]
    pub fn allows(&self, region: Region) -> bool {
        self.allowed.is_empty() || self.allowed.contains(&region)
    }

    /// The allowed regions (empty = all).
    #[must_use]
    pub fn allowed_regions(&self) -> Vec<Region> {
        self.allowed.iter().copied().collect()
    }

    /// Human-readable description for reports.
    #[must_use]
    pub fn describe(&self) -> String {
        if self.is_unrestricted() {
            "any region".to_string()
        } else {
            self.allowed
                .iter()
                .map(Region::as_str)
                .collect::<Vec<_>>()
                .join(", ")
        }
    }
}

impl Default for LocationPolicy {
    fn default() -> Self {
        Self::unrestricted()
    }
}

/// A per-region placement inventory: how many values live where. Produced
/// by the store so an operator can answer "where is personal data right
/// now?" — the *find* half of Article 46.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LocationInventory {
    counts: std::collections::BTreeMap<Region, u64>,
}

impl LocationInventory {
    /// Empty inventory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value stored in `region`.
    pub fn add(&mut self, region: Region) {
        *self.counts.entry(region).or_insert(0) += 1;
    }

    /// Number of values in `region`.
    #[must_use]
    pub fn count(&self, region: Region) -> u64 {
        self.counts.get(&region).copied().unwrap_or(0)
    }

    /// Total values across all regions.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Regions that hold at least one value but are not allowed by
    /// `policy` — i.e. Article 46 violations that need remediation.
    #[must_use]
    pub fn violations(&self, policy: &LocationPolicy) -> Vec<(Region, u64)> {
        self.counts
            .iter()
            .filter(|(region, count)| **count > 0 && !policy.allows(**region))
            .map(|(region, count)| (*region, *count))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrestricted_allows_everything() {
        let p = LocationPolicy::unrestricted();
        assert!(p.is_unrestricted());
        for r in [Region::Eu, Region::Us, Region::Apac, Region::Other] {
            assert!(p.allows(r));
        }
        assert_eq!(p.describe(), "any region");
        assert_eq!(LocationPolicy::default(), p);
    }

    #[test]
    fn eu_only_blocks_other_regions() {
        let p = LocationPolicy::eu_only();
        assert!(p.allows(Region::Eu));
        assert!(!p.allows(Region::Us));
        assert!(!p.allows(Region::Apac));
        assert!(!p.is_unrestricted());
        assert_eq!(p.allowed_regions(), vec![Region::Eu]);
        assert!(p.describe().contains("eu"));
    }

    #[test]
    fn multi_region_policy() {
        let p = LocationPolicy::restricted_to([Region::Eu, Region::Us]);
        assert!(p.allows(Region::Eu));
        assert!(p.allows(Region::Us));
        assert!(!p.allows(Region::Apac));
    }

    #[test]
    fn inventory_counts_and_violations() {
        let mut inv = LocationInventory::new();
        for _ in 0..3 {
            inv.add(Region::Eu);
        }
        inv.add(Region::Us);
        assert_eq!(inv.count(Region::Eu), 3);
        assert_eq!(inv.count(Region::Us), 1);
        assert_eq!(inv.count(Region::Apac), 0);
        assert_eq!(inv.total(), 4);

        let violations = inv.violations(&LocationPolicy::eu_only());
        assert_eq!(violations, vec![(Region::Us, 1)]);
        assert!(inv.violations(&LocationPolicy::unrestricted()).is_empty());
    }
}
