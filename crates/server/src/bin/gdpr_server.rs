//! The `gdpr-server` binary: a real RESP-over-TCP server over the
//! reproduction's storage engine, with the compliance layer optional.
//!
//! Usage (all arguments optional, `key=value` form):
//!
//! ```text
//! gdpr-server [addr=127.0.0.1:6379] [shards=1] [fsync=everysec]
//!             [compliance=1] [transport=reactor|threads] [workers=0]
//!             [maxconns=0|N] [readtimeout=secs] [aof=mem|none|<path>]
//!             [groupcommit=1] [gcwait=2] [index=wheel|btree]
//!             [replicaof=host:port] [backlog=records]
//!             [grant=actor:purpose[,actor:purpose...]] [duration=secs]
//!             [metrics=host:port] [slowlog=micros] [slowlogmax=N]
//!             [maxmemory=bytes] [evict=noeviction|lru|random] [hotcache=1]
//! ```
//!
//! * `compliance` — 0 = raw engine (plain Redis surface only), 1 =
//!   eventual policy, 2 = strict policy.
//! * `transport` — `reactor` (default; also via `GDPR_TRANSPORT`): the
//!   event-driven connection layer (epoll reactor + worker pool), or
//!   `threads`: one OS thread per connection.
//! * `workers` — reactor worker threads (0 = `min(cores, shards)`).
//! * `maxconns` — connection cap; over-limit clients receive a final
//!   `-ERR max connections reached` frame. Defaults to unlimited (0) on
//!   the reactor and 1024 on the threads transport.
//! * `readtimeout` — idle timeout in seconds, measured from the last
//!   *complete* request frame (default 30).
//! * `fsync` — `always`, `everysec` or `none` (journal fsync policy).
//!   With per-shard journal segments and group commit, `fsync=always` is
//!   now a viable serving configuration: concurrent connections share
//!   fsyncs instead of re-serializing on one journal writer.
//! * `aof` — `mem` (default: in-memory journal), `none`, or a file path
//!   (the path becomes the segment-set manifest; segments live next to
//!   it as `<path>.e<epoch>.s<shard>`).
//! * `groupcommit` — 1 (default) batches concurrent `always` fsyncs per
//!   segment; 0 reverts to one fsync per record.
//! * `gcwait` — group-commit follower wait bound in milliseconds.
//! * `index` — deadline index serving strict expiry: `wheel` (default,
//!   the hierarchical timer wheel — O(1) TTL insert/reschedule) or
//!   `btree` (the original O(log n) index, kept as a baseline).
//! * `replicaof` — follow a primary at `host:port`: full-sync on connect,
//!   then apply its journal stream; writes to this server are rejected
//!   with a redirect error. Replication lag is in `INFO`/`GDPR.STATS`.
//! * `backlog` — records the primary retains in memory for replica
//!   tailing (a replica lagging further full-resyncs; default 65536).
//! * `grant` — access grants to install at startup, e.g.
//!   `grant=ycsb:benchmarking` (grants can also be installed over the wire
//!   with `GDPR.GRANT`). On a replica, grants stay node-local: install
//!   them on each replica its readers authenticate against.
//! * `duration` — auto-shutdown after N seconds (0 = run until a client
//!   sends `SHUTDOWN` or the process is signalled).
//! * `metrics` — serve Prometheus text exposition at
//!   `http://host:port/metrics` from a tiny accept thread (off unless
//!   given; `metrics=127.0.0.1:0` picks a free port and prints it).
//! * `slowlog` — slow-request threshold in microseconds (default 10000;
//!   0 logs every request, negative disables). Query over the wire with
//!   `SLOWLOG GET|LEN|RESET`.
//! * `slowlogmax` — retained slowlog entries (default 128).
//! * `maxmemory` — keyspace memory ceiling in bytes, split evenly across
//!   shards (0 = unlimited, the default). Over the ceiling the behaviour
//!   is `evict`'s choice; evictions are journaled as deletes, so replicas
//!   and crash replay converge byte-for-byte.
//! * `evict` — over-`maxmemory` policy: `noeviction` (default; growth
//!   commands get Redis' `-OOM` reply), `lru` (sampled least-recently
//!   accessed) or `random` (sampled random).
//! * `hotcache` — 1 (default) enables the compliance layer's TinyLFU
//!   hot-read cache, 0 disables it; overrides the `GDPR_HOT_CACHE`
//!   environment variable. Ignored with `compliance=0` (the raw engine
//!   has no compliance slow path to cache around).
//!
//! The server exits cleanly when a client sends `SHUTDOWN`: in-flight
//! requests are answered, every connection thread is joined, and the final
//! request counters are printed.

use std::sync::Arc;
use std::time::Duration;

use audit::sink::NullSink;
use gdpr_core::acl::Grant;
use gdpr_core::policy::CompliancePolicy;
use gdpr_core::store::GdprStore;
use gdpr_server::dispatch::Dispatcher;
use gdpr_server::tcp::{ServerConfig, TcpServer, Transport};
use kvstore::aof::FsyncPolicy;
use kvstore::config::StoreConfig;
use kvstore::store::KvStore;

fn arg_str<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter().find_map(|a| a.strip_prefix(&format!("{key}=")))
}

fn arg_u64(args: &[String], key: &str) -> Option<u64> {
    arg_str(args, key).and_then(|v| v.parse().ok())
}

fn arg_i64(args: &[String], key: &str) -> Option<i64> {
    arg_str(args, key).and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = arg_str(&args, "addr")
        .unwrap_or("127.0.0.1:6379")
        .to_string();
    let shards = arg_u64(&args, "shards").unwrap_or(1) as usize;
    let compliance = arg_u64(&args, "compliance").unwrap_or(1);
    let transport = arg_str(&args, "transport")
        .map(|label| {
            Transport::parse(label).unwrap_or_else(|| {
                eprintln!("  unknown transport {label:?} (want reactor|threads), using reactor");
                Transport::Reactor
            })
        })
        .unwrap_or_else(Transport::from_env_or_default);
    // The reactor holds a connection for the cost of one descriptor, so
    // its default is uncapped; thread-per-connection defaults to 1024.
    let max_connections = arg_u64(&args, "maxconns").unwrap_or(match transport {
        Transport::Reactor => 0,
        Transport::Threads => 1024,
    }) as usize;
    let duration_secs = arg_u64(&args, "duration").unwrap_or(0);
    // "10k connections" dies at the distro-default 1024 descriptors
    // without this; best effort (the hard limit caps it). Raised for both
    // transports so `maxconns` is an honest knob on either.
    let _ = polling::raise_nofile_limit(65536);

    let fsync = match arg_str(&args, "fsync").unwrap_or("everysec") {
        "always" => FsyncPolicy::Always,
        "none" | "never" | "no" => FsyncPolicy::Never,
        _ => FsyncPolicy::EverySec,
    };

    let group_commit = arg_u64(&args, "groupcommit").unwrap_or(1) != 0;
    let index = arg_str(&args, "index")
        .map(|label| {
            kvstore::ttl_wheel::DeadlineIndexKind::parse(label).unwrap_or_else(|| {
                eprintln!("  unknown index {label:?} (want wheel|btree), using wheel");
                kvstore::ttl_wheel::DeadlineIndexKind::Wheel
            })
        })
        .unwrap_or_default();
    let max_memory = arg_u64(&args, "maxmemory").unwrap_or(0);
    let evict = arg_str(&args, "evict")
        .map(|label| {
            kvstore::config::EvictionPolicy::parse(label).unwrap_or_else(|| {
                eprintln!(
                    "  unknown eviction policy {label:?} (want noeviction|lru|random), \
                     using noeviction"
                );
                kvstore::config::EvictionPolicy::Noeviction
            })
        })
        .unwrap_or_default();
    let mut config = StoreConfig::in_memory()
        .shards(shards)
        .fsync(fsync)
        .group_commit(group_commit)
        .deadline_index(index)
        .max_memory(max_memory)
        .eviction_policy(evict);
    if let Some(wait_ms) = arg_u64(&args, "gcwait") {
        config = config.group_commit_wait_ms(wait_ms);
    }
    if let Some(records) = arg_u64(&args, "backlog") {
        config = config.repl_backlog(records);
    }
    match arg_str(&args, "aof").unwrap_or("mem") {
        "mem" => config = config.aof_in_memory(),
        "none" => {}
        path => config.persistence = kvstore::config::Persistence::AofFile(path.into()),
    }
    if max_memory > 0 {
        println!("gdpr-server: maxmemory {max_memory} bytes, eviction policy {evict}");
    }

    let dispatcher = if compliance == 0 {
        let store = KvStore::open(config).expect("open storage engine");
        println!(
            "gdpr-server: raw engine, {shards} shard(s), fsync {fsync:?}, group commit {}, \
             ttl index {index}",
            if group_commit { "on" } else { "off" }
        );
        Dispatcher::kv(store)
    } else {
        let mut policy = if compliance >= 2 {
            CompliancePolicy::strict()
        } else {
            CompliancePolicy::eventual()
        };
        policy.journal_fsync = fsync;
        println!(
            "gdpr-server: compliance policy '{}', {shards} shard(s), fsync {fsync:?}, \
             ttl index {index}",
            policy.name
        );
        let mut store =
            GdprStore::open(policy, config, Box::new(NullSink::new())).expect("open GDPR store");
        // The flag overrides GDPR_HOT_CACHE; no flag keeps the
        // environment's (or default-on) choice made at open.
        if let Some(hotcache) = arg_u64(&args, "hotcache") {
            store.set_hot_cache(
                gdpr_core::hot_cache::HotCacheConfig::default().enabled(hotcache != 0),
            );
        }
        println!(
            "  hot-read cache {}",
            if store.hot_cache_enabled() {
                "enabled"
            } else {
                "disabled"
            }
        );
        if let Some(grants) = arg_str(&args, "grant") {
            for pair in grants.split(',').filter(|p| !p.is_empty()) {
                if let Some((actor, purpose)) = pair.split_once(':') {
                    store.grant(Grant::new(actor, purpose));
                    println!("  grant installed: {actor} -> {purpose}");
                } else {
                    eprintln!("  ignoring malformed grant {pair:?} (want actor:purpose)");
                }
            }
        }
        Dispatcher::gdpr(Arc::new(store))
    };
    let slowlog_threshold =
        arg_i64(&args, "slowlog").unwrap_or(gdpr_server::metrics::DEFAULT_SLOWLOG_THRESHOLD_MICROS);
    let slowlog_max = arg_u64(&args, "slowlogmax")
        .unwrap_or(gdpr_server::metrics::DEFAULT_SLOWLOG_MAX_LEN as u64)
        as usize;
    let dispatcher = dispatcher.with_metrics(Arc::new(gdpr_server::metrics::ServerMetrics::new(
        slowlog_threshold,
        slowlog_max,
    )));

    let mut server_config = ServerConfig {
        transport,
        max_connections,
        workers: arg_u64(&args, "workers").unwrap_or(0) as usize,
        ..ServerConfig::default()
    };
    if let Some(secs) = arg_u64(&args, "readtimeout") {
        server_config.read_timeout = Duration::from_secs(secs);
    }
    let server = TcpServer::bind(dispatcher, addr.as_str(), server_config).expect("bind listener");
    let metrics_handle = arg_str(&args, "metrics").map(|metrics_addr| {
        let listener = gdpr_server::metrics_http::MetricsServer::start(
            metrics_addr,
            server.dispatcher().clone(),
        )
        .expect("bind metrics listener");
        println!(
            "gdpr-server: Prometheus metrics at http://{}/metrics",
            listener.local_addr()
        );
        listener
    });
    let replica_handle = arg_str(&args, "replicaof").map(|primary| {
        println!("gdpr-server: replica of {primary} (writes will be redirected)");
        gdpr_server::replication::start_replica(server.dispatcher().clone(), primary)
    });
    println!(
        "gdpr-server: listening on {} (transport={transport}, maxconns={max_connections}); \
         send SHUTDOWN to stop",
        server.local_addr()
    );

    if duration_secs > 0 {
        let deadline = std::time::Instant::now() + Duration::from_secs(duration_secs);
        while !server.is_shutdown_requested() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(100));
        }
        server.request_shutdown();
    } else {
        server.wait_for_shutdown_request(Duration::from_millis(100));
    }

    if let Some(handle) = replica_handle {
        handle.stop();
    }
    if let Some(listener) = metrics_handle {
        listener.shutdown();
    }
    let dispatch = server.dispatcher().stats();
    let transport = server.transport_stats();
    server.shutdown();
    println!(
        "gdpr-server: stopped; {} requests ({} errors), {} connections accepted, {} rejected",
        dispatch.requests, dispatch.errors, transport.accepted, transport.rejected
    );
}
