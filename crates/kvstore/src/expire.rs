//! Expiration policies and the active-expiry cycle.
//!
//! The paper's Figure 2 contrasts two behaviours:
//!
//! * **Lazy / probabilistic** — stock Redis: ten times a second, sample 20
//!   random keys that carry a TTL, delete the expired ones, and only repeat
//!   immediately if at least a quarter of the sample had expired. Expired
//!   keys that are never sampled (or accessed) linger — for hours once the
//!   database holds ≥100k keys.
//! * **Strict** — the paper's modified Redis: enumerate every key whose
//!   deadline has passed and erase it in the same cycle, which our engine
//!   serves from a per-shard deadline index in `O(expired)`.
//!
//! The deadline index behind strict mode is, by default, a **hierarchical
//! timer wheel** ([`crate::ttl_wheel`]): 4 levels × 256 slots at 1 ms base
//! resolution, so registering or rescheduling a TTL is `O(1)` instead of
//! the `O(log n)` BTree insert every TTL'd write used to pay under the
//! shard lock. Advancing the wheel visits only the slots the cursor
//! passes, **cascading** entries from coarse levels into finer ones (at
//! most 3 cascades per entry); deadlines beyond the top level (~50 days)
//! park in an overflow heap and fire straight from it. Removals and
//! reschedules are lazy — a generation check drops stale entries when
//! their slot is visited — so an overwritten TTL can never fire at its
//! stale deadline. The original BTree index remains available via
//! [`crate::config::StoreConfig::deadline_index`] and pins the wheel's
//! semantics in the differential/property suite
//! (`tests/ttl_wheel_differential.rs`).
//!
//! [`run_expire_cycle`] executes one 100 ms tick of either policy;
//! [`ErasureSimulator`] replays the whole Figure 2 experiment on a
//! simulated clock.

use rand::Rng;

use crate::clock::{Clock, SimClock};
use crate::db::Db;

/// How aggressively the engine erases keys whose TTL has elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExpiryMode {
    /// Redis' default probabilistic sampling (eventual compliance).
    #[default]
    LazyProbabilistic,
    /// Full sweep of the expired-deadline index on every cycle (the paper's
    /// strict / real-time compliance modification).
    Strict,
    /// Never actively expire; keys are only reclaimed lazily on access.
    /// Included as a baseline for the ablation benchmarks.
    AccessOnly,
}

/// Tunables of the probabilistic cycle, defaulting to the values stock
/// Redis 4.x uses (and the paper quotes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveExpireConfig {
    /// Period between cycles in milliseconds (Redis: 100 ms, i.e. 10 Hz).
    pub period_ms: u64,
    /// Keys sampled per iteration (Redis: 20).
    pub sample_size: usize,
    /// Iteration repeats immediately while at least this many of the
    /// sampled keys were expired (Redis: a quarter of the sample, i.e. 5).
    pub repeat_threshold: usize,
    /// Upper bound on immediate repeats within one cycle, standing in for
    /// Redis' 25 ms CPU-time cap so a single cycle cannot monopolise the
    /// server.
    pub max_iterations_per_cycle: usize,
}

impl Default for ActiveExpireConfig {
    fn default() -> Self {
        ActiveExpireConfig {
            period_ms: 100,
            sample_size: 20,
            repeat_threshold: 5,
            max_iterations_per_cycle: 16,
        }
    }
}

/// Outcome of one expiry cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleOutcome {
    /// Keys physically erased during this cycle.
    pub removed: Vec<String>,
    /// Number of sampling iterations performed (1 for strict mode).
    pub iterations: usize,
    /// Number of keys examined.
    pub examined: usize,
}

/// Run one expiry cycle at the database's current time.
///
/// For [`ExpiryMode::LazyProbabilistic`] this is the inner loop the paper
/// describes; for [`ExpiryMode::Strict`] it is a full sweep of the expired
/// prefix of the deadline index; for [`ExpiryMode::AccessOnly`] it does
/// nothing.
pub fn run_expire_cycle<R: Rng + ?Sized>(
    db: &mut Db,
    mode: ExpiryMode,
    config: &ActiveExpireConfig,
    rng: &mut R,
) -> CycleOutcome {
    match mode {
        ExpiryMode::AccessOnly => CycleOutcome::default(),
        ExpiryMode::Strict => {
            let removed = db.strict_expire_sweep();
            CycleOutcome {
                examined: removed.len(),
                iterations: 1,
                removed,
            }
        }
        ExpiryMode::LazyProbabilistic => {
            let mut outcome = CycleOutcome::default();
            loop {
                outcome.iterations += 1;
                let (sampled, removed) = db.active_expire_sample(rng, config.sample_size);
                outcome.examined += sampled;
                let removed_now = removed.len();
                outcome.removed.extend(removed);
                let keep_going = removed_now >= config.repeat_threshold
                    && outcome.iterations < config.max_iterations_per_cycle
                    && db.expires_len() > 0;
                if !keep_going {
                    break;
                }
            }
            outcome
        }
    }
}

/// Result of an [`ErasureSimulator`] run: how long it took (in simulated
/// time) until every key that had already expired was physically erased.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErasureReport {
    /// Simulated milliseconds from the start of the measurement until the
    /// last expired key was erased.
    pub erase_millis: u64,
    /// Number of keys that had to be erased.
    pub erased_keys: usize,
    /// Number of expiry cycles that ran.
    pub cycles: u64,
    /// Total keys examined by the sampling across all cycles.
    pub keys_examined: u64,
}

impl ErasureReport {
    /// Erasure delay in simulated seconds (the unit Figure 2 uses).
    #[must_use]
    pub fn erase_seconds(&self) -> f64 {
        self.erase_millis as f64 / 1000.0
    }
}

/// Drives the expiry cycle against a simulated clock until no expired key
/// remains, reporting the simulated delay — the exact measurement behind
/// Figure 2 of the paper.
#[derive(Debug)]
pub struct ErasureSimulator {
    mode: ExpiryMode,
    config: ActiveExpireConfig,
    /// Safety valve so a mis-configured run cannot loop forever
    /// (simulated milliseconds).
    pub max_simulated_millis: u64,
}

impl ErasureSimulator {
    /// Create a simulator for the given policy.
    #[must_use]
    pub fn new(mode: ExpiryMode, config: ActiveExpireConfig) -> Self {
        ErasureSimulator {
            mode,
            config,
            max_simulated_millis: 1_000 * 3600 * 24 * 30,
        }
    }

    /// Advance simulated time in `period_ms` steps, running one expiry
    /// cycle per step, until no already-expired key remains (or the safety
    /// limit is hit). Keys that expire *during* the simulation are erased
    /// too, and counted.
    pub fn run<R: Rng + ?Sized>(
        &self,
        db: &mut Db,
        clock: &SimClock,
        rng: &mut R,
    ) -> ErasureReport {
        let start = clock.now_millis();
        let mut cycles = 0u64;
        let mut erased = 0usize;
        let mut examined = 0u64;
        let mut last_erase_offset = 0u64;

        while db.pending_expired_len() > 0 {
            if clock.now_millis() - start > self.max_simulated_millis {
                break;
            }
            clock.advance_millis(self.config.period_ms);
            let outcome = run_expire_cycle(db, self.mode, &self.config, rng);
            cycles += 1;
            examined += outcome.examined as u64;
            if !outcome.removed.is_empty() {
                erased += outcome.removed.len();
                last_erase_offset = clock.now_millis() - start;
            }
        }

        ErasureReport {
            erase_millis: last_erase_offset,
            erased_keys: erased,
            cycles,
            keys_examined: examined,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// Build a DB with `total` keys, a `short_frac` fraction expiring after
    /// `short_ttl_ms` and the rest after `long_ttl_ms` (the Figure 2 setup:
    /// 20 % at 5 minutes, 80 % at 5 days).
    fn populate(
        total: usize,
        short_frac: f64,
        short_ttl_ms: u64,
        long_ttl_ms: u64,
    ) -> (Db, SimClock) {
        let clock = SimClock::new(0);
        let mut db = Db::new(Arc::new(clock.clone()));
        let short_count = (total as f64 * short_frac).round() as usize;
        for i in 0..total {
            let key = format!("key{i:08}");
            db.set(&key, vec![0u8; 16]);
            let ttl = if i < short_count {
                short_ttl_ms
            } else {
                long_ttl_ms
            };
            db.expire_in_millis(&key, ttl);
        }
        (db, clock)
    }

    #[test]
    fn strict_mode_erases_everything_in_one_cycle() {
        let (mut db, clock) = populate(1_000, 0.2, 1_000, 10_000_000);
        clock.advance_millis(1_001);
        let mut rng = StdRng::seed_from_u64(1);
        let out = run_expire_cycle(
            &mut db,
            ExpiryMode::Strict,
            &ActiveExpireConfig::default(),
            &mut rng,
        );
        assert_eq!(out.removed.len(), 200);
        assert_eq!(out.iterations, 1);
        assert_eq!(db.pending_expired_len(), 0);
    }

    #[test]
    fn access_only_mode_never_erases() {
        let (mut db, clock) = populate(100, 1.0, 10, 1_000);
        clock.advance_millis(50_000);
        let mut rng = StdRng::seed_from_u64(1);
        let out = run_expire_cycle(
            &mut db,
            ExpiryMode::AccessOnly,
            &ActiveExpireConfig::default(),
            &mut rng,
        );
        assert!(out.removed.is_empty());
        assert_eq!(db.len(), 100, "keys linger until accessed");
    }

    #[test]
    fn lazy_mode_repeats_while_many_expired() {
        // Everything expired: the cycle should iterate more than once.
        let (mut db, clock) = populate(500, 1.0, 10, 10);
        clock.advance_millis(100);
        let mut rng = StdRng::seed_from_u64(7);
        let out = run_expire_cycle(
            &mut db,
            ExpiryMode::LazyProbabilistic,
            &ActiveExpireConfig::default(),
            &mut rng,
        );
        assert!(
            out.iterations > 1,
            "expired-heavy sample must trigger repeats"
        );
        assert!(!out.removed.is_empty());
    }

    #[test]
    fn simulator_strict_is_subsecond() {
        let (mut db, clock) = populate(10_000, 0.2, 300_000, 432_000_000);
        clock.advance_millis(300_000); // jump to just past the short TTL
        let mut rng = StdRng::seed_from_u64(3);
        let sim = ErasureSimulator::new(ExpiryMode::Strict, ActiveExpireConfig::default());
        let report = sim.run(&mut db, &clock, &mut rng);
        assert_eq!(report.erased_keys, 2_000);
        assert!(
            report.erase_seconds() < 1.0,
            "strict erasure must be sub-second"
        );
    }

    #[test]
    fn simulator_lazy_delay_grows_with_db_size() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut delays = Vec::new();
        for &total in &[1_000usize, 4_000] {
            let (mut db, clock) = populate(total, 0.2, 300_000, 432_000_000);
            clock.advance_millis(300_000);
            let sim =
                ErasureSimulator::new(ExpiryMode::LazyProbabilistic, ActiveExpireConfig::default());
            let report = sim.run(&mut db, &clock, &mut rng);
            assert_eq!(report.erased_keys, total / 5);
            delays.push(report.erase_seconds());
        }
        assert!(
            delays[1] > delays[0] * 2.0,
            "erasure delay should grow super-linearly-ish with DB size: {delays:?}"
        );
    }

    #[test]
    fn simulator_counts_cycles_and_examined_keys() {
        let (mut db, clock) = populate(200, 0.5, 1_000, 100_000_000);
        clock.advance_millis(1_500);
        let mut rng = StdRng::seed_from_u64(5);
        let sim =
            ErasureSimulator::new(ExpiryMode::LazyProbabilistic, ActiveExpireConfig::default());
        let report = sim.run(&mut db, &clock, &mut rng);
        assert!(report.cycles > 0);
        assert!(report.keys_examined >= report.erased_keys as u64);
        assert_eq!(db.pending_expired_len(), 0);
    }

    #[test]
    fn default_config_matches_redis_constants() {
        let c = ActiveExpireConfig::default();
        assert_eq!(c.period_ms, 100);
        assert_eq!(c.sample_size, 20);
        assert_eq!(c.repeat_threshold, 5);
    }
}
