//! The device layer: where persisted bytes actually go.
//!
//! The paper encrypts data at rest by putting Redis' working directory on a
//! LUKS volume, so *every byte* the engine persists is encrypted by the
//! block layer. We reproduce that with a [`StorageDevice`] abstraction: the
//! AOF and snapshot writers talk to a device, and the
//! [`EncryptedFileDevice`] seals each appended chunk with
//! ChaCha20-Poly1305 before it reaches the file — same code path
//! (CPU per persisted byte), different mechanism.
//!
//! Three implementations are provided:
//!
//! * [`MemoryDevice`] — a growable buffer, for tests and for benchmarks
//!   that want to isolate CPU cost from disk cost.
//! * [`PlainFileDevice`] — an ordinary file with explicit `fsync`.
//! * [`EncryptedFileDevice`] — the LUKS stand-in.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use gdpr_crypto::aead::ChaCha20Poly1305;
use gdpr_crypto::kdf::derive_key;
use parking_lot::Mutex;

use crate::{Result, StoreError};

/// Counters describing device activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Number of `append` calls.
    pub appends: u64,
    /// Logical bytes handed to the device by callers.
    pub bytes_written: u64,
    /// Physical bytes written to the backing store (larger than
    /// `bytes_written` for the encrypted device because of nonces/tags).
    pub bytes_on_device: u64,
    /// Number of `sync` calls that reached the backing store.
    pub syncs: u64,
}

/// A byte sink with explicit durability and full-content reads.
///
/// The engine only needs append, sync, full read (for recovery) and full
/// replace (for AOF rewrite / snapshot), which keeps the trait small enough
/// for an encrypted implementation to wrap every operation.
pub trait StorageDevice: Send + std::fmt::Debug {
    /// Append a chunk of bytes to the device.
    fn append(&mut self, data: &[u8]) -> Result<()>;

    /// Force all previously appended bytes to durable storage.
    fn sync(&mut self) -> Result<()>;

    /// Read the entire logical content of the device (decrypted).
    fn read_all(&mut self) -> Result<Vec<u8>>;

    /// Atomically replace the device content with `data` (used by AOF
    /// rewrite and snapshot save).
    fn replace(&mut self, data: &[u8]) -> Result<()>;

    /// Logical size in bytes (what `read_all` would return).
    fn logical_len(&self) -> u64;

    /// Activity counters.
    fn stats(&self) -> DeviceStats;
}

// ---------------------------------------------------------------------------

/// An in-memory device; never durable, infinitely fast.
#[derive(Debug, Default, Clone)]
pub struct MemoryDevice {
    buf: Arc<Mutex<Vec<u8>>>,
    stats: DeviceStats,
}

impl MemoryDevice {
    /// Create an empty in-memory device.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A handle sharing the same backing buffer (lets tests inspect what a
    /// writer persisted).
    #[must_use]
    pub fn share(&self) -> MemoryDevice {
        MemoryDevice {
            buf: Arc::clone(&self.buf),
            stats: DeviceStats::default(),
        }
    }
}

impl StorageDevice for MemoryDevice {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.buf.lock().extend_from_slice(data);
        self.stats.appends += 1;
        self.stats.bytes_written += data.len() as u64;
        self.stats.bytes_on_device += data.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.stats.syncs += 1;
        Ok(())
    }

    fn read_all(&mut self) -> Result<Vec<u8>> {
        Ok(self.buf.lock().clone())
    }

    fn replace(&mut self, data: &[u8]) -> Result<()> {
        let mut buf = self.buf.lock();
        buf.clear();
        buf.extend_from_slice(data);
        self.stats.bytes_written += data.len() as u64;
        self.stats.bytes_on_device = data.len() as u64;
        Ok(())
    }

    fn logical_len(&self) -> u64 {
        self.buf.lock().len() as u64
    }

    fn stats(&self) -> DeviceStats {
        self.stats
    }
}

// ---------------------------------------------------------------------------

/// A plain file-backed device with explicit `fsync`.
#[derive(Debug)]
pub struct PlainFileDevice {
    path: PathBuf,
    file: File,
    stats: DeviceStats,
}

impl PlainFileDevice {
    /// Open (creating if necessary) the file at `path` in append mode.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from opening the file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        Ok(PlainFileDevice {
            path,
            file,
            stats: DeviceStats::default(),
        })
    }

    /// Path of the backing file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl StorageDevice for PlainFileDevice {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.file.write_all(data)?;
        self.stats.appends += 1;
        self.stats.bytes_written += data.len() as u64;
        self.stats.bytes_on_device += data.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        self.stats.syncs += 1;
        Ok(())
    }

    fn read_all(&mut self) -> Result<Vec<u8>> {
        self.file.flush()?;
        let mut f = File::open(&self.path)?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn replace(&mut self, data: &[u8]) -> Result<()> {
        // Write to a temporary sibling file and rename over the original so
        // a crash mid-rewrite never loses the old AOF — the same strategy
        // Redis' BGREWRITEAOF uses.
        let tmp_path = self.path.with_extension("rewrite.tmp");
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(data)?;
            tmp.sync_data()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        self.file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&self.path)?;
        self.file.seek(SeekFrom::End(0))?;
        self.stats.bytes_written += data.len() as u64;
        self.stats.bytes_on_device = data.len() as u64;
        Ok(())
    }

    fn logical_len(&self) -> u64 {
        std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0)
    }

    fn stats(&self) -> DeviceStats {
        self.stats
    }
}

// ---------------------------------------------------------------------------

/// Framed, authenticated encryption over any inner device — the LUKS
/// simulation.
///
/// Every `append` becomes one frame on the inner device:
/// `u32 frame_len || 12-byte nonce || ciphertext || 16-byte tag`.
/// `read_all` walks the frames, authenticates and decrypts each, and
/// returns the concatenated plaintext.
#[derive(Debug)]
pub struct EncryptedFileDevice<D: StorageDevice> {
    inner: D,
    aead: ChaCha20Poly1305,
    /// Monotonic counter mixed into each nonce so frames never reuse one.
    frame_counter: u64,
    logical_len: u64,
    stats: DeviceStats,
}

impl<D: StorageDevice> EncryptedFileDevice<D> {
    /// Wrap `inner`, deriving the data key from a passphrase the way LUKS
    /// derives a volume key.
    pub fn new(inner: D, passphrase: &[u8]) -> Result<Self> {
        let key = derive_key(b"gdpr-kvstore-device", passphrase, b"data-at-rest");
        let mut device = EncryptedFileDevice {
            inner,
            aead: ChaCha20Poly1305::new(&key),
            frame_counter: 0,
            logical_len: 0,
            stats: DeviceStats::default(),
        };
        // Recover logical length and the next safe nonce counter from any
        // existing frames.
        let existing = device.read_all()?;
        device.logical_len = existing.len() as u64;
        Ok(device)
    }

    fn next_nonce(&mut self) -> [u8; 12] {
        self.frame_counter += 1;
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&self.frame_counter.to_le_bytes());
        gdpr_crypto::fill_random(&mut nonce[8..]);
        nonce
    }

    fn encode_frame(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let nonce = self.next_nonce();
        let sealed = self.aead.seal(&nonce, b"kvstore-frame", plaintext);
        let mut frame = Vec::with_capacity(4 + 12 + sealed.len());
        frame.extend_from_slice(&((12 + sealed.len()) as u32).to_le_bytes());
        frame.extend_from_slice(&nonce);
        frame.extend_from_slice(&sealed);
        frame
    }

    fn decode_all(&mut self, raw: &[u8]) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        let mut frames = 0u64;
        while pos < raw.len() {
            if raw.len() - pos < 4 {
                return Err(StoreError::Corrupt {
                    context: "encrypted device",
                    detail: "truncated frame header".to_string(),
                });
            }
            let len =
                u32::from_le_bytes([raw[pos], raw[pos + 1], raw[pos + 2], raw[pos + 3]]) as usize;
            pos += 4;
            if raw.len() - pos < len || len < 12 {
                return Err(StoreError::Corrupt {
                    context: "encrypted device",
                    detail: format!("truncated frame body: need {len} bytes"),
                });
            }
            let mut nonce = [0u8; 12];
            nonce.copy_from_slice(&raw[pos..pos + 12]);
            let sealed = &raw[pos + 12..pos + len];
            let plain = self.aead.open(&nonce, b"kvstore-frame", sealed)?;
            out.extend_from_slice(&plain);
            pos += len;
            frames += 1;
        }
        // Resume the nonce counter past anything already on the device.
        self.frame_counter = self.frame_counter.max(frames);
        Ok(out)
    }
}

impl<D: StorageDevice> StorageDevice for EncryptedFileDevice<D> {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        let frame = self.encode_frame(data);
        self.inner.append(&frame)?;
        self.logical_len += data.len() as u64;
        self.stats.appends += 1;
        self.stats.bytes_written += data.len() as u64;
        self.stats.bytes_on_device += frame.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.inner.sync()?;
        self.stats.syncs += 1;
        Ok(())
    }

    fn read_all(&mut self) -> Result<Vec<u8>> {
        let raw = self.inner.read_all()?;
        self.decode_all(&raw)
    }

    fn replace(&mut self, data: &[u8]) -> Result<()> {
        let frame = self.encode_frame(data);
        self.inner.replace(&frame)?;
        self.logical_len = data.len() as u64;
        self.stats.bytes_written += data.len() as u64;
        self.stats.bytes_on_device = frame.len() as u64;
        Ok(())
    }

    fn logical_len(&self) -> u64 {
        self.logical_len
    }

    fn stats(&self) -> DeviceStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_device_roundtrip() {
        let mut d = MemoryDevice::new();
        d.append(b"hello ").unwrap();
        d.append(b"world").unwrap();
        d.sync().unwrap();
        assert_eq!(d.read_all().unwrap(), b"hello world");
        assert_eq!(d.logical_len(), 11);
        assert_eq!(d.stats().appends, 2);
        assert_eq!(d.stats().syncs, 1);
        d.replace(b"new").unwrap();
        assert_eq!(d.read_all().unwrap(), b"new");
    }

    #[test]
    fn memory_device_share_sees_writes() {
        let mut d = MemoryDevice::new();
        let mut view = d.share();
        d.append(b"abc").unwrap();
        assert_eq!(view.read_all().unwrap(), b"abc");
    }

    #[test]
    fn plain_file_device_roundtrip() {
        let dir = std::env::temp_dir().join(format!("kvstore-dev-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plain.aof");
        let _ = std::fs::remove_file(&path);
        {
            let mut d = PlainFileDevice::open(&path).unwrap();
            d.append(b"line1\n").unwrap();
            d.append(b"line2\n").unwrap();
            d.sync().unwrap();
            assert_eq!(d.read_all().unwrap(), b"line1\nline2\n");
            d.replace(b"compacted\n").unwrap();
            d.append(b"line3\n").unwrap();
            assert_eq!(d.read_all().unwrap(), b"compacted\nline3\n");
            assert_eq!(d.path(), path.as_path());
        }
        // Re-open: data survives.
        let mut d = PlainFileDevice::open(&path).unwrap();
        assert_eq!(d.read_all().unwrap(), b"compacted\nline3\n");
        assert_eq!(d.logical_len(), 16);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn encrypted_device_roundtrip_and_opacity() {
        let inner = MemoryDevice::new();
        let view = inner.share();
        let mut d = EncryptedFileDevice::new(inner, b"passphrase").unwrap();
        d.append(b"personal data 1").unwrap();
        d.append(b"personal data 2").unwrap();
        assert_eq!(d.read_all().unwrap(), b"personal data 1personal data 2");
        assert_eq!(d.logical_len(), 30);

        // Ciphertext on the inner device must not contain the plaintext.
        let mut view = view;
        let raw = view.read_all().unwrap();
        assert!(raw.len() > 30, "frames add nonce+tag overhead");
        assert!(!raw.windows(8).any(|w| w == b"personal"));
    }

    #[test]
    fn encrypted_device_reopen_with_same_passphrase() {
        let inner = MemoryDevice::new();
        let shared = inner.share();
        {
            let mut d = EncryptedFileDevice::new(inner, b"pw").unwrap();
            d.append(b"abc").unwrap();
            d.append(b"def").unwrap();
        }
        let mut reopened = EncryptedFileDevice::new(shared, b"pw").unwrap();
        assert_eq!(reopened.read_all().unwrap(), b"abcdef");
        assert_eq!(reopened.logical_len(), 6);
        // New appends after reopen still decrypt.
        reopened.append(b"ghi").unwrap();
        assert_eq!(reopened.read_all().unwrap(), b"abcdefghi");
    }

    #[test]
    fn encrypted_device_wrong_passphrase_fails() {
        let inner = MemoryDevice::new();
        let shared = inner.share();
        {
            let mut d = EncryptedFileDevice::new(inner, b"correct").unwrap();
            d.append(b"secret").unwrap();
        }
        let err = EncryptedFileDevice::new(shared, b"wrong").err();
        assert!(
            err.is_some(),
            "opening with the wrong passphrase must fail authentication"
        );
    }

    #[test]
    fn encrypted_device_detects_corruption() {
        let inner = MemoryDevice::new();
        let shared = inner.share();
        let mut d = EncryptedFileDevice::new(inner, b"pw").unwrap();
        d.append(b"important").unwrap();
        // Corrupt a ciphertext byte behind the device's back.
        {
            let mut raw = shared.buf.lock();
            let last = raw.len() - 1;
            raw[last] ^= 0xff;
        }
        assert!(d.read_all().is_err());
    }

    #[test]
    fn encrypted_device_replace_resets_content() {
        let mut d = EncryptedFileDevice::new(MemoryDevice::new(), b"pw").unwrap();
        d.append(b"old old old").unwrap();
        d.replace(b"fresh").unwrap();
        assert_eq!(d.read_all().unwrap(), b"fresh");
        assert_eq!(d.logical_len(), 5);
    }
}
