//! End-to-end primary → replica streaming replication.
//!
//! The paper's obligations are obligations *per copy*: timely deletion
//! only holds if an erasure on the primary reaches every replica. These
//! tests run a real TCP primary and in-process replica runners and pin:
//!
//! * full sync is portable across shard counts — primary at M shards,
//!   replica at N, byte-equivalent canonical state for all (M, N);
//! * `GDPR.ERASE` on the primary removes the key *and its metadata
//!   postings* on every connected replica;
//! * retention expiry (journaled `DEL`s from the primary's tick) reaches
//!   replicas whose own clocks never advanced;
//! * replicas reject writes with a redirect and expose their lag;
//! * a journal rewrite on the primary (which renumbers the stream)
//!   forces a full resync and the replica still converges.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use gdpr_storage::gdpr_core::acl::Grant;
use gdpr_storage::gdpr_core::policy::CompliancePolicy;
use gdpr_storage::gdpr_core::store::GdprStore;
use gdpr_storage::gdpr_server::client::TcpRemoteClient;
use gdpr_storage::gdpr_server::dispatch::Dispatcher;
use gdpr_storage::gdpr_server::replication::{self, ReplicaHandle};
use gdpr_storage::gdpr_server::tcp::{ServerConfig, TcpServer, TcpServerHandle};
use gdpr_storage::kvstore::config::{EvictionPolicy, StoreConfig};
use gdpr_storage::kvstore::store::KvStore;
use gdpr_storage::resp::command::GdprRequest;
use std::sync::Arc;

const CONVERGE_DEADLINE: Duration = Duration::from_secs(20);

fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + CONVERGE_DEADLINE;
    while !done() {
        assert!(
            Instant::now() < deadline,
            "timed out waiting for: {what} (after {CONVERGE_DEADLINE:?})"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn fast_server_config() -> ServerConfig {
    ServerConfig {
        poll_interval: Duration::from_millis(2),
        ..ServerConfig::default()
    }
}

fn kv_primary(shards: usize) -> (TcpServerHandle, KvStore) {
    let store = KvStore::open(StoreConfig::in_memory().aof_in_memory().shards(shards)).unwrap();
    let server = TcpServer::bind(
        Dispatcher::kv(store.clone()),
        "127.0.0.1:0",
        fast_server_config(),
    )
    .unwrap();
    (server, store)
}

fn kv_replica(shards: usize, primary: SocketAddr) -> (Dispatcher, ReplicaHandle) {
    let store = KvStore::open(StoreConfig::in_memory().aof_in_memory().shards(shards)).unwrap();
    let dispatcher = Dispatcher::kv(store);
    let handle = replication::start_replica(dispatcher.clone(), &primary.to_string());
    (dispatcher, handle)
}

fn converged(primary: &Dispatcher, replica: &Dispatcher) -> bool {
    primary.raw_engine().canonical_state() == replica.raw_engine().canonical_state()
}

#[test]
fn full_sync_matrix_is_portable_across_shard_counts() {
    for primary_shards in [1usize, 4, 8] {
        let (server, store) = kv_primary(primary_shards);
        // A fixture with every value shape the engine supports, deletes,
        // overwrites and a TTL.
        for i in 0..60 {
            store
                .set(&format!("user{i:03}"), vec![i as u8, 0xaa])
                .unwrap();
        }
        for i in 0..10 {
            store.delete(&format!("user{i:03}")).unwrap();
        }
        store
            .hset("profile:alice", "email", b"a@example.com".to_vec())
            .unwrap();
        store.set("overwritten", b"old".to_vec()).unwrap();
        store.set("overwritten", b"new".to_vec()).unwrap();
        store.set("ttl-key", b"expiring".to_vec()).unwrap();
        store.expire_at("ttl-key", 10_000_000_000_000).unwrap();

        let mut replicas = Vec::new();
        for replica_shards in [1usize, 4, 8] {
            replicas.push((
                replica_shards,
                kv_replica(replica_shards, server.local_addr()),
            ));
        }
        // Writes that land *after* the replicas attached travel over the
        // live stream rather than the full sync.
        for i in 0..30 {
            store.set(&format!("late{i:02}"), vec![i as u8]).unwrap();
        }
        for (replica_shards, (dispatcher, _handle)) in &replicas {
            wait_until(
                &format!("replica at {replica_shards} shards of a {primary_shards}-shard primary"),
                || converged(server.dispatcher(), dispatcher),
            );
            assert_eq!(
                server.dispatcher().state_digest_hex(),
                dispatcher.state_digest_hex(),
                "digest must match at {primary_shards}→{replica_shards} shards"
            );
            let info = dispatcher.replication().info();
            assert!(info.connected, "{info:?}");
            assert_eq!(info.full_syncs, 1, "{info:?}");
        }
        for (_, (_, handle)) in replicas {
            handle.stop();
        }
        server.shutdown();
    }
}

#[test]
fn erasure_on_the_primary_reaches_every_replica() {
    let config = StoreConfig::in_memory().aof_in_memory().shards(4);
    let primary_store = Arc::new(
        GdprStore::open(
            CompliancePolicy::eventual(),
            config,
            Box::new(gdpr_storage::audit::sink::NullSink::new()),
        )
        .unwrap(),
    );
    primary_store.grant(Grant::new("app", "billing"));
    let server = TcpServer::bind(
        Dispatcher::gdpr(Arc::clone(&primary_store)),
        "127.0.0.1:0",
        fast_server_config(),
    )
    .unwrap();

    // Two compliance-layer replicas at different shard counts.
    let mut replicas = Vec::new();
    for shards in [2usize, 8] {
        let store = Arc::new(
            GdprStore::open(
                CompliancePolicy::eventual(),
                StoreConfig::in_memory().aof_in_memory().shards(shards),
                Box::new(gdpr_storage::audit::sink::NullSink::new()),
            )
            .unwrap(),
        );
        let dispatcher = Dispatcher::gdpr(Arc::clone(&store));
        let handle =
            replication::start_replica(dispatcher.clone(), &server.local_addr().to_string());
        replicas.push((store, dispatcher, handle));
    }

    // Write personal data for two subjects over the wire.
    let mut client = TcpRemoteClient::connect(server.local_addr()).unwrap();
    client.auth("app", "billing").unwrap();
    for i in 0..20 {
        for subject in ["alice", "bob"] {
            client
                .gdpr(&GdprRequest::Put {
                    key: format!("user:{subject}:rec{i:02}"),
                    subject: subject.to_string(),
                    purposes: vec!["billing".to_string()],
                    value: format!("pii-{subject}-{i}").into_bytes(),
                    ttl_ms: None,
                })
                .unwrap();
        }
    }
    for (store, dispatcher, _) in &replicas {
        wait_until("replica converged after puts", || {
            converged(server.dispatcher(), dispatcher)
        });
        // The streamed metadata shadow writes maintained the replica's
        // index: subject lookups work on the replica without a rebuild.
        assert_eq!(store.keys_of_subject("alice").unwrap().len(), 20);
        assert_eq!(store.keys_of_subject("bob").unwrap().len(), 20);
    }

    // The right to be forgotten, exercised once, on the primary.
    let erased = client.erase_subject("alice").unwrap();
    assert_eq!(erased, 20);

    for (store, dispatcher, _) in &replicas {
        wait_until("erasure propagated to replica", || {
            converged(server.dispatcher(), dispatcher)
        });
        // The keys, their values, their metadata shadow records and their
        // index postings are all gone on the replica...
        assert!(store.keys_of_subject("alice").unwrap().is_empty());
        let engine = dispatcher.raw_engine();
        for i in 0..20 {
            let key = format!("user:alice:rec{i:02}");
            assert_eq!(engine.get(&key).unwrap(), None, "{key} value survived");
            assert_eq!(
                engine.get(&format!("__gdpr_meta__:{key}")).unwrap(),
                None,
                "{key} metadata shadow survived"
            );
        }
        // ...while the other subject's data is untouched.
        assert_eq!(store.keys_of_subject("bob").unwrap().len(), 20);
        assert_eq!(
            server.dispatcher().state_digest_hex(),
            dispatcher.state_digest_hex()
        );
    }
    for (_, _, handle) in replicas {
        handle.stop();
    }
    server.shutdown();
}

#[test]
fn retention_expiry_on_the_primary_reaches_replicas_with_cold_clocks() {
    use gdpr_storage::kvstore::clock::SimClock;
    use gdpr_storage::kvstore::expire::ExpiryMode;

    let clock = SimClock::new(1_000_000);
    let store = KvStore::open(
        StoreConfig::in_memory()
            .aof_in_memory()
            .shards(4)
            .clock(clock.clone())
            .expiry_mode(ExpiryMode::Strict),
    )
    .unwrap();
    let server = TcpServer::bind(
        Dispatcher::kv(store.clone()),
        "127.0.0.1:0",
        fast_server_config(),
    )
    .unwrap();
    // The replica's own clock sits at 0 forever: it can never expire
    // these keys locally — only the primary's journaled DELs remove them.
    let (replica, handle) = kv_replica(2, server.local_addr());

    for i in 0..32 {
        let key = format!("retained{i:02}");
        store.set(&key, b"pii".to_vec()).unwrap();
        store.expire_at(&key, 1_002_000).unwrap();
    }
    store.set("keeper", b"stays".to_vec()).unwrap();
    wait_until("replica loaded the retained keys", || {
        converged(server.dispatcher(), &replica)
    });
    assert_eq!(replica.raw_engine().len(), 33);

    clock.advance_millis(3_000);
    let outcome = store.tick().unwrap();
    assert_eq!(outcome.removed.len(), 32, "primary expired the batch");

    wait_until("expiry DELs propagated", || replica.raw_engine().len() == 1);
    assert_eq!(
        replica.raw_engine().get("keeper").unwrap(),
        Some(b"stays".to_vec())
    );
    assert_eq!(
        server.dispatcher().state_digest_hex(),
        replica.state_digest_hex()
    );
    handle.stop();
    server.shutdown();
}

#[test]
fn replica_rejects_writes_over_the_wire_with_a_redirect() {
    let (primary, _store) = kv_primary(2);
    let replica_store = KvStore::open(StoreConfig::in_memory().aof_in_memory().shards(2)).unwrap();
    let replica_dispatcher = Dispatcher::kv(replica_store);
    let replica_server = TcpServer::bind(
        replica_dispatcher.clone(),
        "127.0.0.1:0",
        fast_server_config(),
    )
    .unwrap();
    let handle = replication::start_replica(replica_dispatcher, &primary.local_addr().to_string());

    let mut client = TcpRemoteClient::connect(replica_server.local_addr()).unwrap();
    let err = client.set("k", b"v").unwrap_err();
    let message = err.to_string();
    assert!(message.contains("READONLY"), "{message}");
    assert!(
        message.contains(&primary.local_addr().to_string()),
        "redirect must name the primary: {message}"
    );
    // Reads and probes still served.
    client.ping().unwrap();
    assert_eq!(client.get("missing").unwrap(), None);

    handle.stop();
    replica_server.shutdown();
    primary.shutdown();
}

#[test]
fn primary_without_a_tailing_backlog_refuses_replication() {
    // backlog=0 disables tailing; REPLSYNC must be refused outright
    // instead of handing out a cursor that can never be served (which
    // would put the replica into a full-resync storm).
    let store = KvStore::open(
        StoreConfig::in_memory()
            .aof_in_memory()
            .shards(2)
            .repl_backlog(0),
    )
    .unwrap();
    let server = TcpServer::bind(
        Dispatcher::kv(store.clone()),
        "127.0.0.1:0",
        fast_server_config(),
    )
    .unwrap();
    let (replica, handle) = kv_replica(2, server.local_addr());
    store.set("k", b"v".to_vec()).unwrap();
    // Give the runner several connect attempts: every one must be
    // refused before the snapshot is even produced.
    std::thread::sleep(Duration::from_millis(800));
    let info = replica.replication().info();
    assert_eq!(info.full_syncs, 0, "{info:?}");
    assert!(!info.connected, "{info:?}");
    assert!(replica.raw_engine().is_empty());
    handle.stop();
    server.shutdown();
}

#[test]
fn journal_rewrite_forces_a_full_resync_and_replica_reconverges() {
    let (server, store) = kv_primary(4);
    let (replica, handle) = kv_replica(4, server.local_addr());
    for i in 0..50 {
        store.set(&format!("gen1:{i:02}"), vec![i as u8]).unwrap();
        if i % 2 == 0 {
            store.delete(&format!("gen1:{i:02}")).unwrap();
        }
    }
    wait_until("replica caught generation 1", || {
        converged(server.dispatcher(), &replica)
    });
    assert_eq!(replica.replication().info().full_syncs, 1);

    // The rewrite renumbers the journal stream; the feeder must declare
    // the replica's cursor lost and the replica must full-resync.
    assert!(store.rewrite_aof().unwrap() > 0);
    for i in 0..25 {
        store.set(&format!("gen2:{i:02}"), vec![i as u8]).unwrap();
    }
    wait_until("replica re-synced past the rewrite", || {
        converged(server.dispatcher(), &replica)
    });
    let info = replica.replication().info();
    assert!(
        info.full_syncs >= 2,
        "rewrite must have forced a fresh full sync: {info:?}"
    );
    assert!(info.connected, "{info:?}");
    assert_eq!(info.lag_records, 0, "{info:?}");
    assert!(
        server.dispatcher().replication().info().lost_streams >= 1,
        "primary must have counted the lost stream"
    );
    handle.stop();
    server.shutdown();
}

#[test]
fn replica_survives_a_primary_restart_and_resyncs() {
    // In-process stand-in for CI's kill -9 smoke: the primary server goes
    // away mid-stream (socket dies), a new primary comes up with more
    // data, and the replica's reconnect loop full-resyncs against it.
    let (server, store) = kv_primary(4);
    let addr = server.local_addr();
    for i in 0..40 {
        store.set(&format!("pre{i:02}"), vec![i as u8]).unwrap();
    }
    let (replica, handle) = kv_replica(2, addr);
    wait_until("replica synced against the first primary", || {
        converged(server.dispatcher(), &replica)
    });
    // "Crash": take the listener down without touching the replica.
    server.shutdown();

    // Restart on the same port with evolved state (the journal of a real
    // restart would replay; an in-memory store stands in for it here).
    let store2 = KvStore::open(StoreConfig::in_memory().aof_in_memory().shards(4)).unwrap();
    for i in 0..40 {
        store2.set(&format!("pre{i:02}"), vec![i as u8]).unwrap();
    }
    for i in 0..15 {
        store2.set(&format!("post{i:02}"), vec![i as u8]).unwrap();
    }
    let server2 = TcpServer::bind(Dispatcher::kv(store2), addr, fast_server_config()).unwrap();
    wait_until("replica resynced against the restarted primary", || {
        converged(server2.dispatcher(), &replica)
    });
    let info = replica.replication().info();
    assert!(info.full_syncs >= 2, "{info:?}");
    assert_eq!(
        server2.dispatcher().state_digest_hex(),
        replica.state_digest_hex()
    );
    handle.stop();
    server2.shutdown();
}

#[test]
fn maxmemory_evictions_replicate_as_journaled_deletes() {
    // A bounded primary evicts under write pressure; the replica runs
    // UNbounded, so it only converges if every eviction travels the
    // stream as an explicit journaled DEL rather than happening silently
    // inside the primary's shards.
    let ceiling = 16 * 1024u64;
    let store = KvStore::open(
        StoreConfig::in_memory()
            .aof_in_memory()
            .shards(4)
            .max_memory(ceiling)
            .eviction_policy(EvictionPolicy::SampledLru),
    )
    .unwrap();
    let server = TcpServer::bind(
        Dispatcher::kv(store.clone()),
        "127.0.0.1:0",
        fast_server_config(),
    )
    .unwrap();
    let (replica, handle) = kv_replica(2, server.local_addr());

    // Several ceilings' worth of values written while the replica tails
    // the live stream — evictions race the feed, not just the full sync.
    for i in 0..600 {
        store.set(&format!("evict{i:04}"), vec![b'x'; 100]).unwrap();
    }
    let stats = store.stats();
    assert!(stats.db.evicted_keys > 0, "{stats:?}");
    assert!(stats.db.mem_bytes <= ceiling, "{stats:?}");

    wait_until("replica converges past the evictions", || {
        converged(server.dispatcher(), &replica)
    });
    assert_eq!(
        server.dispatcher().state_digest_hex(),
        replica.state_digest_hex(),
        "digests must be byte-equivalent with eviction enabled"
    );
    handle.stop();
    server.shutdown();
}
