//! Cross-crate integration tests: the full stack (compliance layer, audit
//! trail, engine journal, encrypted device) working against real files,
//! including crash-recovery by replaying the append-only file.

use std::path::{Path, PathBuf};

use gdpr_storage::audit::reader::{parse_trail, verify_trail_segments, TrailQuery};
use gdpr_storage::audit::record::Operation;
use gdpr_storage::audit::sink::FileSink;
use gdpr_storage::gdpr_core::acl::Grant;
use gdpr_storage::gdpr_core::compliance::assess;
use gdpr_storage::gdpr_core::metadata::{PersonalMetadata, Region};
use gdpr_storage::gdpr_core::policy::CompliancePolicy;
use gdpr_storage::gdpr_core::store::{AccessContext, GdprStore};
use gdpr_storage::kvstore::config::StoreConfig;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gdpr-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Concatenated raw bytes of the whole journal layout: the manifest plus
/// every per-shard segment file (`engine.aof.e<epoch>.s<idx>`).
fn journal_bytes(dir: &Path) -> Vec<u8> {
    let mut raw = Vec::new();
    let mut files = 0;
    for entry in std::fs::read_dir(dir).unwrap().flatten() {
        if entry
            .file_name()
            .to_string_lossy()
            .starts_with("engine.aof")
        {
            raw.extend(std::fs::read(entry.path()).unwrap());
            files += 1;
        }
    }
    assert!(files >= 2, "expected a manifest plus at least one segment");
    raw
}

fn ctx() -> AccessContext {
    AccessContext::new("integration-app", "integration-testing")
}

fn metadata(subject: &str) -> PersonalMetadata {
    PersonalMetadata::new(subject)
        .with_purpose("integration-testing")
        .with_location(Region::Eu)
}

fn open_store(dir: &Path, policy: CompliancePolicy) -> GdprStore {
    let kv_config = StoreConfig::with_aof(dir.join("engine.aof"));
    let sink = FileSink::open(dir.join("audit.trail")).unwrap();
    let store = GdprStore::open(policy, kv_config, Box::new(sink)).unwrap();
    store.grant(Grant::new("integration-app", "integration-testing"));
    store
}

#[test]
fn full_lifecycle_with_file_persistence_and_recovery() {
    let dir = test_dir("lifecycle");

    // Phase 1: write data under the strict policy, then drop the store.
    {
        let store = open_store(&dir, CompliancePolicy::strict());
        for i in 0..50 {
            let subject = format!("subject-{}", i % 5);
            store
                .put(
                    &ctx(),
                    &format!("user:{i:03}"),
                    format!("value-{i}").into_bytes(),
                    metadata(&subject),
                )
                .unwrap();
        }
        store.delete(&ctx(), "user:007").unwrap();
        assert_eq!(store.len(), 49);
    }

    // Phase 2: reopen — the engine replays its (encrypted) AOF, the index
    // is rebuilt from the metadata shadow records.
    {
        let store = open_store(&dir, CompliancePolicy::strict());
        assert_eq!(store.len(), 49, "state must survive a restart");
        assert_eq!(
            store.get(&ctx(), "user:001").unwrap(),
            Some(b"value-1".to_vec())
        );
        assert_eq!(
            store.get(&ctx(), "user:007").unwrap(),
            None,
            "deletes must survive too"
        );
        // Subject index rebuilt: each of the 5 subjects owns ~10 keys.
        let keys = store.keys_of_subject("subject-1").unwrap();
        assert!(!keys.is_empty());
        assert!(keys.iter().all(|k| store.get(&ctx(), k).unwrap().is_some()));
    }

    // Phase 3: the on-disk journal (manifest + every segment) must not
    // contain plaintext personal data (the strict policy encrypts at rest).
    let raw = journal_bytes(&dir);
    assert!(
        !raw.windows(7).any(|w| w == b"value-1"),
        "AOF must be encrypted at rest"
    );

    // Phase 4: the audit trail on disk parses, verifies (one hash chain per
    // process lifetime) and contains the whole history.
    let trail_text = std::fs::read_to_string(dir.join("audit.trail")).unwrap();
    let trail = parse_trail(&trail_text).unwrap();
    assert_eq!(
        verify_trail_segments(&trail).unwrap(),
        2,
        "two sessions appended to the trail"
    );
    let writes = TrailQuery::any().operation(Operation::Write).select(&trail);
    assert!(writes.len() >= 50);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn erasure_request_survives_restart_and_scrubs_the_journal() {
    let dir = test_dir("erasure");
    {
        let store = open_store(&dir, CompliancePolicy::strict());
        for subject in ["alice", "bob"] {
            for attr in ["email", "phone"] {
                store
                    .put(
                        &ctx(),
                        &format!("user:{subject}:{attr}"),
                        format!("{subject}-{attr}").into_bytes(),
                        metadata(subject),
                    )
                    .unwrap();
            }
        }
        let report = store.right_to_erasure(&ctx(), "alice").unwrap();
        assert_eq!(report.erased_keys.len(), 2);
        assert!(report.journal_records_scrubbed > 0);
    }
    // After restart alice stays gone and bob stays present.
    {
        let store = open_store(&dir, CompliancePolicy::strict());
        assert_eq!(store.get(&ctx(), "user:alice:email").unwrap(), None);
        assert_eq!(
            store.get(&ctx(), "user:bob:email").unwrap(),
            Some(b"bob-email".to_vec())
        );
        assert!(store.keys_of_subject("alice").unwrap().is_empty());
    }
    // No trace of alice's values in any journal segment (they were
    // scrubbed and the journal is encrypted anyway).
    let raw = journal_bytes(&dir);
    assert!(!raw.windows(11).any(|w| w == b"alice-email"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eventual_policy_defers_scrub_but_strict_does_not() {
    let dir = test_dir("spectrum");
    let strict = open_store(&test_dir("spectrum-strict"), CompliancePolicy::strict());
    let eventual = open_store(&dir, CompliancePolicy::eventual());
    for store in [&strict, &eventual] {
        store
            .put(
                &ctx(),
                "user:x:email",
                b"x@example.com".to_vec(),
                metadata("x"),
            )
            .unwrap();
    }
    assert!(
        strict
            .right_to_erasure(&ctx(), "x")
            .unwrap()
            .completed_in_real_time
    );
    assert!(
        !eventual
            .right_to_erasure(&ctx(), "x")
            .unwrap()
            .completed_in_real_time
    );
}

#[test]
fn compliance_assessment_matches_policy_capabilities() {
    // The unmodified baseline has gaps for every article; strict has none.
    assert_eq!(assess(&CompliancePolicy::unmodified()).gaps().len(), 13);
    assert!(assess(&CompliancePolicy::strict()).gaps().is_empty());
    assert!(assess(&CompliancePolicy::eventual()).gaps().is_empty());
}

#[test]
fn denied_operations_leave_evidence_in_the_trail() {
    let dir = test_dir("denied");
    let store = open_store(&dir, CompliancePolicy::strict());
    store
        .put(
            &ctx(),
            "user:eve:email",
            b"eve@example.com".to_vec(),
            metadata("eve"),
        )
        .unwrap();

    // An actor with no grant is refused and the refusal is audited.
    let rogue = AccessContext::new("rogue-service", "exfiltration");
    assert!(store.get(&rogue, "user:eve:email").is_err());

    let trail_text = std::fs::read_to_string(dir.join("audit.trail")).unwrap();
    let trail = parse_trail(&trail_text).unwrap();
    let denied = TrailQuery::any()
        .outcome(gdpr_storage::audit::record::Outcome::Denied)
        .select(&trail);
    assert_eq!(denied.len(), 1);
    assert_eq!(denied[0].actor, "rogue-service");
    let _ = std::fs::remove_dir_all(&dir);
}
