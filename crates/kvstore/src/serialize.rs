//! A small, self-describing binary encoding used by the AOF and snapshot
//! files.
//!
//! The format is deliberately simple (type tag + length-prefixed payloads)
//! so that the persistence experiments measure fsync and encryption cost
//! rather than serialization cleverness — matching the spirit of Redis'
//! RESP-based AOF and RDB encodings.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::object::{Bytes, Value};
use crate::{Result, StoreError};

/// Type tags used on the wire.
const TAG_STR: u8 = 0x01;
const TAG_HASH: u8 = 0x02;
const TAG_LIST: u8 = 0x03;
const TAG_SET: u8 = 0x04;

/// Append a `u32` length prefix followed by the bytes.
pub fn put_bytes(out: &mut Vec<u8>, data: &[u8]) {
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out.extend_from_slice(data);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Append a `u64` in little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A cursor over an encoded buffer.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a buffer for reading.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes remaining to be read.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the reader has consumed the whole buffer.
    #[must_use]
    pub fn is_at_end(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(StoreError::Corrupt {
                context,
                detail: format!("need {n} bytes, only {} remain", self.remaining()),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read a `u32` length prefix followed by that many bytes.
    pub fn get_bytes(&mut self, context: &'static str) -> Result<Bytes> {
        let len_bytes = self.take(4, context)?;
        let len =
            u32::from_le_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]) as usize;
        Ok(self.take(len, context)?.to_vec())
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, context: &'static str) -> Result<String> {
        let bytes = self.get_bytes(context)?;
        String::from_utf8(bytes).map_err(|e| StoreError::Corrupt {
            context,
            detail: format!("invalid utf-8: {e}"),
        })
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self, context: &'static str) -> Result<u64> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a single byte.
    pub fn get_u8(&mut self, context: &'static str) -> Result<u8> {
        Ok(self.take(1, context)?[0])
    }
}

/// Encode a [`Value`] into `out`.
pub fn encode_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Str(b) => {
            out.push(TAG_STR);
            put_bytes(out, b);
        }
        Value::Hash(map) => {
            out.push(TAG_HASH);
            put_u64(out, map.len() as u64);
            for (field, v) in map {
                put_str(out, field);
                put_bytes(out, v);
            }
        }
        Value::List(items) => {
            out.push(TAG_LIST);
            put_u64(out, items.len() as u64);
            for item in items {
                put_bytes(out, item);
            }
        }
        Value::Set(members) => {
            out.push(TAG_SET);
            put_u64(out, members.len() as u64);
            for member in members {
                put_bytes(out, member);
            }
        }
    }
}

/// Decode a [`Value`] from the reader.
pub fn decode_value(reader: &mut Reader<'_>, context: &'static str) -> Result<Value> {
    let tag = reader.get_u8(context)?;
    match tag {
        TAG_STR => Ok(Value::Str(reader.get_bytes(context)?)),
        TAG_HASH => {
            let n = reader.get_u64(context)?;
            let mut map = BTreeMap::new();
            for _ in 0..n {
                let field = reader.get_str(context)?;
                let value = reader.get_bytes(context)?;
                map.insert(field, value);
            }
            Ok(Value::Hash(map))
        }
        TAG_LIST => {
            let n = reader.get_u64(context)?;
            let mut items = VecDeque::with_capacity(n as usize);
            for _ in 0..n {
                items.push_back(reader.get_bytes(context)?);
            }
            Ok(Value::List(items))
        }
        TAG_SET => {
            let n = reader.get_u64(context)?;
            let mut members = BTreeSet::new();
            for _ in 0..n {
                members.insert(reader.get_bytes(context)?);
            }
            Ok(Value::Set(members))
        }
        other => Err(StoreError::Corrupt {
            context,
            detail: format!("unknown value tag 0x{other:02x}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let mut buf = Vec::new();
        encode_value(&mut buf, v);
        let mut r = Reader::new(&buf);
        let decoded = decode_value(&mut r, "test").unwrap();
        assert!(r.is_at_end());
        decoded
    }

    #[test]
    fn roundtrip_string() {
        let v = Value::from("hello world");
        assert_eq!(roundtrip(&v), v);
        let empty = Value::Str(Vec::new());
        assert_eq!(roundtrip(&empty), empty);
    }

    #[test]
    fn roundtrip_hash() {
        let mut map = BTreeMap::new();
        map.insert("field0".to_string(), vec![1, 2, 3]);
        map.insert("field1".to_string(), Vec::new());
        let v = Value::Hash(map);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn roundtrip_list_and_set() {
        let v = Value::List(VecDeque::from(vec![b"a".to_vec(), b"bb".to_vec()]));
        assert_eq!(roundtrip(&v), v);
        let mut set = BTreeSet::new();
        set.insert(b"m1".to_vec());
        set.insert(b"m2".to_vec());
        let v = Value::Set(set);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut buf = Vec::new();
        encode_value(&mut buf, &Value::from("hello"));
        let mut r = Reader::new(&buf[..buf.len() - 2]);
        assert!(decode_value(&mut r, "test").is_err());
    }

    #[test]
    fn unknown_tag_is_an_error() {
        let buf = [0xEEu8, 0, 0, 0, 0];
        let mut r = Reader::new(&buf);
        assert!(matches!(
            decode_value(&mut r, "test"),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn strings_and_u64_roundtrip() {
        let mut buf = Vec::new();
        put_str(&mut buf, "key name");
        put_u64(&mut buf, u64::MAX);
        put_bytes(&mut buf, b"");
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_str("t").unwrap(), "key name");
        assert_eq!(r.get_u64("t").unwrap(), u64::MAX);
        assert_eq!(r.get_bytes("t").unwrap(), Vec::<u8>::new());
        assert!(r.is_at_end());
    }

    #[test]
    fn invalid_utf8_key_is_reported() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, &[0xff, 0xfe]);
        let mut r = Reader::new(&buf);
        assert!(r.get_str("t").is_err());
    }
}
