//! Key derivation: HKDF-SHA-256 (RFC 5869) and a PBKDF2-style passphrase
//! stretcher.
//!
//! The LUKS-simulation device derives its per-device data key from a master
//! passphrase exactly the way LUKS derives a volume key from a user key:
//! an expensive passphrase KDF, then cheap per-purpose subkeys via HKDF.

use crate::hmac::HmacSha256;
use crate::sha256::DIGEST_LEN;

/// HKDF-Extract: produce a pseudorandom key from input keying material.
#[must_use]
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    HmacSha256::mac(salt, ikm)
}

/// HKDF-Expand: derive `len` bytes of output keying material bound to
/// `info`.
///
/// # Panics
///
/// Panics if `len > 255 * 32`, the RFC 5869 limit.
#[must_use]
pub fn hkdf_expand(prk: &[u8; DIGEST_LEN], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * DIGEST_LEN, "HKDF output length limit exceeded");
    let mut okm = Vec::with_capacity(len);
    let mut previous: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while okm.len() < len {
        let mut mac = HmacSha256::new(prk);
        mac.update(&previous);
        mac.update(info);
        mac.update(&[counter]);
        let block = mac.finalize();
        previous = block.to_vec();
        okm.extend_from_slice(&block);
        counter += 1;
    }
    okm.truncate(len);
    okm
}

/// One-shot HKDF (extract + expand).
#[must_use]
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    let prk = hkdf_extract(salt, ikm);
    hkdf_expand(&prk, info, len)
}

/// Derive a 256-bit key suitable for [`crate::aead::ChaCha20Poly1305`].
#[must_use]
pub fn derive_key(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; 32] {
    let okm = hkdf(salt, ikm, info, 32);
    let mut key = [0u8; 32];
    key.copy_from_slice(&okm);
    key
}

/// PBKDF2-HMAC-SHA-256 with a configurable iteration count.
///
/// LUKS stretches the user passphrase before unlocking the volume key; this
/// is the analogous operation for the encrypted device simulation. The
/// default iteration count used by the storage layer is deliberately small
/// (benchmarking, not security).
#[must_use]
pub fn pbkdf2(password: &[u8], salt: &[u8], iterations: u32, len: usize) -> Vec<u8> {
    assert!(iterations > 0, "PBKDF2 requires at least one iteration");
    let mut out = Vec::with_capacity(len);
    let mut block_index = 1u32;
    while out.len() < len {
        // U1 = HMAC(password, salt || INT(block_index))
        let mut mac = HmacSha256::new(password);
        mac.update(salt);
        mac.update(&block_index.to_be_bytes());
        let mut u = mac.finalize();
        let mut t = u;
        for _ in 1..iterations {
            u = HmacSha256::mac(password, &u);
            for (tb, ub) in t.iter_mut().zip(u.iter()) {
                *tb ^= ub;
            }
        }
        out.extend_from_slice(&t);
        block_index += 1;
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    /// RFC 5869 test case 1.
    #[test]
    fn hkdf_rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            to_hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(
            to_hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn hkdf_expand_lengths() {
        let prk = hkdf_extract(b"salt", b"ikm");
        for len in [0usize, 1, 31, 32, 33, 64, 100] {
            assert_eq!(hkdf_expand(&prk, b"info", len).len(), len);
        }
    }

    #[test]
    fn hkdf_different_info_different_keys() {
        assert_ne!(
            derive_key(b"s", b"ikm", b"aof"),
            derive_key(b"s", b"ikm", b"snapshot")
        );
    }

    /// RFC 7914 §11 / common PBKDF2-HMAC-SHA256 vector:
    /// P="passwd", S="salt", c=1, dkLen=64.
    #[test]
    fn pbkdf2_known_vector() {
        let dk = pbkdf2(b"passwd", b"salt", 1, 64);
        assert_eq!(
            to_hex(&dk),
            "55ac046e56e3089fec1691c22544b605f94185216dde0465e68b9d57c20dacbc\
             49ca9cccf179b645991664b39d77ef317c71b845b1e30bd509112041d3a19783"
        );
    }

    #[test]
    fn pbkdf2_iterations_change_output() {
        assert_ne!(pbkdf2(b"pw", b"salt", 1, 32), pbkdf2(b"pw", b"salt", 2, 32));
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn pbkdf2_zero_iterations_panics() {
        let _ = pbkdf2(b"pw", b"salt", 0, 32);
    }
}
