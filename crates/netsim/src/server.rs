//! A RESP front-end over the storage engine.
//!
//! [`RespKvServer`] is the "Redis server" of the reproduction: it accepts
//! decoded RESP frames, maps them onto the engine's typed commands,
//! executes them and produces RESP replies. The client in
//! [`crate::client`] drives it through the simulated link, which is how the
//! YCSB harness exercises the full networked data path for Figure 1's
//! encrypted configuration.

use std::collections::BTreeMap;

use kvstore::commands::{Command, Reply};
use kvstore::store::KvStore;
use resp::command::WireCommand;
use resp::Frame;

/// Counters describing server activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests handled (including errors).
    pub requests: u64,
    /// Requests that produced an error reply.
    pub errors: u64,
}

/// A RESP-speaking server wrapping a [`KvStore`].
#[derive(Debug, Clone)]
pub struct RespKvServer {
    store: KvStore,
    stats: std::sync::Arc<parking_lot::Mutex<ServerStats>>,
}

impl RespKvServer {
    /// Wrap an already-opened engine.
    #[must_use]
    pub fn new(store: KvStore) -> Self {
        RespKvServer {
            store,
            stats: std::sync::Arc::new(parking_lot::Mutex::new(ServerStats::default())),
        }
    }

    /// The wrapped engine (e.g. for the benchmark driver to call `tick`).
    #[must_use]
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Server activity counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        *self.stats.lock()
    }

    /// Handle one decoded request frame and produce the reply frame.
    pub fn handle_frame(&self, frame: &Frame) -> Frame {
        let mut stats = self.stats.lock();
        stats.requests += 1;
        drop(stats);
        let reply = match WireCommand::from_frame(frame) {
            Ok(cmd) => self.dispatch(&cmd),
            Err(e) => Frame::Error(format!("ERR {e}")),
        };
        if matches!(reply, Frame::Error(_)) {
            self.stats.lock().errors += 1;
        }
        reply
    }

    fn dispatch(&self, cmd: &WireCommand) -> Frame {
        match self.translate(cmd) {
            Ok(Some(command)) => match self.store.execute(command) {
                Ok(reply) => reply_to_frame(reply),
                Err(e) => Frame::Error(format!("ERR {e}")),
            },
            Ok(None) => Frame::Simple("PONG".to_string()),
            Err(message) => Frame::Error(message),
        }
    }

    /// Translate a wire command into an engine command. `Ok(None)` means
    /// the command is handled at the protocol level (currently only PING).
    fn translate(&self, cmd: &WireCommand) -> std::result::Result<Option<Command>, String> {
        let arity_err = |need: usize| {
            Err(format!(
                "ERR wrong number of arguments for '{}' ({} given, {need} needed)",
                cmd.name,
                cmd.arity()
            ))
        };
        let s = |i: usize| {
            cmd.arg_str(i)
                .map(str::to_string)
                .map_err(|e| format!("ERR {e}"))
        };
        let b = |i: usize| {
            cmd.arg_bytes(i)
                .map(<[u8]>::to_vec)
                .map_err(|e| format!("ERR {e}"))
        };
        let n = |i: usize| cmd.arg_u64(i).map_err(|e| format!("ERR {e}"));

        let command = match cmd.name.as_str() {
            "PING" => return Ok(None),
            "SET" => {
                if cmd.arity() != 2 {
                    return arity_err(2);
                }
                Command::Set {
                    key: s(0)?,
                    value: b(1)?,
                }
            }
            "GET" => {
                if cmd.arity() != 1 {
                    return arity_err(1);
                }
                Command::Get { key: s(0)? }
            }
            "DEL" | "UNLINK" => {
                if cmd.arity() != 1 {
                    return arity_err(1);
                }
                Command::Del { key: s(0)? }
            }
            "EXISTS" => {
                if cmd.arity() != 1 {
                    return arity_err(1);
                }
                Command::Exists { key: s(0)? }
            }
            "PEXPIRE" => {
                if cmd.arity() != 2 {
                    return arity_err(2);
                }
                Command::Expire {
                    key: s(0)?,
                    ttl_ms: n(1)?,
                }
            }
            "EXPIRE" => {
                if cmd.arity() != 2 {
                    return arity_err(2);
                }
                Command::Expire {
                    key: s(0)?,
                    ttl_ms: n(1)? * 1_000,
                }
            }
            "PEXPIREAT" => {
                if cmd.arity() != 2 {
                    return arity_err(2);
                }
                Command::ExpireAt {
                    key: s(0)?,
                    at_ms: n(1)?,
                }
            }
            "PTTL" | "TTL" => {
                if cmd.arity() != 1 {
                    return arity_err(1);
                }
                Command::Ttl { key: s(0)? }
            }
            "PERSIST" => {
                if cmd.arity() != 1 {
                    return arity_err(1);
                }
                Command::Persist { key: s(0)? }
            }
            "HSET" => {
                if cmd.arity() != 3 {
                    return arity_err(3);
                }
                Command::HSet {
                    key: s(0)?,
                    field: s(1)?,
                    value: b(2)?,
                }
            }
            "HMSET" => {
                if cmd.arity() < 3 || cmd.arity().is_multiple_of(2) {
                    return arity_err(3);
                }
                let key = s(0)?;
                let mut fields = BTreeMap::new();
                let mut i = 1;
                while i < cmd.arity() {
                    fields.insert(s(i)?, b(i + 1)?);
                    i += 2;
                }
                Command::HSetMulti { key, fields }
            }
            "HGET" => {
                if cmd.arity() != 2 {
                    return arity_err(2);
                }
                Command::HGet {
                    key: s(0)?,
                    field: s(1)?,
                }
            }
            "HGETALL" => {
                if cmd.arity() != 1 {
                    return arity_err(1);
                }
                Command::HGetAll { key: s(0)? }
            }
            "HDEL" => {
                if cmd.arity() != 2 {
                    return arity_err(2);
                }
                Command::HDel {
                    key: s(0)?,
                    field: s(1)?,
                }
            }
            "SADD" => {
                if cmd.arity() != 2 {
                    return arity_err(2);
                }
                Command::SAdd {
                    key: s(0)?,
                    member: b(1)?,
                }
            }
            "SREM" => {
                if cmd.arity() != 2 {
                    return arity_err(2);
                }
                Command::SRem {
                    key: s(0)?,
                    member: b(1)?,
                }
            }
            "SMEMBERS" => {
                if cmd.arity() != 1 {
                    return arity_err(1);
                }
                Command::SMembers { key: s(0)? }
            }
            "KEYS" => {
                if cmd.arity() != 1 {
                    return arity_err(1);
                }
                Command::Keys { pattern: s(0)? }
            }
            "SCAN" => {
                if cmd.arity() != 2 {
                    return arity_err(2);
                }
                Command::Scan {
                    start: s(0)?,
                    count: n(1)?,
                }
            }
            "DBSIZE" => Command::DbSize,
            "FLUSHALL" | "FLUSHDB" => Command::FlushAll,
            other => return Err(format!("ERR unknown command '{other}'")),
        };
        Ok(Some(command))
    }
}

/// Convert an engine reply into a RESP frame.
#[must_use]
pub fn reply_to_frame(reply: Reply) -> Frame {
    match reply {
        Reply::Ok => Frame::Simple("OK".to_string()),
        Reply::Nil => Frame::Null,
        Reply::Int(i) => Frame::Integer(i),
        Reply::Bytes(b) => Frame::Bulk(b),
        Reply::Array(items) => Frame::Array(items.into_iter().map(Frame::Bulk).collect()),
        Reply::StringArray(keys) => Frame::Array(
            keys.into_iter()
                .map(|k| Frame::Bulk(k.into_bytes()))
                .collect(),
        ),
        Reply::Map(map) => {
            let mut items = Vec::with_capacity(map.len() * 2);
            for (field, value) in map {
                items.push(Frame::Bulk(field.into_bytes()));
                items.push(Frame::Bulk(value));
            }
            Frame::Array(items)
        }
        _ => Frame::Error("ERR unsupported reply".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvstore::config::StoreConfig;

    fn server() -> RespKvServer {
        RespKvServer::new(KvStore::open(StoreConfig::in_memory()).unwrap())
    }

    #[test]
    fn ping_pong() {
        let s = server();
        assert_eq!(
            s.handle_frame(&Frame::command(["PING"])),
            Frame::Simple("PONG".into())
        );
    }

    #[test]
    fn set_get_del_over_resp() {
        let s = server();
        assert_eq!(
            s.handle_frame(&Frame::command(["SET", "user:1", "alice"])),
            Frame::Simple("OK".into())
        );
        assert_eq!(
            s.handle_frame(&Frame::command(["GET", "user:1"])),
            Frame::Bulk(b"alice".to_vec())
        );
        assert_eq!(
            s.handle_frame(&Frame::command(["DEL", "user:1"])),
            Frame::Integer(1)
        );
        assert_eq!(
            s.handle_frame(&Frame::command(["GET", "user:1"])),
            Frame::Null
        );
        assert_eq!(s.stats().requests, 4);
        assert_eq!(s.stats().errors, 0);
    }

    #[test]
    fn hash_commands_over_resp() {
        let s = server();
        s.handle_frame(&Frame::command(["HMSET", "u", "f0", "a", "f1", "b"]));
        assert_eq!(
            s.handle_frame(&Frame::command(["HGET", "u", "f1"])),
            Frame::Bulk(b"b".to_vec())
        );
        match s.handle_frame(&Frame::command(["HGETALL", "u"])) {
            Frame::Array(items) => assert_eq!(items.len(), 4),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            s.handle_frame(&Frame::command(["HDEL", "u", "f0"])),
            Frame::Integer(1)
        );
    }

    #[test]
    fn ttl_commands_over_resp() {
        let s = server();
        s.handle_frame(&Frame::command(["SET", "k", "v"]));
        assert_eq!(
            s.handle_frame(&Frame::command(["PEXPIRE", "k", "5000"])),
            Frame::Integer(1)
        );
        match s.handle_frame(&Frame::command(["PTTL", "k"])) {
            Frame::Integer(ms) => assert!(ms > 0 && ms <= 5_000),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            s.handle_frame(&Frame::command(["PERSIST", "k"])),
            Frame::Integer(1)
        );
        assert_eq!(
            s.handle_frame(&Frame::command(["EXPIRE", "k", "10"])),
            Frame::Integer(1)
        );
    }

    #[test]
    fn scan_keys_dbsize_flush() {
        let s = server();
        for i in 0..4 {
            s.handle_frame(&Frame::command(["SET", &format!("key{i}"), "v"]));
        }
        assert_eq!(
            s.handle_frame(&Frame::command(["DBSIZE"])),
            Frame::Integer(4)
        );
        match s.handle_frame(&Frame::command(["SCAN", "key1", "2"])) {
            Frame::Array(items) => assert_eq!(items.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        match s.handle_frame(&Frame::command(["KEYS", "key*"])) {
            Frame::Array(items) => assert_eq!(items.len(), 4),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            s.handle_frame(&Frame::command(["FLUSHALL"])),
            Frame::Integer(4)
        );
        assert_eq!(
            s.handle_frame(&Frame::command(["DBSIZE"])),
            Frame::Integer(0)
        );
    }

    #[test]
    fn errors_for_unknown_commands_and_bad_arity() {
        let s = server();
        assert!(matches!(
            s.handle_frame(&Frame::command(["BOGUS"])),
            Frame::Error(_)
        ));
        assert!(matches!(
            s.handle_frame(&Frame::command(["GET"])),
            Frame::Error(_)
        ));
        assert!(matches!(
            s.handle_frame(&Frame::command(["SET", "only-key"])),
            Frame::Error(_)
        ));
        assert!(matches!(
            s.handle_frame(&Frame::Integer(3)),
            Frame::Error(_)
        ));
        assert_eq!(s.stats().errors, 4);
    }

    #[test]
    fn wrongtype_error_propagates_as_resp_error() {
        let s = server();
        s.handle_frame(&Frame::command(["HSET", "h", "f", "v"]));
        assert!(matches!(
            s.handle_frame(&Frame::command(["GET", "h"])),
            Frame::Error(_)
        ));
    }

    #[test]
    fn set_commands_over_resp() {
        let s = server();
        assert_eq!(
            s.handle_frame(&Frame::command(["SADD", "tags", "red"])),
            Frame::Integer(1)
        );
        assert_eq!(
            s.handle_frame(&Frame::command(["SADD", "tags", "red"])),
            Frame::Integer(0)
        );
        match s.handle_frame(&Frame::command(["SMEMBERS", "tags"])) {
            Frame::Array(items) => assert_eq!(items, vec![Frame::Bulk(b"red".to_vec())]),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            s.handle_frame(&Frame::command(["SREM", "tags", "red"])),
            Frame::Integer(1)
        );
    }
}
