//! Integration tests of retention enforcement (Figure 2 behaviour) and the
//! data-subject rights working together across the compliance layer, the
//! engine's expiry machinery and the audit trail.

use std::time::Duration;

use gdpr_storage::audit::sink::MemorySink;
use gdpr_storage::gdpr_core::acl::Grant;
use gdpr_storage::gdpr_core::metadata::{PersonalMetadata, Region};
use gdpr_storage::gdpr_core::policy::CompliancePolicy;
use gdpr_storage::gdpr_core::retention::ErasureDelayExperiment;
use gdpr_storage::gdpr_core::store::{AccessContext, GdprStore};
use gdpr_storage::kvstore::clock::SimClock;
use gdpr_storage::kvstore::config::StoreConfig;
use gdpr_storage::kvstore::expire::ExpiryMode;

fn ctx() -> AccessContext {
    AccessContext::new("app", "service")
}

fn strict_store_with_clock(clock: &SimClock) -> (GdprStore, MemorySink) {
    let sink = MemorySink::new();
    let trail_view = sink.share();
    let store = GdprStore::open(
        CompliancePolicy::strict(),
        StoreConfig::in_memory()
            .aof_in_memory()
            .clock(clock.clone()),
        Box::new(sink),
    )
    .unwrap();
    store.grant(Grant::new("app", "service"));
    (store, trail_view)
}

#[test]
fn retention_erases_only_what_has_expired() {
    let clock = SimClock::new(1_000);
    let (store, trail_view) = strict_store_with_clock(&clock);
    // 30 short-lived keys, 20 long-lived ones.
    for i in 0..50 {
        let ttl = if i < 30 { 1_000 } else { 1_000_000 };
        let meta = PersonalMetadata::new(&format!("s{i}"))
            .with_purpose("service")
            .with_ttl_millis(ttl);
        store
            .put(&ctx(), &format!("k{i:02}"), b"v".to_vec(), meta)
            .unwrap();
    }
    clock.advance_millis(2_000);
    let report = store.enforce_retention(5).unwrap();
    assert_eq!(report.erased_keys.len(), 30);
    assert_eq!(report.overdue_remaining, 0);
    assert_eq!(store.len(), 20);
    // The erasures are audited as retention-driven deletions.
    let trail = trail_view.lines().join("\n");
    assert!(trail.contains("retention period elapsed"));
}

#[test]
fn expired_data_is_invisible_even_before_the_sweep_runs() {
    let clock = SimClock::new(1_000);
    let (store, _trail) = strict_store_with_clock(&clock);
    let meta = PersonalMetadata::new("s")
        .with_purpose("service")
        .with_ttl_millis(500);
    store.put(&ctx(), "ephemeral", b"v".to_vec(), meta).unwrap();
    clock.advance_millis(1_000);
    // Lazy expiration on access hides the key even though no cycle ran.
    assert_eq!(store.get(&ctx(), "ephemeral").unwrap(), None);
}

#[test]
fn figure2_shape_holds_in_miniature() {
    // Strict erasure is sub-second at every size; lazy erasure grows
    // roughly linearly with the keyspace (the paper's headline).
    let sizes = [1_000usize, 2_000, 4_000];
    let mut lazy_delays = Vec::new();
    for &size in &sizes {
        let lazy = ErasureDelayExperiment::figure2(size, ExpiryMode::LazyProbabilistic).run(5);
        let strict = ErasureDelayExperiment::figure2(size, ExpiryMode::Strict).run(5);
        assert!(
            strict.erase_seconds() < 1.0,
            "strict at {size}: {}",
            strict.erase_seconds()
        );
        assert_eq!(lazy.erased_keys, size / 5);
        lazy_delays.push(lazy.erase_seconds());
    }
    assert!(lazy_delays[1] > lazy_delays[0] * 1.5);
    assert!(lazy_delays[2] > lazy_delays[1] * 1.5);
}

#[test]
fn rights_interact_correctly_with_retention() {
    let clock = SimClock::new(1_000);
    let (store, _trail) = strict_store_with_clock(&clock);
    // Alice has one key about to expire and one long-lived key.
    store
        .put(
            &ctx(),
            "user:alice:session",
            b"token".to_vec(),
            PersonalMetadata::new("alice")
                .with_purpose("service")
                .with_ttl_millis(500),
        )
        .unwrap();
    store
        .put(
            &ctx(),
            "user:alice:email",
            b"a@b.c".to_vec(),
            PersonalMetadata::new("alice").with_purpose("service"),
        )
        .unwrap();

    clock.advance_millis(1_000);
    store.enforce_retention(3).unwrap();

    // The access report only lists what still exists.
    let report = store.right_of_access(&ctx(), "alice").unwrap();
    assert_eq!(report.items.len(), 1);
    assert_eq!(report.items[0].key, "user:alice:email");

    // Erasure then removes the rest; afterwards nothing is indexed.
    let erasure = store.right_to_erasure(&ctx(), "alice").unwrap();
    assert_eq!(erasure.erased_keys, vec!["user:alice:email".to_string()]);
    assert!(store.keys_of_subject("alice").unwrap().is_empty());
}

#[test]
fn objection_and_portability_work_under_the_eventual_policy_too() {
    let store = GdprStore::open_in_memory(CompliancePolicy::eventual()).unwrap();
    store.grant(Grant::new("app", "service"));
    store.grant(Grant::new("app", "analytics"));
    let meta = PersonalMetadata::new("bob")
        .with_purpose("service")
        .with_purpose("analytics")
        .with_location(Region::Eu);
    store
        .put(&ctx(), "user:bob:profile", b"profile".to_vec(), meta)
        .unwrap();

    // Portability export contains the value.
    let export = store.right_to_portability(&ctx(), "bob").unwrap();
    assert!(export.contains("profile"));

    // After an objection to analytics, analytics reads fail but service
    // reads keep working.
    store.right_to_object(&ctx(), "bob", "analytics").unwrap();
    assert!(store
        .get(&AccessContext::new("app", "analytics"), "user:bob:profile")
        .is_err());
    assert!(store.get(&ctx(), "user:bob:profile").is_ok());
}

#[test]
fn location_inventory_tracks_regions_and_violations() {
    // A policy that allows EU and US, with data in both.
    let mut policy = CompliancePolicy::eventual();
    policy.location_policy =
        gdpr_storage::gdpr_core::location::LocationPolicy::restricted_to([Region::Eu, Region::Us]);
    policy.enforce_access_control = false;
    let store = GdprStore::open_in_memory(policy).unwrap();
    for (i, region) in [Region::Eu, Region::Eu, Region::Us].iter().enumerate() {
        let meta = PersonalMetadata::new("s")
            .with_purpose("service")
            .with_location(*region);
        store
            .put(&ctx(), &format!("k{i}"), b"v".to_vec(), meta)
            .unwrap();
    }
    let inventory = store.location_inventory().unwrap();
    assert_eq!(inventory.count(Region::Eu), 2);
    assert_eq!(inventory.count(Region::Us), 1);
    assert_eq!(inventory.total(), 3);
    // Against an EU-only policy, the US copy is a violation.
    let eu_only = gdpr_storage::gdpr_core::location::LocationPolicy::eu_only();
    assert_eq!(inventory.violations(&eu_only), vec![(Region::Us, 1)]);

    // And an APAC write is refused outright by the active policy.
    let apac = PersonalMetadata::new("s")
        .with_purpose("service")
        .with_location(Region::Apac);
    assert!(store.put(&ctx(), "k-apac", b"v".to_vec(), apac).is_err());
}

#[test]
fn ttl_visible_through_engine_matches_metadata_deadline() {
    // A realistic epoch so the `with_ttl_millis` convenience (a value far
    // below "now") is resolved as a relative TTL.
    let epoch = 1_700_000_000_000u64;
    let clock = SimClock::new(epoch);
    let (store, _trail) = strict_store_with_clock(&clock);
    let meta = PersonalMetadata::new("s")
        .with_purpose("service")
        .with_ttl_millis(60_000);
    store.put(&ctx(), "k", b"v".to_vec(), meta).unwrap();
    let ttl = store.engine().ttl("k").unwrap().unwrap();
    assert!(ttl <= Duration::from_millis(60_000));
    assert!(ttl > Duration::from_millis(59_000));
    let stored = store.metadata(&ctx(), "k").unwrap().unwrap();
    assert_eq!(stored.expires_at_ms, Some(epoch + 60_000));
    assert_eq!(stored.created_at_ms, epoch);
}
