//! Collection strategies (`vec`, `btree_set`).

use std::collections::BTreeSet;
use std::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy producing `Vec`s whose length is drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Vectors of values from `element` with a length in `size`.
#[must_use]
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "collection::vec: empty size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy producing `BTreeSet`s with *up to* `size.end - 1` elements
/// (duplicates collapse, as in real proptest).
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Sets of values from `element` with a drawn size in `size`.
#[must_use]
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    assert!(
        size.start < size.end,
        "collection::btree_set: empty size range"
    );
    BTreeSetStrategy { element, size }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = rng.gen_range(self.size.clone());
        let mut set = BTreeSet::new();
        // Bounded attempts: a small element domain may not be able to fill
        // the target size with distinct values.
        for _ in 0..target.saturating_mul(4) {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_length_is_in_range() {
        let mut rng = TestRng::deterministic("collection::vec");
        let strat = vec(any::<u8>(), 2..6);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_is_bounded() {
        let mut rng = TestRng::deterministic("collection::btree_set");
        let strat = btree_set(any::<u64>(), 0..5);
        for _ in 0..100 {
            assert!(strat.generate(&mut rng).len() < 5);
        }
    }
}
