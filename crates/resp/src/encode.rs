//! RESP2 encoding.

use bytes::{BufMut, BytesMut};

use crate::Frame;

/// Encode one frame to a standalone byte vector.
#[must_use]
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(frame.wire_len());
    encode_into(frame, &mut buf);
    buf.to_vec()
}

/// Encode one frame, appending to an existing buffer (used by the server
/// loop to batch replies).
pub fn encode_into(frame: &Frame, buf: &mut BytesMut) {
    match frame {
        Frame::Simple(s) => {
            buf.put_u8(b'+');
            buf.put_slice(s.as_bytes());
            buf.put_slice(b"\r\n");
        }
        Frame::Error(s) => {
            buf.put_u8(b'-');
            buf.put_slice(s.as_bytes());
            buf.put_slice(b"\r\n");
        }
        Frame::Integer(i) => {
            buf.put_u8(b':');
            buf.put_slice(i.to_string().as_bytes());
            buf.put_slice(b"\r\n");
        }
        Frame::Bulk(data) => {
            buf.put_u8(b'$');
            buf.put_slice(data.len().to_string().as_bytes());
            buf.put_slice(b"\r\n");
            buf.put_slice(data);
            buf.put_slice(b"\r\n");
        }
        Frame::Null => buf.put_slice(b"$-1\r\n"),
        Frame::Array(items) => {
            buf.put_u8(b'*');
            buf.put_slice(items.len().to_string().as_bytes());
            buf.put_slice(b"\r\n");
            for item in items {
                encode_into(item, buf);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_and_error() {
        assert_eq!(encode_frame(&Frame::Simple("OK".into())), b"+OK\r\n");
        assert_eq!(
            encode_frame(&Frame::Error("ERR boom".into())),
            b"-ERR boom\r\n"
        );
    }

    #[test]
    fn integers() {
        assert_eq!(encode_frame(&Frame::Integer(42)), b":42\r\n");
        assert_eq!(encode_frame(&Frame::Integer(-7)), b":-7\r\n");
    }

    #[test]
    fn bulk_and_null() {
        assert_eq!(encode_frame(&Frame::bulk("hello")), b"$5\r\nhello\r\n");
        assert_eq!(encode_frame(&Frame::bulk("")), b"$0\r\n\r\n");
        assert_eq!(encode_frame(&Frame::Null), b"$-1\r\n");
    }

    #[test]
    fn binary_safe_bulk() {
        let data = vec![0u8, 13, 10, 255];
        let encoded = encode_frame(&Frame::Bulk(data.clone()));
        assert_eq!(&encoded[..4], b"$4\r\n");
        assert_eq!(&encoded[4..8], &data[..]);
    }

    #[test]
    fn nested_array() {
        let frame = Frame::Array(vec![
            Frame::Integer(1),
            Frame::Array(vec![Frame::bulk("x")]),
            Frame::Null,
        ]);
        assert_eq!(
            encode_frame(&frame),
            b"*3\r\n:1\r\n*1\r\n$1\r\nx\r\n$-1\r\n"
        );
    }

    #[test]
    fn command_encoding_matches_redis_wire_format() {
        let cmd = Frame::command(["SET", "key", "value"]);
        assert_eq!(
            encode_frame(&cmd),
            b"*3\r\n$3\r\nSET\r\n$3\r\nkey\r\n$5\r\nvalue\r\n"
        );
    }
}
