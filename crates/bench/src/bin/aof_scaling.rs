//! Journal-scaling sweep: fsync policy × shard count × client threads
//! against the **persistent** engine (file-backed per-shard AOF segments),
//! to measure how far the sharded journal with group commit moves the
//! paper's `appendfsync` cost off the serial path.
//!
//! Three policies are swept:
//!
//! * `always` — real-time durability with group commit (the new default);
//! * `always-nogc` — real-time durability, one fsync per record (the
//!   paper's unbatched configuration, and the single-writer baseline);
//! * `everysec` — eventual durability.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin aof_scaling \
//!     [records=N] [ops=N] [seed=N] [maxshards=N] [maxthreads=N]
//! ```
//!
//! Emits a human table and writes `BENCH_aof_scaling.json` (with
//! `host_cores` recorded — on a single-core container the sweep shows
//! lock-contention and fsync-batching relief rather than core scaling).

use bench::adapters::EmbeddedAdapter;
use bench::{arg_value, cleanup_scratch, scratch_dir};
use kvstore::aof::{AofStats, FsyncPolicy};
use kvstore::config::StoreConfig;
use kvstore::store::KvStore;
use ycsb::concurrent::ConcurrentDriver;
use ycsb::stats::RunReport;
use ycsb::workload::WorkloadSpec;

#[derive(Clone, Copy)]
struct Policy {
    label: &'static str,
    fsync: FsyncPolicy,
    group_commit: bool,
}

const POLICIES: [Policy; 3] = [
    Policy {
        label: "always",
        fsync: FsyncPolicy::Always,
        group_commit: true,
    },
    Policy {
        label: "always-nogc",
        fsync: FsyncPolicy::Always,
        group_commit: false,
    },
    Policy {
        label: "everysec",
        fsync: FsyncPolicy::EverySec,
        group_commit: true,
    },
];

struct Cell {
    policy: &'static str,
    shards: usize,
    threads: usize,
    run: RunReport,
    aof: AofStats,
    segments: usize,
}

fn sweep_axis(max: u64) -> Vec<usize> {
    let mut axis = Vec::new();
    let mut v = 1usize;
    while v as u64 <= max.max(1) {
        axis.push(v);
        v *= 2;
    }
    axis
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let records = arg_value(&args, "records").unwrap_or(4_000);
    let ops = arg_value(&args, "ops").unwrap_or(8_000);
    let seed = arg_value(&args, "seed").unwrap_or(42);
    let max_shards = arg_value(&args, "maxshards").unwrap_or(8);
    let max_threads = arg_value(&args, "maxthreads").unwrap_or(8);

    let cores = bench::host_cores();
    println!(
        "aof_scaling — YCSB-A mix on the file-backed engine, records={records}, ops={ops}, cores={cores}"
    );
    if cores == 1 {
        println!("  note: single-core host — expect batching/contention relief, not core scaling");
    }

    let dir = scratch_dir("aof_scaling");
    let mut cells = Vec::new();
    for policy in POLICIES {
        for &shards in &sweep_axis(max_shards) {
            for &threads in &sweep_axis(max_threads) {
                let cell_dir = dir.join(format!("{}-s{shards}-t{threads}", policy.label));
                std::fs::create_dir_all(&cell_dir).expect("create cell dir");
                let config = StoreConfig::with_aof(cell_dir.join("journal.aof"))
                    .fsync(policy.fsync)
                    .group_commit(policy.group_commit)
                    .shards(shards);
                let store = KvStore::open(config).expect("open persistent engine");
                let adapter = EmbeddedAdapter::new(store);
                let driver =
                    ConcurrentDriver::new(WorkloadSpec::workload_a(records, ops), threads, seed);
                driver.run_load(&adapter).expect("load phase");
                let run = driver
                    .run_transactions(&adapter)
                    .expect("transaction phase");
                let aof = adapter.store().aof_stats().expect("aof stats");
                let segments = adapter.store().aof_segment_stats().map_or(0, |s| s.len());
                println!(
                    "  {:<11} shards={shards:<3} threads={threads:<3} {:>9.0} ops/s   fsyncs {:>7}   rec/fsync {:>6.1}   gc batch avg {:>5.1} max {}",
                    policy.label,
                    run.throughput(),
                    aof.fsyncs,
                    if aof.fsyncs == 0 {
                        0.0
                    } else {
                        aof.records_appended as f64 / aof.fsyncs as f64
                    },
                    aof.avg_group_commit_batch().unwrap_or(0.0),
                    aof.max_group_commit_batch,
                );
                cells.push(Cell {
                    policy: policy.label,
                    shards,
                    threads,
                    run,
                    aof,
                    segments,
                });
                let _ = std::fs::remove_dir_all(&cell_dir);
            }
        }
    }
    cleanup_scratch(&dir);

    // Headlines: the acceptance trajectory for the sharded journal.
    let tput = |policy: &str, shards: usize, threads: usize| -> Option<f64> {
        cells
            .iter()
            .find(|c| c.policy == policy && c.shards == shards && c.threads == threads)
            .map(|c| c.run.throughput())
    };
    let top_threads = *sweep_axis(max_threads).last().unwrap();
    let top_shards = *sweep_axis(max_shards).last().unwrap();
    if let (Some(one), Some(many)) = (
        tput("always", 1, top_threads),
        tput("always", top_shards, top_threads),
    ) {
        println!(
            "\nfsync=always, {top_threads} threads: {top_shards} segments / 1 segment = {:.2}x",
            many / one
        );
    }
    if let (Some(nogc), Some(gc)) = (
        tput("always-nogc", 1, top_threads),
        tput("always", 1, top_threads),
    ) {
        println!(
            "fsync=always, 1 segment, {top_threads} threads: group commit / per-record fsync = {:.2}x",
            gc / nogc
        );
    }
    if let (Some(baseline), Some(sharded)) = (
        tput("always-nogc", 1, top_threads),
        tput("always", top_shards, top_threads),
    ) {
        println!(
            "fsync=always, {top_threads} threads: {top_shards} segments + group commit / \
             single-segment per-record baseline = {:.2}x",
            sharded / baseline
        );
    }
    if let Some(cell) = cells
        .iter()
        .find(|c| c.policy == "always" && c.shards == 1 && c.threads == top_threads)
    {
        println!(
            "group-commit batching at 1 segment, {top_threads} threads: {:.1} records/fsync",
            cell.aof.avg_group_commit_batch().unwrap_or(0.0)
        );
    }

    let json = render_json(records, ops, seed, &cells);
    std::fs::write("BENCH_aof_scaling.json", &json).expect("write BENCH_aof_scaling.json");
    println!("\nwrote BENCH_aof_scaling.json ({} cells)", cells.len());
}

fn render_json(records: u64, ops: u64, seed: u64, cells: &[Cell]) -> String {
    let mut out = bench::json_envelope("aof_scaling");
    out.push_str("  \"workload\": \"A\",\n");
    out.push_str("  \"store\": \"kvstore file-backed sharded AOF\",\n");
    out.push_str(&format!("  \"records\": {records},\n"));
    out.push_str(&format!("  \"operations\": {ops},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"shards\": {}, \"segments\": {}, \"threads\": {}, \
             \"run_ops_per_sec\": {:.1}, \"run_p99_micros\": {}, \"errors\": {}, \
             \"aof_records\": {}, \"aof_fsyncs\": {}, \"records_per_fsync\": {:.2}, \
             \"group_commits\": {}, \"group_commit_avg_batch\": {:.2}, \
             \"group_commit_max_batch\": {}, \"unsynced_records\": {}}}{}\n",
            cell.policy,
            cell.shards,
            cell.segments,
            cell.threads,
            cell.run.throughput(),
            cell.run.latency.percentile_micros(0.99),
            cell.run.errors,
            cell.aof.records_appended,
            cell.aof.fsyncs,
            if cell.aof.fsyncs == 0 {
                0.0
            } else {
                cell.aof.records_appended as f64 / cell.aof.fsyncs as f64
            },
            cell.aof.group_commits,
            cell.aof.avg_group_commit_batch().unwrap_or(0.0),
            cell.aof.max_group_commit_batch,
            cell.aof.unsynced_records,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
