//! Secondary metadata indexes (Articles 15, 17, 20, 21).
//!
//! The data-subject rights all start with the same query: *find every key
//! that belongs to this person* (or: that is processed under this purpose).
//! Stock key-value stores can only answer that with a full scan; the paper
//! lists "Metadata indexing" as a required storage feature and "efficient
//! metadata indexing" as an open research challenge (§5.1). The compliance
//! layer maintains two inverted indexes — subject → keys and purpose →
//! keys — updated on every write and erase.

use std::collections::{BTreeMap, BTreeSet};

/// In-memory inverted indexes over the GDPR metadata.
///
/// The index is rebuildable from the metadata shadow records (see
/// [`crate::store::GdprStore::rebuild_index`]), so it does not need its own
/// persistence.
#[derive(Debug, Clone, Default)]
pub struct MetadataIndex {
    by_subject: BTreeMap<String, BTreeSet<String>>,
    by_purpose: BTreeMap<String, BTreeSet<String>>,
    /// Number of index mutations performed (used by the ablation bench).
    updates: u64,
}

impl MetadataIndex {
    /// An empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Index `key` as belonging to `subject` with the given purposes.
    pub fn insert(&mut self, key: &str, subject: &str, purposes: impl IntoIterator<Item = String>) {
        self.by_subject.entry(subject.to_string()).or_default().insert(key.to_string());
        for purpose in purposes {
            self.by_purpose.entry(purpose).or_default().insert(key.to_string());
        }
        self.updates += 1;
    }

    /// Remove `key` from every posting list.
    pub fn remove(&mut self, key: &str) {
        self.by_subject.retain(|_, keys| {
            keys.remove(key);
            !keys.is_empty()
        });
        self.by_purpose.retain(|_, keys| {
            keys.remove(key);
            !keys.is_empty()
        });
        self.updates += 1;
    }

    /// Remove `key` from one purpose's posting list (used when an objection
    /// is recorded against that purpose).
    pub fn remove_purpose(&mut self, key: &str, purpose: &str) {
        if let Some(keys) = self.by_purpose.get_mut(purpose) {
            keys.remove(key);
            if keys.is_empty() {
                self.by_purpose.remove(purpose);
            }
        }
        self.updates += 1;
    }

    /// Every key owned by `subject`, in lexicographic order.
    #[must_use]
    pub fn keys_of_subject(&self, subject: &str) -> Vec<String> {
        self.by_subject.get(subject).map(|s| s.iter().cloned().collect()).unwrap_or_default()
    }

    /// Every key processable under `purpose`, in lexicographic order.
    #[must_use]
    pub fn keys_for_purpose(&self, purpose: &str) -> Vec<String> {
        self.by_purpose.get(purpose).map(|s| s.iter().cloned().collect()).unwrap_or_default()
    }

    /// All data subjects currently present in the index.
    #[must_use]
    pub fn subjects(&self) -> Vec<String> {
        self.by_subject.keys().cloned().collect()
    }

    /// All purposes currently present in the index.
    #[must_use]
    pub fn purposes(&self) -> Vec<String> {
        self.by_purpose.keys().cloned().collect()
    }

    /// Number of keys indexed for `subject`.
    #[must_use]
    pub fn subject_key_count(&self, subject: &str) -> usize {
        self.by_subject.get(subject).map_or(0, BTreeSet::len)
    }

    /// Total number of index mutations performed.
    #[must_use]
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Clear the index (before a rebuild).
    pub fn clear(&mut self) {
        self.by_subject.clear();
        self.by_purpose.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> MetadataIndex {
        let mut idx = MetadataIndex::new();
        idx.insert("user:alice:email", "alice", ["billing".to_string(), "analytics".to_string()]);
        idx.insert("user:alice:address", "alice", ["billing".to_string()]);
        idx.insert("user:bob:email", "bob", ["analytics".to_string()]);
        idx
    }

    #[test]
    fn subject_lookup() {
        let idx = sample_index();
        assert_eq!(idx.keys_of_subject("alice"), vec!["user:alice:address", "user:alice:email"]);
        assert_eq!(idx.keys_of_subject("bob"), vec!["user:bob:email"]);
        assert!(idx.keys_of_subject("carol").is_empty());
        assert_eq!(idx.subject_key_count("alice"), 2);
        assert_eq!(idx.subjects(), vec!["alice", "bob"]);
    }

    #[test]
    fn purpose_lookup() {
        let idx = sample_index();
        assert_eq!(idx.keys_for_purpose("billing").len(), 2);
        assert_eq!(idx.keys_for_purpose("analytics").len(), 2);
        assert!(idx.keys_for_purpose("marketing").is_empty());
        assert_eq!(idx.purposes(), vec!["analytics", "billing"]);
    }

    #[test]
    fn remove_key_everywhere() {
        let mut idx = sample_index();
        idx.remove("user:alice:email");
        assert_eq!(idx.keys_of_subject("alice"), vec!["user:alice:address"]);
        assert_eq!(idx.keys_for_purpose("analytics"), vec!["user:bob:email"]);
        // Removing the last key of a subject drops the subject entirely.
        idx.remove("user:bob:email");
        assert!(idx.subjects().iter().all(|s| s != "bob"));
    }

    #[test]
    fn remove_purpose_only_affects_that_posting_list() {
        let mut idx = sample_index();
        idx.remove_purpose("user:alice:email", "analytics");
        assert_eq!(idx.keys_for_purpose("analytics"), vec!["user:bob:email"]);
        // Subject index untouched.
        assert_eq!(idx.subject_key_count("alice"), 2);
        // Billing still lists the key.
        assert!(idx.keys_for_purpose("billing").contains(&"user:alice:email".to_string()));
    }

    #[test]
    fn clear_and_update_counter() {
        let mut idx = sample_index();
        assert_eq!(idx.update_count(), 3);
        idx.clear();
        assert!(idx.subjects().is_empty());
        assert!(idx.purposes().is_empty());
    }

    #[test]
    fn reinserting_same_key_is_idempotent_in_content() {
        let mut idx = MetadataIndex::new();
        idx.insert("k", "alice", ["p".to_string()]);
        idx.insert("k", "alice", ["p".to_string()]);
        assert_eq!(idx.keys_of_subject("alice"), vec!["k"]);
        assert_eq!(idx.keys_for_purpose("p"), vec!["k"]);
    }
}
