//! Per-shard append-only journal segments with group-commit fsync.
//!
//! PR 1 sharded the keyspace but left persistence serialized: every shard
//! funneled its writes through one `Mutex<AofLog>`, so under
//! `appendfsync always` the journal re-serialized all shards — exactly the
//! compliance bottleneck the paper measures (§4.1: `always` drops
//! throughput to ~5 % of baseline). [`ShardedAof`] removes that last
//! global serialization point:
//!
//! * **one [`AofLog`] segment per shard**, each over its own
//!   [`StorageDevice`] (plain file, in-memory, or encrypted — the same
//!   device spectrum the single log had);
//! * a **manifest** (segment count, shard-router seed, per-segment record
//!   counts, monotonic epoch) so recovery can open segments in parallel
//!   and a rewrite can atomically swap the whole segment set;
//! * **global sequence numbers** stamped on every record so a journal
//!   written with M shards replays correctly into N shards (records are
//!   merged by sequence and re-routed through the current router, the way
//!   snapshots already are);
//! * **group commit** for [`FsyncPolicy::Always`]: a per-segment committer
//!   coalesces concurrent appends into one fsync that all blocked writers
//!   observe (condvar ticket scheme with a bounded wait), so real-time
//!   durability costs one fsync per *batch* instead of per record.
//!
//! # On-disk layout (file persistence)
//!
//! For `Persistence::AofFile(path)`:
//!
//! ```text
//! <path>              the manifest (layout metadata only, no user data)
//! <path>.e<E>.s<i>    segment i of epoch E, one per shard
//! ```
//!
//! The manifest is replaced via write-to-temp + rename, so a crash during
//! a rewrite leaves the old epoch's manifest — and therefore the old,
//! complete segment set — in effect (new-epoch files that were staged but
//! never committed are deleted on the next open). A pre-manifest
//! single-file AOF found at `<path>` is detected and migrated into the
//! segmented layout on open.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex as StdMutex};
use std::time::Duration;

use parking_lot::Mutex;

use crate::aof::{AofLog, AofStats, FsyncPolicy};
use crate::clock::SharedClock;
use crate::commands::Command;
use crate::config::{Persistence, StoreConfig};
use crate::device::{EncryptedFileDevice, MemoryDevice, PlainFileDevice, StorageDevice};
use crate::serialize::{put_u64, Reader};
use crate::shard::ShardRouter;
use crate::{Result, StoreError};

/// File-format magic for the segment-set manifest.
pub const MANIFEST_MAGIC: &[u8; 8] = b"GDPRAOFM";
/// Manifest format version.
pub const MANIFEST_VERSION: u64 = 1;

/// The segment-set manifest: which epoch's files are authoritative and how
/// the writer's journal was laid out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AofManifest {
    /// Monotonic epoch; bumped by every segment-set rewrite. Only files of
    /// this epoch are part of the journal.
    pub epoch: u64,
    /// The shard-router hash seed the writer used (recovery compares it to
    /// its own to decide whether segments map 1:1 onto shards).
    pub shard_hash_seed: u64,
    /// Records per segment as of the last rewrite or clean open. Advisory:
    /// appends since then are counted by reading the segments themselves.
    pub record_counts: Vec<u64>,
}

impl AofManifest {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 8 * (4 + self.record_counts.len()));
        out.extend_from_slice(MANIFEST_MAGIC);
        put_u64(&mut out, MANIFEST_VERSION);
        put_u64(&mut out, self.epoch);
        put_u64(&mut out, self.shard_hash_seed);
        put_u64(&mut out, self.record_counts.len() as u64);
        for count in &self.record_counts {
            put_u64(&mut out, *count);
        }
        out
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        const CTX: &str = "aof manifest";
        if bytes.len() < MANIFEST_MAGIC.len() || &bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
            return Err(StoreError::Corrupt {
                context: CTX,
                detail: "bad magic".to_string(),
            });
        }
        let mut reader = Reader::new(&bytes[MANIFEST_MAGIC.len()..]);
        let version = reader.get_u64(CTX)?;
        if version != MANIFEST_VERSION {
            return Err(StoreError::Corrupt {
                context: CTX,
                detail: format!("unsupported manifest version {version}"),
            });
        }
        let epoch = reader.get_u64(CTX)?;
        let shard_hash_seed = reader.get_u64(CTX)?;
        let segments = reader.get_u64(CTX)?;
        if segments == 0 || segments > 1 << 20 {
            return Err(StoreError::Corrupt {
                context: CTX,
                detail: format!("implausible segment count {segments}"),
            });
        }
        let mut record_counts = Vec::with_capacity(segments as usize);
        for _ in 0..segments {
            record_counts.push(reader.get_u64(CTX)?);
        }
        if !reader.is_at_end() {
            return Err(StoreError::Corrupt {
                context: CTX,
                detail: format!("{} trailing bytes", reader.remaining()),
            });
        }
        Ok(AofManifest {
            epoch,
            shard_hash_seed,
            record_counts,
        })
    }
}

/// Path of segment `idx` for `epoch`, derived from the manifest path.
#[must_use]
pub fn segment_path(manifest: &Path, epoch: u64, idx: usize) -> PathBuf {
    let mut name = manifest
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    name.push_str(&format!(".e{epoch}.s{idx}"));
    manifest.with_file_name(name)
}

/// Where segment devices come from.
#[derive(Debug)]
enum SegmentBackend {
    /// In-memory segments (CPU-cost-only persistence; nothing survives the
    /// process, so there is no on-disk manifest either). Encryption at
    /// rest still applies, so the crypto CPU cost stays measurable in
    /// isolation from disk latency.
    Memory { passphrase: Option<Vec<u8>> },
    /// File-backed segments around the manifest at this path, optionally
    /// sealed by the encrypting device.
    File {
        manifest: PathBuf,
        passphrase: Option<Vec<u8>>,
    },
}

impl SegmentBackend {
    fn from_config(config: &StoreConfig) -> Option<Self> {
        let passphrase = config.encryption.as_ref().map(|e| e.passphrase.clone());
        match &config.persistence {
            Persistence::None => None,
            Persistence::AofInMemory => Some(SegmentBackend::Memory { passphrase }),
            Persistence::AofFile(path) => Some(SegmentBackend::File {
                manifest: path.clone(),
                passphrase,
            }),
        }
    }

    fn build_device(&self, epoch: u64, idx: usize) -> Result<Box<dyn StorageDevice>> {
        Ok(match self {
            SegmentBackend::Memory { passphrase } => match passphrase {
                None => Box::new(MemoryDevice::new()),
                Some(pw) => Box::new(EncryptedFileDevice::new(MemoryDevice::new(), pw)?),
            },
            SegmentBackend::File {
                manifest,
                passphrase,
            } => {
                let path = segment_path(manifest, epoch, idx);
                match passphrase {
                    None => Box::new(PlainFileDevice::open(&path)?),
                    Some(pw) => {
                        Box::new(EncryptedFileDevice::new(PlainFileDevice::open(&path)?, pw)?)
                    }
                }
            }
        })
    }
}

/// Group-commit bookkeeping for one segment.
#[derive(Debug, Default)]
struct CommitState {
    /// Highest record position known durable.
    synced_pos: u64,
    /// Whether a leader is currently fsyncing on everyone's behalf.
    leader_active: bool,
    /// Group-commit fsyncs issued.
    group_commits: u64,
    /// Records covered by those fsyncs (batch sizes summed).
    group_commit_records: u64,
    /// Largest batch one fsync covered.
    max_batch: u64,
}

#[derive(Debug)]
struct Segment {
    log: Mutex<AofLog>,
    commit: StdMutex<CommitState>,
    commit_cond: Condvar,
}

impl Segment {
    fn new(log: AofLog) -> Self {
        Segment {
            log: Mutex::new(log),
            commit: StdMutex::new(CommitState::default()),
            commit_cond: Condvar::new(),
        }
    }

    fn commit_state(&self) -> std::sync::MutexGuard<'_, CommitState> {
        // A panic while holding the state poisons the std mutex; the state
        // is plain counters, so the data is still usable.
        self.commit
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Record that everything appended so far is durable (after a direct
    /// fsync or a rewrite) and release any group-commit waiters.
    fn mark_all_synced(&self, appended_pos: u64) {
        let mut st = self.commit_state();
        st.synced_pos = st.synced_pos.max(appended_pos);
        st.leader_active = false;
        self.commit_cond.notify_all();
    }
}

/// The journal position a full sync corresponds to: the replica applies
/// the snapshot, then tails the stream from `last_seq` within `epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplWatermark {
    /// Journal epoch the cursor belongs to (a rewrite bumps it and
    /// invalidates every outstanding cursor).
    pub epoch: u64,
    /// Highest global sequence number covered by the snapshot.
    pub last_seq: u64,
}

/// One poll of the replication stream (see [`ShardedAof::tail_since`]).
#[derive(Debug, Default)]
pub struct ReplTail {
    /// Records with sequence numbers strictly greater than the caller's
    /// cursor, in sequence order, gap-free.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Highest sequence number allocated so far (the primary's watermark —
    /// lets a replica compute its lag even when `records` is empty).
    pub last_seq: u64,
    /// The cursor is no longer serviceable from the backlog (evicted
    /// records, or a segment-set rewrite renumbered the journal). The
    /// replica must run a fresh full sync.
    pub lost: bool,
    /// A sequence number after the cursor was allocated but its record has
    /// not reached the backlog yet (an append still in flight). The caller
    /// should poll again shortly; a gap that never closes means a writer
    /// died mid-append and the replica should full-resync.
    pub gapped: bool,
}

/// The bounded in-memory replication backlog: recent journal records in
/// global-sequence order, shared by every segment (pushes happen after the
/// per-segment append, so two writers may arrive slightly out of order —
/// the insert keeps the deque sorted and [`ShardedAof::tail_since`] only
/// serves the gap-free prefix).
#[derive(Debug)]
struct BacklogInner {
    records: VecDeque<(u64, Vec<u8>)>,
    /// Lowest sequence still serviceable; anything older was evicted and
    /// forces a tailing replica into a full resync.
    start_seq: u64,
}

/// A durability ticket: the segment positions a writer must observe synced
/// before its command can be acknowledged. Only issued under
/// `FsyncPolicy::Always` with group commit enabled; other policies settle
/// durability inside the append itself.
#[derive(Debug)]
pub struct Ticket {
    waits: Vec<(usize, u64)>,
}

/// Records recovered from an existing journal, still in the writer's
/// segment layout: `segments[i]` holds `(global sequence, command bytes)`
/// pairs in append order.
#[derive(Debug)]
pub struct LoadedJournal {
    /// Per-writer-segment record streams.
    pub segments: Vec<Vec<(u64, Vec<u8>)>>,
    /// The shard-router seed the writer used.
    pub writer_seed: u64,
}

impl LoadedJournal {
    fn empty(segments: usize, writer_seed: u64) -> Self {
        LoadedJournal {
            segments: (0..segments).map(|_| Vec::new()).collect(),
            writer_seed,
        }
    }
}

/// The sharded append-only journal: one segment per shard, group-commit
/// durability, manifest-governed atomic rewrites.
#[derive(Debug)]
pub struct ShardedAof {
    segments: Vec<Segment>,
    backend: SegmentBackend,
    policy: FsyncPolicy,
    group_commit: bool,
    group_wait: Duration,
    clock: SharedClock,
    shard_hash_seed: u64,
    /// Next global record sequence number.
    next_seq: AtomicU64,
    /// Current manifest epoch.
    epoch: AtomicU64,
    /// Recent records for replica tailing, in sequence order.
    backlog: Mutex<BacklogInner>,
    /// Maximum records retained in the backlog (0 disables tailing).
    backlog_cap: usize,
    /// Active replication streams. The backlog is only populated while
    /// this is non-zero, so the common no-replica case pays nothing on
    /// the append path (no global lock, no record copy).
    tailers: std::sync::atomic::AtomicUsize,
    /// How long writers block in [`ShardedAof::commit`] waiting for
    /// group-commit durability (only populated under per-write fsync).
    commit_wait: obs::AtomicHistogram,
}

impl ShardedAof {
    /// Open (or create, or migrate) the journal for `config`, with one
    /// segment per shard of `router`. Returns `None` when persistence is
    /// disabled; otherwise the journal plus every record recovered from it,
    /// still in the writer's segment layout (see [`LoadedJournal`]).
    ///
    /// Segments are loaded and decoded in parallel when there is more than
    /// one. A pre-manifest single-file AOF at the configured path is
    /// migrated into the segmented layout (its records routed through the
    /// current router) before this returns.
    ///
    /// # Errors
    ///
    /// Returns configuration, I/O, decryption or corruption errors.
    pub fn open(
        config: &StoreConfig,
        router: &ShardRouter,
    ) -> Result<Option<(ShardedAof, LoadedJournal)>> {
        let Some(backend) = SegmentBackend::from_config(config) else {
            return Ok(None);
        };
        let shard_count = router.shard_count();
        let clock = std::sync::Arc::clone(&config.clock);

        let (epoch, loaded, logs) = match &backend {
            SegmentBackend::Memory { .. } => {
                let logs = (0..shard_count)
                    .map(|idx| {
                        backend
                            .build_device(1, idx)
                            .map(|d| AofLog::new(d, config.fsync, std::sync::Arc::clone(&clock)))
                    })
                    .collect::<Result<Vec<_>>>()?;
                (1, LoadedJournal::empty(shard_count, router.seed()), logs)
            }
            SegmentBackend::File { manifest, .. } => match read_manifest(manifest)? {
                Some(man) => {
                    cleanup_stale_segments(manifest, Some(man.epoch));
                    let (loaded, logs) = load_segments(
                        &backend,
                        man.epoch,
                        man.record_counts.len(),
                        config.fsync,
                        &clock,
                    )?;
                    if man.record_counts.len() == shard_count {
                        (
                            man.epoch,
                            LoadedJournal {
                                segments: loaded,
                                writer_seed: man.shard_hash_seed,
                            },
                            logs,
                        )
                    } else {
                        // The journal was written at a different shard
                        // count: re-shard it into one segment per current
                        // shard, staged as a fresh epoch and committed by
                        // the atomic manifest rename (a crash mid-stage
                        // leaves the old set in effect; the stale files
                        // are cleaned on the next open). Without this,
                        // appends to shards beyond the old segment count
                        // would have nowhere to go.
                        drop(logs);
                        let mut merged: Vec<(u64, Vec<u8>)> =
                            loaded.into_iter().flatten().collect();
                        merged.sort_by_key(|(seq, _)| *seq);
                        // Broadcast records carry one shared sequence
                        // number per writer segment; keep a single copy
                        // (migration re-broadcasts key-less writes).
                        merged.dedup_by_key(|(seq, _)| *seq);
                        let new_epoch = man.epoch + 1;
                        let (partitions, logs) = migrate_records(
                            &backend,
                            merged,
                            router,
                            config.fsync,
                            &clock,
                            new_epoch,
                        )?;
                        for idx in 0..man.record_counts.len() {
                            let _ = std::fs::remove_file(segment_path(manifest, man.epoch, idx));
                        }
                        (
                            new_epoch,
                            LoadedJournal {
                                segments: partitions,
                                writer_seed: router.seed(),
                            },
                            logs,
                        )
                    }
                }
                None => {
                    // No manifest. Either a fresh journal, or a pre-manifest
                    // single-file AOF to migrate. Stage the segmented layout
                    // at epoch 1 either way; any stale segment files from an
                    // interrupted earlier attempt are removed first.
                    cleanup_stale_segments(manifest, None);
                    let legacy = load_legacy_file(manifest, config)?;
                    let (loaded, logs) =
                        migrate_records(&backend, legacy, router, config.fsync, &clock, 1)?;
                    (
                        1,
                        LoadedJournal {
                            segments: loaded,
                            writer_seed: router.seed(),
                        },
                        logs,
                    )
                }
            },
        };

        let next_seq = loaded
            .segments
            .iter()
            .flat_map(|records| records.iter().map(|(seq, _)| *seq))
            .max()
            .unwrap_or(0)
            + 1;

        let aof = ShardedAof {
            segments: logs.into_iter().map(Segment::new).collect(),
            backend,
            policy: config.fsync,
            group_commit: config.aof_group_commit,
            group_wait: Duration::from_millis(config.aof_group_commit_wait_ms.max(1)),
            clock,
            shard_hash_seed: router.seed(),
            next_seq: AtomicU64::new(next_seq),
            epoch: AtomicU64::new(epoch),
            // Records recovered from disk are not tailable; a replica
            // attaching later full-syncs first and only tails from its
            // watermark, which is at or past this point.
            backlog: Mutex::new(BacklogInner {
                records: VecDeque::new(),
                start_seq: next_seq,
            }),
            backlog_cap: config.repl_backlog_records as usize,
            tailers: std::sync::atomic::AtomicUsize::new(0),
            commit_wait: obs::AtomicHistogram::new(),
        };
        Ok(Some((aof, loaded)))
    }

    /// Number of journal segments (always equals the shard count).
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Current manifest epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// The configured fsync policy.
    #[must_use]
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Whether `always` appends go through the group committer.
    #[must_use]
    pub fn group_commit_enabled(&self) -> bool {
        self.group_commit
    }

    /// Append one record to `segment` (the owning shard's index). Must be
    /// called while holding that shard's lock so journal order matches
    /// apply order. Returns a durability ticket when the caller must
    /// [`Self::commit`] after releasing the shard lock (only under `always`
    /// with group commit); all other policies settle durability here.
    ///
    /// # Errors
    ///
    /// Propagates device I/O or encryption errors.
    pub fn append(&self, segment: usize, record: &[u8]) -> Result<Option<Ticket>> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let wait = self.append_with_seq(segment, seq, record)?;
        self.backlog_push(seq, record);
        Ok(wait.map(|pos| Ticket {
            waits: vec![(segment, pos)],
        }))
    }

    /// Append a batch of records to `segment` under one log-lock
    /// acquisition (the tick path journals all of a shard's expiry
    /// deletions this way). Same locking contract as [`Self::append`].
    ///
    /// # Errors
    ///
    /// Propagates device I/O or encryption errors.
    pub fn append_batch<'a>(
        &self,
        segment: usize,
        records: impl Iterator<Item = &'a [u8]>,
    ) -> Result<Option<Ticket>> {
        let seg = &self.segments[segment];
        let mut log = seg.log.lock();
        let mut last_pos = None;
        let mirror = self.backlog_cap > 0 && self.tailers.load(Ordering::SeqCst) > 0;
        let mut appended = Vec::new();
        for record in records {
            let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
            last_pos = Some(log.append_unsynced(&frame(seq, record))?);
            if mirror {
                appended.push((seq, record.to_vec()));
            }
        }
        for (seq, record) in appended {
            self.backlog_push_owned(seq, record);
        }
        let Some(pos) = last_pos else {
            return Ok(None);
        };
        match self.policy {
            FsyncPolicy::Always if self.group_commit => Ok(Some(Ticket {
                waits: vec![(segment, pos)],
            })),
            FsyncPolicy::Always => {
                log.fsync()?;
                drop(log);
                seg.mark_all_synced(pos);
                Ok(None)
            }
            FsyncPolicy::EverySec => {
                log.maybe_fsync()?;
                Ok(None)
            }
            FsyncPolicy::Never => Ok(None),
        }
    }

    /// Append one record to **every** segment under a single global
    /// sequence number (keyspace-wide writes such as `FLUSHALL`). Must be
    /// called while holding every shard lock. Replay deduplicates the
    /// copies by sequence when merging segments.
    ///
    /// # Errors
    ///
    /// Propagates device I/O or encryption errors.
    pub fn append_broadcast(&self, record: &[u8]) -> Result<Option<Ticket>> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut waits = Vec::new();
        for segment in 0..self.segments.len() {
            if let Some(pos) = self.append_with_seq(segment, seq, record)? {
                waits.push((segment, pos));
            }
        }
        // One backlog copy for the whole broadcast: the stream replays it
        // once, the way merge-by-seq deduplicates the segment copies.
        self.backlog_push(seq, record);
        Ok(if waits.is_empty() {
            None
        } else {
            Some(Ticket { waits })
        })
    }

    fn append_with_seq(&self, segment: usize, seq: u64, record: &[u8]) -> Result<Option<u64>> {
        let seg = &self.segments[segment];
        let mut log = seg.log.lock();
        let pos = log.append_unsynced(&frame(seq, record))?;
        match self.policy {
            FsyncPolicy::Always if self.group_commit => Ok(Some(pos)),
            FsyncPolicy::Always => {
                log.fsync()?;
                drop(log);
                seg.mark_all_synced(pos);
                Ok(None)
            }
            FsyncPolicy::EverySec => {
                log.maybe_fsync()?;
                Ok(None)
            }
            FsyncPolicy::Never => Ok(None),
        }
    }

    /// Whether replica tailing is possible at all (`repl_backlog_records`
    /// was non-zero).
    #[must_use]
    pub fn tailing_enabled(&self) -> bool {
        self.backlog_cap > 0
    }

    /// Register a replication stream. While at least one stream is
    /// registered, every append is mirrored into the backlog; the first
    /// registration resets the backlog to start at the current sequence
    /// (in-flight appends that raced the registration are excluded, but a
    /// stream's cursor starts at a watermark taken *after* registration
    /// under every shard lock, which is past them by construction).
    pub fn begin_tailing(&self) {
        if self.tailers.fetch_add(1, Ordering::SeqCst) == 0 {
            let mut inner = self.backlog.lock();
            inner.records.clear();
            inner.start_seq = self.next_seq.load(Ordering::SeqCst);
        }
    }

    /// Deregister a replication stream; the last one out drops the
    /// backlog so an idle primary retains nothing.
    pub fn end_tailing(&self) {
        if self.tailers.fetch_sub(1, Ordering::SeqCst) == 1 {
            let mut inner = self.backlog.lock();
            inner.records.clear();
            inner.start_seq = self.next_seq.load(Ordering::SeqCst);
        }
    }

    fn backlog_push(&self, seq: u64, record: &[u8]) {
        if self.backlog_cap == 0 || self.tailers.load(Ordering::SeqCst) == 0 {
            return;
        }
        self.backlog_push_owned(seq, record.to_vec());
    }

    fn backlog_push_owned(&self, seq: u64, record: Vec<u8>) {
        if self.backlog_cap == 0 || self.tailers.load(Ordering::SeqCst) == 0 {
            return;
        }
        let mut inner = self.backlog.lock();
        // Sequence numbers are allocated under shard locks but pushed after
        // the segment append, so two writers can arrive inverted; keep the
        // deque sorted (inversions are rare and land near the back).
        let pos = inner.records.partition_point(|(s, _)| *s < seq);
        if pos == inner.records.len() {
            inner.records.push_back((seq, record));
        } else {
            inner.records.insert(pos, (seq, record));
        }
        while inner.records.len() > self.backlog_cap {
            if let Some((evicted, _)) = inner.records.pop_front() {
                inner.start_seq = inner.start_seq.max(evicted + 1);
            }
        }
    }

    /// Highest global sequence number allocated so far (0 when nothing was
    /// ever journaled).
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed).saturating_sub(1)
    }

    /// Poll the replication stream: every record with a sequence number
    /// strictly greater than `after_seq`, in order and gap-free, up to
    /// `max` records. `epoch` is the journal epoch the caller's cursor
    /// belongs to — a segment-set rewrite renumbers the journal (and bumps
    /// the epoch), which invalidates all outstanding cursors.
    #[must_use]
    pub fn tail_since(&self, epoch: u64, after_seq: u64, max: usize) -> ReplTail {
        let mut tail = ReplTail {
            last_seq: self.last_seq(),
            ..ReplTail::default()
        };
        if epoch != self.epoch.load(Ordering::Relaxed) {
            tail.lost = true;
            return tail;
        }
        if self.backlog_cap == 0 && after_seq < tail.last_seq {
            tail.lost = true;
            return tail;
        }
        let inner = self.backlog.lock();
        if after_seq + 1 < inner.start_seq {
            tail.lost = true;
            return tail;
        }
        let start = inner.records.partition_point(|(s, _)| *s <= after_seq);
        for (expected, (seq, record)) in (after_seq + 1..).zip(inner.records.iter().skip(start)) {
            if *seq != expected || tail.records.len() >= max {
                break;
            }
            tail.records.push((*seq, record.clone()));
        }
        // If we stopped short of the watermark without hitting `max`, the
        // next record after the served prefix is allocated but not pushed
        // yet — an append still in flight.
        let served_upto = after_seq + tail.records.len() as u64;
        tail.gapped = tail.records.len() < max && served_upto < tail.last_seq;
        tail
    }

    /// Block until every position in `ticket` is durable, joining (or
    /// leading) a group commit per segment. Call **after** releasing the
    /// shard lock, so other writers can append into the batch the leader's
    /// fsync will cover.
    ///
    /// # Errors
    ///
    /// Propagates the leader's fsync error to the caller that led.
    pub fn commit(&self, ticket: Ticket) -> Result<()> {
        let waited = std::time::Instant::now();
        for (segment, pos) in ticket.waits {
            self.commit_segment(segment, pos)?;
        }
        self.commit_wait.record(waited.elapsed());
        Ok(())
    }

    /// Snapshot of the group-commit wait histogram (see `commit`).
    #[must_use]
    pub fn commit_wait_snapshot(&self) -> obs::LatencyHistogram {
        self.commit_wait.snapshot()
    }

    fn commit_segment(&self, segment: usize, pos: u64) -> Result<()> {
        let seg = &self.segments[segment];
        let mut st = seg.commit_state();
        loop {
            if st.synced_pos >= pos {
                return Ok(());
            }
            if st.leader_active {
                // Follower: wait for the leader's broadcast, bounded so a
                // lost wakeup or a died leader cannot strand us — on
                // timeout we re-check and may take over as leader.
                let (guard, _timeout) = seg
                    .commit_cond
                    .wait_timeout(st, self.group_wait)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                st = guard;
                continue;
            }
            // Leader: fsync once on behalf of everything appended so far.
            st.leader_active = true;
            drop(st);
            let synced_upto = {
                let mut log = seg.log.lock();
                let upto = log.appended_pos();
                log.fsync().map(|()| upto)
            };
            st = seg.commit_state();
            st.leader_active = false;
            match synced_upto {
                Ok(upto) => {
                    let batch = upto.saturating_sub(st.synced_pos);
                    st.synced_pos = st.synced_pos.max(upto);
                    st.group_commits += 1;
                    st.group_commit_records += batch;
                    st.max_batch = st.max_batch.max(batch);
                    seg.commit_cond.notify_all();
                }
                Err(e) => {
                    // Let the waiters retry with their own leader; this
                    // writer reports the failure.
                    seg.commit_cond.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Force an fsync of every segment regardless of policy.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn fsync_all(&self) -> Result<()> {
        for seg in &self.segments {
            let mut log = seg.log.lock();
            let pos = log.appended_pos();
            log.fsync()?;
            drop(log);
            seg.mark_all_synced(pos);
        }
        Ok(())
    }

    /// Service each segment's fsync timer (the `everysec` policy), whether
    /// or not this tick appended anything to that segment. Idle segments
    /// with nothing unsynced are skipped.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn maybe_fsync_all(&self) -> Result<()> {
        for seg in &self.segments {
            let mut log = seg.log.lock();
            if log.unsynced_records() > 0 {
                log.maybe_fsync()?;
                let pos = log.appended_pos();
                if log.unsynced_records() == 0 {
                    drop(log);
                    seg.mark_all_synced(pos);
                }
            }
        }
        Ok(())
    }

    /// Rewrite (compact) the whole segment set so segment `i` contains
    /// exactly `per_segment[i]`, swapping the set atomically through the
    /// manifest. The caller must hold every shard lock (the rewritten set
    /// is a consistent point-in-time image). Returns the records dropped.
    ///
    /// File persistence stages the new epoch's files completely (content
    /// written and fsynced) before the manifest rename commits them; a
    /// crash anywhere before the rename leaves the old segment set in
    /// effect.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn rewrite(&self, per_segment: &[Vec<Vec<u8>>]) -> Result<u64> {
        assert_eq!(
            per_segment.len(),
            self.segments.len(),
            "rewrite must supply one record stream per segment"
        );
        let mut next_seq = 0u64;
        let mut framed_segments = Vec::with_capacity(per_segment.len());
        for records in per_segment {
            let framed: Vec<Vec<u8>> = records
                .iter()
                .map(|r| {
                    next_seq += 1;
                    frame(next_seq, r)
                })
                .collect();
            framed_segments.push(framed);
        }

        let mut dropped = 0u64;
        match &self.backend {
            SegmentBackend::Memory { .. } => {
                for (seg, framed) in self.segments.iter().zip(&framed_segments) {
                    let mut log = seg.log.lock();
                    dropped += log.rewrite(framed.iter().map(Vec::as_slice))?;
                    let pos = log.appended_pos();
                    drop(log);
                    seg.mark_all_synced(pos);
                }
                self.epoch.fetch_add(1, Ordering::Relaxed);
            }
            SegmentBackend::File { manifest, .. } => {
                let old_epoch = self.epoch.load(Ordering::Relaxed);
                let new_epoch = old_epoch + 1;
                // Stage: write every new segment fully (rewrite syncs).
                let mut staged = Vec::with_capacity(framed_segments.len());
                for (idx, framed) in framed_segments.iter().enumerate() {
                    // A stale file from an interrupted earlier swap must
                    // not leak old records into the new epoch.
                    let _ = std::fs::remove_file(segment_path(manifest, new_epoch, idx));
                    let device = self.backend.build_device(new_epoch, idx)?;
                    let mut scratch =
                        AofLog::new(device, self.policy, std::sync::Arc::clone(&self.clock));
                    scratch.rewrite(framed.iter().map(Vec::as_slice))?;
                    staged.push(scratch.into_device());
                }
                // Commit: the manifest rename is the atomic switch point.
                write_manifest(
                    manifest,
                    &AofManifest {
                        epoch: new_epoch,
                        shard_hash_seed: self.shard_hash_seed,
                        record_counts: framed_segments.iter().map(|f| f.len() as u64).collect(),
                    },
                )?;
                self.epoch.store(new_epoch, Ordering::Relaxed);
                // Swap the live logs onto the new devices and retire the
                // old epoch's files.
                for ((seg, device), framed) in
                    self.segments.iter().zip(staged).zip(&framed_segments)
                {
                    let mut log = seg.log.lock();
                    let before = log.stats().records_compacted_away;
                    log.swap_rewritten(device, framed.len() as u64);
                    dropped += log.stats().records_compacted_away - before;
                    let pos = log.appended_pos();
                    drop(log);
                    seg.mark_all_synced(pos);
                }
                cleanup_stale_segments(manifest, Some(new_epoch));
            }
        }
        self.next_seq.store(next_seq + 1, Ordering::Relaxed);
        // The rewrite renumbered every record, so outstanding replication
        // cursors are meaningless: drop the backlog. Tailing replicas see
        // the epoch bump and run a fresh full sync.
        {
            let mut inner = self.backlog.lock();
            inner.records.clear();
            inner.start_seq = next_seq + 1;
        }
        Ok(dropped)
    }

    /// Per-segment activity counters (group-commit numbers merged in).
    #[must_use]
    pub fn segment_stats(&self) -> Vec<AofStats> {
        self.segments
            .iter()
            .map(|seg| {
                let mut stats = seg.log.lock().stats();
                let st = seg.commit_state();
                stats.group_commits = st.group_commits;
                stats.group_commit_records = st.group_commit_records;
                stats.max_group_commit_batch = st.max_batch;
                stats
            })
            .collect()
    }

    /// Aggregate counters over all segments.
    #[must_use]
    pub fn stats(&self) -> AofStats {
        let mut total = AofStats::default();
        for stats in self.segment_stats() {
            total.absorb(&stats);
        }
        total
    }

    /// Records appended but not yet fsynced, summed over segments — the
    /// paper's crash-loss "risk window".
    #[must_use]
    pub fn unsynced_records(&self) -> u64 {
        self.segments
            .iter()
            .map(|seg| seg.log.lock().unsynced_records())
            .sum()
    }

    /// Bytes currently occupied on all segment devices.
    #[must_use]
    pub fn device_len(&self) -> u64 {
        self.segments
            .iter()
            .map(|seg| seg.log.lock().device_len())
            .sum()
    }

    /// Device counters summed over all segments (physical vs logical bytes
    /// expose the encrypting device's overhead).
    #[must_use]
    pub fn device_stats(&self) -> crate::device::DeviceStats {
        let mut total = crate::device::DeviceStats::default();
        for seg in &self.segments {
            let stats = seg.log.lock().device_stats();
            total.appends += stats.appends;
            total.bytes_written += stats.bytes_written;
            total.bytes_on_device += stats.bytes_on_device;
            total.syncs += stats.syncs;
        }
        total
    }
}

/// Frame a record for a segment: `global sequence (u64 LE) || payload`.
fn frame(seq: u64, record: &[u8]) -> Vec<u8> {
    let mut framed = Vec::with_capacity(8 + record.len());
    framed.extend_from_slice(&seq.to_le_bytes());
    framed.extend_from_slice(record);
    framed
}

/// Split a stored segment record back into `(sequence, payload)`.
fn unframe(record: &[u8]) -> Result<(u64, Vec<u8>)> {
    if record.len() < 8 {
        return Err(StoreError::Corrupt {
            context: "aof segment",
            detail: format!("record of {} bytes cannot hold a sequence", record.len()),
        });
    }
    let mut seq = [0u8; 8];
    seq.copy_from_slice(&record[..8]);
    Ok((u64::from_le_bytes(seq), record[8..].to_vec()))
}

/// Read and parse the manifest, `Ok(None)` when the path holds no manifest
/// (missing file, empty file, or a pre-manifest single-file AOF).
fn read_manifest(path: &Path) -> Result<Option<AofManifest>> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < MANIFEST_MAGIC.len() || &bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
        return Ok(None);
    }
    AofManifest::decode(&bytes).map(Some)
}

/// Persist the manifest via write-to-temp + rename (the atomic switch the
/// segment-set swap relies on).
fn write_manifest(path: &Path, manifest: &AofManifest) -> Result<()> {
    let tmp = path.with_extension("manifest.tmp");
    {
        use std::io::Write;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&manifest.encode())?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Remove segment files that do not belong to `keep_epoch` (all of them
/// when `None`) — leftovers of an interrupted segment-set swap or of a
/// pre-manifest migration. Best-effort: cleanup failures are not fatal.
fn cleanup_stale_segments(manifest: &Path, keep_epoch: Option<u64>) {
    let Some(parent) = manifest.parent() else {
        return;
    };
    let Some(base) = manifest
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
    else {
        return;
    };
    let Ok(entries) = std::fs::read_dir(if parent.as_os_str().is_empty() {
        Path::new(".")
    } else {
        parent
    }) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(suffix) = name.strip_prefix(&base) else {
            continue;
        };
        let Some(rest) = suffix.strip_prefix(".e") else {
            continue;
        };
        let Some((epoch_str, seg)) = rest.split_once(".s") else {
            continue;
        };
        let (Ok(epoch), Ok(_idx)) = (epoch_str.parse::<u64>(), seg.parse::<u64>()) else {
            continue;
        };
        if keep_epoch != Some(epoch) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Open and load every segment of `epoch`, in parallel when there is more
/// than one. Returns the parsed `(sequence, payload)` streams and the live
/// `AofLog` handles (positioned to append).
#[allow(clippy::type_complexity)]
fn load_segments(
    backend: &SegmentBackend,
    epoch: u64,
    count: usize,
    policy: FsyncPolicy,
    clock: &SharedClock,
) -> Result<(Vec<Vec<(u64, Vec<u8>)>>, Vec<AofLog>)> {
    let load_one = |idx: usize| -> Result<(Vec<(u64, Vec<u8>)>, AofLog)> {
        let device = backend.build_device(epoch, idx)?;
        let mut log = AofLog::new(device, policy, std::sync::Arc::clone(clock));
        let mut records = Vec::new();
        for raw in log.load()? {
            records.push(unframe(&raw)?);
        }
        Ok((records, log))
    };

    let results: Vec<Result<(Vec<(u64, Vec<u8>)>, AofLog)>> = if count > 1 {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..count)
                .map(|idx| scope.spawn(move || load_one(idx)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("segment load thread panicked"))
                .collect()
        })
    } else {
        (0..count).map(load_one).collect()
    };

    let mut loaded = Vec::with_capacity(count);
    let mut logs = Vec::with_capacity(count);
    for result in results {
        let (records, log) = result?;
        loaded.push(records);
        logs.push(log);
    }
    Ok((loaded, logs))
}

/// Load a pre-manifest single-file AOF at `path`, if one exists, assigning
/// sequence numbers in read order.
fn load_legacy_file(path: &Path, config: &StoreConfig) -> Result<Vec<(u64, Vec<u8>)>> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    let inner = PlainFileDevice::open(path)?;
    let device: Box<dyn StorageDevice> = match &config.encryption {
        None => Box::new(inner),
        Some(enc) => Box::new(EncryptedFileDevice::new(inner, &enc.passphrase)?),
    };
    let mut log = AofLog::new(
        device,
        FsyncPolicy::Never,
        std::sync::Arc::clone(&config.clock),
    );
    Ok(log
        .load()?
        .into_iter()
        .enumerate()
        .map(|(i, record)| (i as u64 + 1, record))
        .collect())
}

/// Build the epoch-1 segment set, routing `records` (a legacy single-file
/// stream, possibly empty) through the current router. Writes the segment
/// files and commits the manifest, so the migration is complete — and the
/// legacy file replaced — before the engine starts appending.
#[allow(clippy::type_complexity)]
fn migrate_records(
    backend: &SegmentBackend,
    records: Vec<(u64, Vec<u8>)>,
    router: &ShardRouter,
    policy: FsyncPolicy,
    clock: &SharedClock,
    epoch: u64,
) -> Result<(Vec<Vec<(u64, Vec<u8>)>>, Vec<AofLog>)> {
    let shard_count = router.shard_count();
    let mut partitions: Vec<Vec<(u64, Vec<u8>)>> = (0..shard_count).map(|_| Vec::new()).collect();
    for (seq, record) in records {
        let cmd = Command::decode(&record)?;
        match cmd.primary_key() {
            Some(key) => partitions[router.shard_of(key)].push((seq, record)),
            // Keyspace-wide writes are broadcast (replay deduplicates by
            // sequence); key-less read-log records live in segment 0.
            None if cmd.is_write() => {
                for partition in &mut partitions {
                    partition.push((seq, record.clone()));
                }
            }
            None => partitions[0].push((seq, record)),
        }
    }

    let mut logs = Vec::with_capacity(shard_count);
    for (idx, partition) in partitions.iter().enumerate() {
        if let SegmentBackend::File { manifest, .. } = backend {
            let _ = std::fs::remove_file(segment_path(manifest, epoch, idx));
        }
        let device = backend.build_device(epoch, idx)?;
        let mut log = AofLog::new(device, policy, std::sync::Arc::clone(clock));
        let framed: Vec<Vec<u8>> = partition
            .iter()
            .map(|(seq, record)| frame(*seq, record))
            .collect();
        log.rewrite(framed.iter().map(Vec::as_slice))?;
        logs.push(log);
    }

    if let SegmentBackend::File { manifest, .. } = backend {
        write_manifest(
            manifest,
            &AofManifest {
                epoch,
                shard_hash_seed: router.seed(),
                record_counts: partitions.iter().map(|p| p.len() as u64).collect(),
            },
        )?;
    }
    Ok((partitions, logs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimClock;
    use std::sync::Arc;

    fn test_dir(label: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kvstore-shardedaof-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn file_config(path: &Path, shards: usize, policy: FsyncPolicy) -> StoreConfig {
        StoreConfig::with_aof(path).shards(shards).fsync(policy)
    }

    #[test]
    fn manifest_roundtrip() {
        let man = AofManifest {
            epoch: 7,
            shard_hash_seed: 0xdead_beef,
            record_counts: vec![3, 0, 12, 5],
        };
        let decoded = AofManifest::decode(&man.encode()).unwrap();
        assert_eq!(decoded, man);
        assert!(AofManifest::decode(b"NOTMAGIC").is_err());
        let mut trailing = man.encode();
        trailing.push(9);
        assert!(AofManifest::decode(&trailing).is_err());
    }

    #[test]
    fn open_fresh_append_reload() {
        let dir = test_dir("fresh");
        let path = dir.join("j.aof");
        let config = file_config(&path, 4, FsyncPolicy::Never);
        let router = ShardRouter::new(4, config.shard_hash_seed);
        {
            let (aof, loaded) = ShardedAof::open(&config, &router).unwrap().unwrap();
            assert_eq!(aof.segment_count(), 4);
            assert_eq!(aof.epoch(), 1);
            assert!(loaded.segments.iter().all(Vec::is_empty));
            assert!(aof.append(2, b"alpha").unwrap().is_none());
            assert!(aof.append(0, b"beta").unwrap().is_none());
            aof.fsync_all().unwrap();
        }
        let (aof, loaded) = ShardedAof::open(&config, &router).unwrap().unwrap();
        assert_eq!(loaded.segments[2], vec![(1u64, b"alpha".to_vec())]);
        assert_eq!(loaded.segments[0], vec![(2u64, b"beta".to_vec())]);
        assert_eq!(loaded.writer_seed, config.shard_hash_seed);
        // Sequence allocation resumes past everything recovered.
        assert!(aof.append(1, b"gamma").unwrap().is_none());
        aof.fsync_all().unwrap();
        let (_aof, reloaded) = ShardedAof::open(&config, &router).unwrap().unwrap();
        assert_eq!(reloaded.segments[1], vec![(3u64, b"gamma".to_vec())]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn broadcast_shares_one_sequence() {
        let dir = test_dir("broadcast");
        let path = dir.join("j.aof");
        let config = file_config(&path, 4, FsyncPolicy::Never);
        let router = ShardRouter::new(4, config.shard_hash_seed);
        {
            let (aof, _) = ShardedAof::open(&config, &router).unwrap().unwrap();
            let record = Command::FlushAll.encode();
            assert!(aof.append_broadcast(&record).unwrap().is_none());
            aof.fsync_all().unwrap();
        }
        let (_aof, loaded) = ShardedAof::open(&config, &router).unwrap().unwrap();
        let seqs: Vec<u64> = loaded.segments.iter().map(|records| records[0].0).collect();
        assert_eq!(seqs, vec![1, 1, 1, 1], "one sequence, every segment");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_coalesces_concurrent_always_writers() {
        let dir = test_dir("groupcommit");
        let path = dir.join("j.aof");
        let config = file_config(&path, 1, FsyncPolicy::Always);
        let router = ShardRouter::new(1, config.shard_hash_seed);
        let (aof, _) = ShardedAof::open(&config, &router).unwrap().unwrap();
        let aof = Arc::new(aof);
        let threads = 8;
        let per_thread = 25;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let aof = Arc::clone(&aof);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let record = format!("t{t}i{i}");
                        let ticket = aof.append(0, record.as_bytes()).unwrap().unwrap();
                        aof.commit(ticket).unwrap();
                    }
                });
            }
        });
        let stats = aof.stats();
        assert_eq!(stats.records_appended, (threads * per_thread) as u64);
        assert_eq!(stats.unsynced_records, 0, "every commit returned durable");
        assert!(stats.group_commits > 0);
        assert_eq!(
            stats.group_commit_records,
            (threads * per_thread) as u64,
            "every record was covered by exactly one group commit"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_disabled_fsyncs_inline() {
        let clock = SimClock::new(0);
        let config = StoreConfig::in_memory()
            .aof_in_memory()
            .fsync(FsyncPolicy::Always)
            .group_commit(false)
            .clock(clock);
        let router = ShardRouter::new(1, config.shard_hash_seed);
        let (aof, _) = ShardedAof::open(&config, &router).unwrap().unwrap();
        for i in 0..5u8 {
            assert!(aof.append(0, &[i]).unwrap().is_none());
        }
        let stats = aof.stats();
        assert_eq!(stats.fsyncs, 5, "one fsync per record without batching");
        assert_eq!(stats.group_commits, 0);
        assert_eq!(stats.unsynced_records, 0);
    }

    #[test]
    fn everysec_serviced_by_maybe_fsync_all() {
        let clock = SimClock::new(0);
        let config = StoreConfig::in_memory()
            .aof_in_memory()
            .shards(4)
            .fsync(FsyncPolicy::EverySec)
            .clock(clock.clone());
        let router = ShardRouter::new(4, config.shard_hash_seed);
        let (aof, _) = ShardedAof::open(&config, &router).unwrap().unwrap();
        for segment in 0..4 {
            aof.append(segment, b"r").unwrap();
        }
        assert_eq!(aof.unsynced_records(), 4);
        clock.advance_millis(1_001);
        // No appends this tick — the timer alone must flush every segment.
        aof.maybe_fsync_all().unwrap();
        assert_eq!(aof.unsynced_records(), 0);
        assert_eq!(aof.stats().fsyncs, 4);
    }

    #[test]
    fn rewrite_swaps_the_segment_set_atomically() {
        let dir = test_dir("rewrite");
        let path = dir.join("j.aof");
        let config = file_config(&path, 2, FsyncPolicy::Never);
        let router = ShardRouter::new(2, config.shard_hash_seed);
        let (aof, _) = ShardedAof::open(&config, &router).unwrap().unwrap();
        for i in 0..10u8 {
            aof.append((i % 2) as usize, &[i]).unwrap();
        }
        let dropped = aof
            .rewrite(&[vec![b"keep0".to_vec()], vec![b"keep1".to_vec()]])
            .unwrap();
        assert_eq!(dropped, 8, "10 live records compacted down to 2");
        assert_eq!(aof.epoch(), 2);
        assert!(segment_path(&path, 2, 0).exists());
        assert!(segment_path(&path, 2, 1).exists());
        assert!(
            !segment_path(&path, 1, 0).exists(),
            "old epoch files retired"
        );
        // Reload sees exactly the rewritten records.
        drop(aof);
        let (aof, loaded) = ShardedAof::open(&config, &router).unwrap().unwrap();
        assert_eq!(loaded.segments[0], vec![(1u64, b"keep0".to_vec())]);
        assert_eq!(loaded.segments[1], vec![(2u64, b"keep1".to_vec())]);
        // And appends after a reload continue the sequence without clashes.
        aof.append(0, b"later").unwrap();
        aof.fsync_all().unwrap();
        let (_aof, reloaded) = ShardedAof::open(&config, &router).unwrap().unwrap();
        assert_eq!(
            reloaded.segments[0].last().unwrap(),
            &(3u64, b"later".to_vec())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_swap_keeps_the_old_segment_set() {
        let dir = test_dir("torn");
        let path = dir.join("j.aof");
        let config = file_config(&path, 2, FsyncPolicy::Never);
        let router = ShardRouter::new(2, config.shard_hash_seed);
        {
            let (aof, _) = ShardedAof::open(&config, &router).unwrap().unwrap();
            aof.append(0, b"committed").unwrap();
            aof.fsync_all().unwrap();
        }
        // Simulate a crash mid-swap: epoch-2 segment files were staged but
        // the manifest rename never happened.
        std::fs::write(segment_path(&path, 2, 0), b"torn garbage").unwrap();
        std::fs::write(segment_path(&path, 2, 1), b"torn garbage").unwrap();
        let (aof, loaded) = ShardedAof::open(&config, &router).unwrap().unwrap();
        assert_eq!(aof.epoch(), 1, "old manifest still authoritative");
        assert_eq!(loaded.segments[0], vec![(1u64, b"committed".to_vec())]);
        assert!(
            !segment_path(&path, 2, 0).exists(),
            "staged files of the torn swap are cleaned up"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_single_file_is_migrated() {
        let dir = test_dir("legacy");
        let path = dir.join("j.aof");
        // Write an old-layout journal: raw framed commands, no manifest,
        // no sequence numbers.
        {
            let device = PlainFileDevice::open(&path).unwrap();
            let mut log = AofLog::new(
                Box::new(device),
                FsyncPolicy::Never,
                Arc::new(SimClock::new(0)),
            );
            for i in 0..8 {
                log.append(
                    &Command::Set {
                        key: format!("k{i}"),
                        value: vec![i as u8],
                    }
                    .encode(),
                )
                .unwrap();
            }
            log.append(&Command::FlushAll.encode()).unwrap();
            log.append(
                &Command::Set {
                    key: "survivor".to_string(),
                    value: b"v".to_vec(),
                }
                .encode(),
            )
            .unwrap();
            log.fsync().unwrap();
        }
        let config = file_config(&path, 4, FsyncPolicy::Never);
        let router = ShardRouter::new(4, config.shard_hash_seed);
        let (aof, loaded) = ShardedAof::open(&config, &router).unwrap().unwrap();
        assert_eq!(aof.epoch(), 1);
        let total: usize = loaded.segments.iter().map(Vec::len).sum();
        // 8 sets + FLUSHALL broadcast into 4 segments + 1 set.
        assert_eq!(total, 8 + 4 + 1);
        // The legacy file was replaced by a manifest.
        let manifest = read_manifest(&path).unwrap().unwrap();
        assert_eq!(manifest.record_counts.len(), 4);
        // The broadcast carries one shared sequence in every segment.
        let flushall_seq = 9u64;
        for records in &loaded.segments {
            assert!(records.iter().any(|(seq, _)| *seq == flushall_seq));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tail_serves_the_live_stream_in_sequence_order() {
        let config = StoreConfig::in_memory().aof_in_memory().shards(4);
        let router = ShardRouter::new(4, config.shard_hash_seed);
        let (aof, _) = ShardedAof::open(&config, &router).unwrap().unwrap();
        aof.begin_tailing();
        let epoch = aof.epoch();
        // Writes land on different segments but the stream is one ordered
        // sequence.
        aof.append(2, b"a").unwrap();
        aof.append(0, b"b").unwrap();
        aof.append(3, b"c").unwrap();
        let tail = aof.tail_since(epoch, 0, 16);
        assert!(!tail.lost && !tail.gapped);
        assert_eq!(
            tail.records,
            vec![(1, b"a".to_vec()), (2, b"b".to_vec()), (3, b"c".to_vec())]
        );
        assert_eq!(tail.last_seq, 3);
        // Cursor advance: only newer records are served.
        let tail = aof.tail_since(epoch, 2, 16);
        assert_eq!(tail.records, vec![(3, b"c".to_vec())]);
        // Broadcasts appear once in the stream despite N segment copies.
        aof.append_broadcast(b"flush").unwrap();
        let tail = aof.tail_since(epoch, 3, 16);
        assert_eq!(tail.records, vec![(4, b"flush".to_vec())]);
        // `max` bounds a poll; the next poll resumes.
        let tail = aof.tail_since(epoch, 0, 2);
        assert_eq!(tail.records.len(), 2);
        assert!(!tail.gapped, "stopping at max is not a gap");
    }

    #[test]
    fn backlog_is_only_populated_while_a_stream_is_registered() {
        let config = StoreConfig::in_memory().aof_in_memory().shards(1);
        let router = ShardRouter::new(1, config.shard_hash_seed);
        let (aof, _) = ShardedAof::open(&config, &router).unwrap().unwrap();
        // No registered stream: appends are journaled but not mirrored
        // (the no-replica hot path pays no backlog cost).
        for i in 0..5u8 {
            aof.append(0, &[i]).unwrap();
        }
        assert!(aof.backlog.lock().records.is_empty());
        // Registration starts mirroring from the current sequence on.
        aof.begin_tailing();
        aof.append(0, b"live").unwrap();
        let tail = aof.tail_since(aof.epoch(), 5, 16);
        assert!(!tail.lost);
        assert_eq!(tail.records, vec![(6, b"live".to_vec())]);
        // The last stream out drops the backlog again.
        aof.end_tailing();
        assert!(aof.backlog.lock().records.is_empty());
        aof.append(0, b"idle").unwrap();
        assert!(aof.backlog.lock().records.is_empty());
    }

    #[test]
    fn tail_detects_overrun_and_rewrite_invalidation() {
        let config = StoreConfig::in_memory()
            .aof_in_memory()
            .repl_backlog(4)
            .shards(1);
        let router = ShardRouter::new(1, config.shard_hash_seed);
        let (aof, _) = ShardedAof::open(&config, &router).unwrap().unwrap();
        aof.begin_tailing();
        let epoch = aof.epoch();
        for i in 0..10u8 {
            aof.append(0, &[i]).unwrap();
        }
        // Only the 4 newest records are retained: a cursor inside the
        // retained window still works, an older one is lost.
        let tail = aof.tail_since(epoch, 6, 16);
        assert!(!tail.lost);
        assert_eq!(tail.records.len(), 4);
        let tail = aof.tail_since(epoch, 2, 16);
        assert!(tail.lost, "evicted cursor must force a resync");
        // A wrong-epoch cursor (journal rewritten) is lost too.
        let tail = aof.tail_since(epoch + 1, 9, 16);
        assert!(tail.lost);
        // A real rewrite renumbers the stream and drops the backlog.
        aof.rewrite(&[vec![b"only".to_vec()]]).unwrap();
        let tail = aof.tail_since(epoch, 9, 16);
        assert!(tail.lost, "pre-rewrite cursors are invalid");
        let tail = aof.tail_since(aof.epoch(), aof.last_seq(), 16);
        assert!(!tail.lost, "a fresh post-rewrite cursor works");
        assert!(tail.records.is_empty());
    }

    #[test]
    fn tail_under_concurrent_writers_is_gap_free_and_complete() {
        let config = StoreConfig::in_memory().aof_in_memory().shards(4);
        let router = ShardRouter::new(4, config.shard_hash_seed);
        let (aof, _) = ShardedAof::open(&config, &router).unwrap().unwrap();
        aof.begin_tailing();
        let aof = Arc::new(aof);
        let epoch = aof.epoch();
        let total = 4 * 200u64;
        let collector = {
            let aof = Arc::clone(&aof);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                let mut cursor = 0u64;
                while (seen.len() as u64) < total {
                    let tail = aof.tail_since(epoch, cursor, 64);
                    assert!(!tail.lost);
                    for (seq, _) in tail.records {
                        assert_eq!(seq, cursor + 1, "stream must be dense");
                        cursor = seq;
                        seen.push(seq);
                    }
                    std::thread::yield_now();
                }
                seen
            })
        };
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let aof = Arc::clone(&aof);
                scope.spawn(move || {
                    for i in 0..200 {
                        aof.append(t, format!("t{t}i{i}").as_bytes()).unwrap();
                    }
                });
            }
        });
        let seen = collector.join().unwrap();
        assert_eq!(seen.len() as u64, total);
        assert_eq!(*seen.last().unwrap(), total);
    }

    #[test]
    fn corrupt_segment_record_is_detected() {
        let dir = test_dir("corrupt");
        let path = dir.join("j.aof");
        let config = file_config(&path, 1, FsyncPolicy::Never);
        let router = ShardRouter::new(1, config.shard_hash_seed);
        {
            let (aof, _) = ShardedAof::open(&config, &router).unwrap().unwrap();
            aof.append(0, b"fine").unwrap();
            aof.fsync_all().unwrap();
        }
        // A record too short to hold its sequence header.
        {
            let mut log = AofLog::new(
                Box::new(PlainFileDevice::open(segment_path(&path, 1, 0)).unwrap()),
                FsyncPolicy::Never,
                Arc::new(SimClock::new(0)),
            );
            log.append(b"xy").unwrap();
            log.fsync().unwrap();
        }
        assert!(ShardedAof::open(&config, &router).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
