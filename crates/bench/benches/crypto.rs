//! Ablation: cost of the cryptographic primitives behind the LUKS and TLS
//! simulations (§4.2 of the paper).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gdpr_crypto::aead::ChaCha20Poly1305;
use gdpr_crypto::hmac::HmacSha256;
use gdpr_crypto::sha256::Sha256;

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    for size in [128usize, 1_024, 16_384] {
        let data = vec![0x5au8; size];
        group.throughput(Throughput::Bytes(size as u64));

        group.bench_with_input(BenchmarkId::new("aead_seal", size), &data, |b, data| {
            let aead = ChaCha20Poly1305::new(&[7u8; 32]);
            b.iter(|| aead.seal(&[0u8; 12], b"", data));
        });

        group.bench_with_input(
            BenchmarkId::new("aead_roundtrip", size),
            &data,
            |b, data| {
                let aead = ChaCha20Poly1305::new(&[7u8; 32]);
                b.iter(|| {
                    let sealed = aead.seal(&[0u8; 12], b"", data);
                    aead.open(&[0u8; 12], b"", &sealed).unwrap()
                });
            },
        );

        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, data| {
            b.iter(|| Sha256::digest(data));
        });

        group.bench_with_input(BenchmarkId::new("hmac_sha256", size), &data, |b, data| {
            b.iter(|| HmacSha256::mac(b"key material", data));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crypto);
criterion_main!(benches);
