//! The right to be forgotten (Article 17), end to end.
//!
//! This example mirrors the paper's §4.3 discussion: deleting a key is not
//! enough — the data also lingers in the append-only file until
//! compaction, and the erasure has to cover *every* key of the data
//! subject. It populates a store with several subjects, exports one
//! subject's data (Article 20), then erases them and shows what remains.
//!
//! Run with:
//!
//! ```text
//! cargo run --example right_to_be_forgotten
//! ```

use std::error::Error;

use gdpr_storage::gdpr_core::acl::Grant;
use gdpr_storage::gdpr_core::metadata::{PersonalMetadata, Region};
use gdpr_storage::gdpr_core::policy::CompliancePolicy;
use gdpr_storage::gdpr_core::store::{AccessContext, GdprStore};

fn main() -> Result<(), Box<dyn Error>> {
    let store = GdprStore::open_in_memory(CompliancePolicy::strict())?;
    store.grant(Grant::new("crm", "customer-relationship"));
    let ctx = AccessContext::new("crm", "customer-relationship");

    // Populate three data subjects with a handful of keys each.
    for subject in ["alice", "bob", "carol"] {
        for attribute in ["email", "address", "phone", "preferences"] {
            let metadata = PersonalMetadata::new(subject)
                .with_purpose("customer-relationship")
                .with_location(Region::Eu);
            store.put(
                &ctx,
                &format!("user:{subject}:{attribute}"),
                format!("{attribute} of {subject}").into_bytes(),
                metadata,
            )?;
        }
    }
    println!("loaded {} keys for 3 data subjects", store.len());
    println!(
        "engine journal currently holds {} bytes\n",
        store.engine().aof_len()
    );

    // Article 20 first: hand bob a machine-readable copy of his data.
    let export = store.right_to_portability(&ctx, "bob")?;
    println!(
        "portability export for bob ({} bytes of JSON):\n{export}\n",
        export.len()
    );

    // Article 15: what does the store know about alice?
    let access = store.right_of_access(&ctx, "alice")?;
    println!(
        "access report for alice lists {} items:",
        access.items.len()
    );
    for item in &access.items {
        println!(
            "  {:<28} purposes={:?} expires={:?}",
            item.key,
            item.metadata.purposes.iter().collect::<Vec<_>>(),
            item.metadata.expires_at_ms
        );
    }

    // Article 17: erase alice. Under the strict policy the journal is
    // compacted synchronously so no tombstone of her data survives.
    let before = store.engine().aof_len();
    let report = store.right_to_erasure(&ctx, "alice")?;
    let after = store.engine().aof_len();
    println!(
        "\nerasure of alice: {} keys erased, {} journal records scrubbed, journal {} → {} bytes",
        report.erased_keys.len(),
        report.journal_records_scrubbed,
        before,
        after
    );

    // The other subjects are untouched, and alice is really gone.
    println!("remaining keys: {}", store.len());
    println!(
        "alice lookup now returns: {:?}",
        store.get(&ctx, "user:alice:email")?
    );
    println!(
        "bob lookup still returns:  {:?}",
        store
            .get(&ctx, "user:bob:email")?
            .map(|v| String::from_utf8_lossy(&v).into_owned())
    );

    // And the whole episode is in the audit trail (Article 5(2): be able to
    // demonstrate compliance).
    let trail = store.audit_trail().unwrap_or_default();
    let erasure_records = trail.iter().filter(|l| l.contains("art.17")).count();
    println!(
        "\naudit trail holds {} records, {} of them about the erasure request",
        trail.len(),
        erasure_records
    );
    Ok(())
}
