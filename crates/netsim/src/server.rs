//! A RESP front-end over the storage engine.
//!
//! [`RespKvServer`] is the "Redis server" of the in-process simulation:
//! it accepts decoded RESP frames and produces RESP replies, while the
//! client in [`crate::client`] models the wire (bandwidth, latency, the
//! TLS-style channel). The actual RESP → engine command mapping is **not**
//! implemented here: it delegates to the shared
//! [`gdpr_server::dispatch::Dispatcher`], the same mapper the real TCP
//! server uses, so the simulated and networked paths accept exactly the
//! same command surface and cannot drift.

use std::sync::Arc;

use gdpr_core::store::GdprStore;
use gdpr_server::dispatch::{Dispatcher, Session};
use kvstore::store::KvStore;
use parking_lot::Mutex;
use resp::Frame;

pub use gdpr_server::dispatch::reply_to_frame;
pub use gdpr_server::dispatch::DispatchStats as ServerStats;

/// A RESP-speaking server wrapping a [`KvStore`], driven in-process
/// through the simulated link.
#[derive(Debug, Clone)]
pub struct RespKvServer {
    dispatcher: Dispatcher,
    /// The simulated path serves one logical client; its session state
    /// (e.g. `GDPR.AUTH`) lives with the server object.
    session: Arc<Mutex<Session>>,
}

impl RespKvServer {
    /// Wrap an already-opened engine.
    #[must_use]
    pub fn new(store: KvStore) -> Self {
        RespKvServer {
            dispatcher: Dispatcher::kv(store),
            session: Arc::new(Mutex::new(Session::new())),
        }
    }

    /// Wrap a compliance-layer store: the full `GDPR.*` command surface
    /// plus purpose-checked data commands, over the simulated link. Same
    /// dispatcher as the real TCP server in compliance mode.
    #[must_use]
    pub fn gdpr(store: Arc<GdprStore>) -> Self {
        RespKvServer {
            dispatcher: Dispatcher::gdpr(store),
            session: Arc::new(Mutex::new(Session::new())),
        }
    }

    /// The wrapped engine (e.g. for the benchmark driver to call `tick`).
    #[must_use]
    pub fn store(&self) -> &KvStore {
        self.dispatcher.raw_engine()
    }

    /// Server activity counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        self.dispatcher.stats()
    }

    /// Handle one decoded request frame and produce the reply frame.
    pub fn handle_frame(&self, frame: &Frame) -> Frame {
        let mut session = self.session.lock();
        self.dispatcher.handle_frame(frame, &mut session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvstore::config::StoreConfig;

    fn server() -> RespKvServer {
        RespKvServer::new(KvStore::open(StoreConfig::in_memory()).unwrap())
    }

    #[test]
    fn ping_pong() {
        let s = server();
        assert_eq!(
            s.handle_frame(&Frame::command(["PING"])),
            Frame::Simple("PONG".into())
        );
    }

    #[test]
    fn set_get_del_over_resp() {
        let s = server();
        assert_eq!(
            s.handle_frame(&Frame::command(["SET", "user:1", "alice"])),
            Frame::Simple("OK".into())
        );
        assert_eq!(
            s.handle_frame(&Frame::command(["GET", "user:1"])),
            Frame::Bulk(b"alice".to_vec())
        );
        assert_eq!(
            s.handle_frame(&Frame::command(["DEL", "user:1"])),
            Frame::Integer(1)
        );
        assert_eq!(
            s.handle_frame(&Frame::command(["GET", "user:1"])),
            Frame::Null
        );
        assert_eq!(s.stats().requests, 4);
        assert_eq!(s.stats().errors, 0);
    }

    #[test]
    fn hash_commands_over_resp() {
        let s = server();
        s.handle_frame(&Frame::command(["HMSET", "u", "f0", "a", "f1", "b"]));
        assert_eq!(
            s.handle_frame(&Frame::command(["HGET", "u", "f1"])),
            Frame::Bulk(b"b".to_vec())
        );
        match s.handle_frame(&Frame::command(["HGETALL", "u"])) {
            Frame::Array(items) => assert_eq!(items.len(), 4),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            s.handle_frame(&Frame::command(["HDEL", "u", "f0"])),
            Frame::Integer(1)
        );
    }

    #[test]
    fn ttl_commands_over_resp() {
        let s = server();
        s.handle_frame(&Frame::command(["SET", "k", "v"]));
        assert_eq!(
            s.handle_frame(&Frame::command(["PEXPIRE", "k", "5000"])),
            Frame::Integer(1)
        );
        match s.handle_frame(&Frame::command(["PTTL", "k"])) {
            Frame::Integer(ms) => assert!(ms > 0 && ms <= 5_000),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            s.handle_frame(&Frame::command(["PERSIST", "k"])),
            Frame::Integer(1)
        );
        assert_eq!(
            s.handle_frame(&Frame::command(["EXPIRE", "k", "10"])),
            Frame::Integer(1)
        );
    }

    #[test]
    fn scan_keys_dbsize_flush() {
        let s = server();
        for i in 0..4 {
            s.handle_frame(&Frame::command(["SET", &format!("key{i}"), "v"]));
        }
        assert_eq!(
            s.handle_frame(&Frame::command(["DBSIZE"])),
            Frame::Integer(4)
        );
        match s.handle_frame(&Frame::command(["SCAN", "key1", "2"])) {
            Frame::Array(items) => assert_eq!(items.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        match s.handle_frame(&Frame::command(["KEYS", "key*"])) {
            Frame::Array(items) => assert_eq!(items.len(), 4),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            s.handle_frame(&Frame::command(["FLUSHALL"])),
            Frame::Integer(4)
        );
        assert_eq!(
            s.handle_frame(&Frame::command(["DBSIZE"])),
            Frame::Integer(0)
        );
    }

    #[test]
    fn errors_for_unknown_commands_and_bad_arity() {
        let s = server();
        assert!(matches!(
            s.handle_frame(&Frame::command(["BOGUS"])),
            Frame::Error(_)
        ));
        assert!(matches!(
            s.handle_frame(&Frame::command(["GET"])),
            Frame::Error(_)
        ));
        assert!(matches!(
            s.handle_frame(&Frame::command(["SET", "only-key"])),
            Frame::Error(_)
        ));
        assert!(matches!(
            s.handle_frame(&Frame::Integer(3)),
            Frame::Error(_)
        ));
        assert_eq!(s.stats().errors, 4);
    }

    #[test]
    fn wrongtype_error_propagates_as_resp_error() {
        let s = server();
        s.handle_frame(&Frame::command(["HSET", "h", "f", "v"]));
        assert!(matches!(
            s.handle_frame(&Frame::command(["GET", "h"])),
            Frame::Error(_)
        ));
    }

    #[test]
    fn set_commands_over_resp() {
        let s = server();
        assert_eq!(
            s.handle_frame(&Frame::command(["SADD", "tags", "red"])),
            Frame::Integer(1)
        );
        assert_eq!(
            s.handle_frame(&Frame::command(["SADD", "tags", "red"])),
            Frame::Integer(0)
        );
        match s.handle_frame(&Frame::command(["SMEMBERS", "tags"])) {
            Frame::Array(items) => assert_eq!(items, vec![Frame::Bulk(b"red".to_vec())]),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            s.handle_frame(&Frame::command(["SREM", "tags", "red"])),
            Frame::Integer(1)
        );
    }
}
