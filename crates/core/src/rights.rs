//! Data-subject rights (GDPR Chapter 3).
//!
//! The four rights the paper identifies as storage-relevant:
//!
//! * **Article 15 — right of access**: [`GdprStore::right_of_access`]
//!   returns everything the store knows about a subject, including the
//!   purposes, recipients, retention and whether automated decision-making
//!   uses the data.
//! * **Article 17 — right to be forgotten**:
//!   [`GdprStore::right_to_erasure`] finds every key of the subject via the
//!   metadata index and erases data, metadata and (under strict compliance)
//!   the journal tombstones, synchronously.
//! * **Article 20 — right to data portability**:
//!   [`GdprStore::right_to_portability`] exports the subject's data as
//!   machine-readable JSON.
//! * **Article 21 — right to object**: [`GdprStore::right_to_object`]
//!   records an objection against a purpose on every key of the subject,
//!   after which reads under that purpose are refused.

use std::collections::BTreeMap;

use audit::record::{AuditRecord, Operation};
use kvstore::object::Bytes;

use crate::export::{self, ExportCursor, ExportPage};
use crate::metadata::PersonalMetadata;
use crate::store::{AccessContext, GdprStore};
use crate::Result;

/// Everything returned to a data subject exercising their right of access.
#[derive(Debug, Clone, PartialEq)]
pub struct SubjectAccessReport {
    /// The data subject.
    pub subject: String,
    /// When the report was generated (Unix milliseconds).
    pub generated_at_ms: u64,
    /// One entry per stored key.
    pub items: Vec<SubjectDataItem>,
}

/// One stored value belonging to the subject.
#[derive(Debug, Clone, PartialEq)]
pub struct SubjectDataItem {
    /// The key under which the value is stored.
    pub key: String,
    /// The stored value (string form) or the flattened record fields.
    pub value: Option<Bytes>,
    /// Record fields when the value is a multi-field record.
    pub fields: Option<BTreeMap<String, Bytes>>,
    /// The GDPR metadata attached to the value.
    pub metadata: PersonalMetadata,
}

/// Per-key state fetched under the segment lock during an export page.
struct ItemData {
    metadata: PersonalMetadata,
    value: Option<Bytes>,
    fields: Option<BTreeMap<String, Bytes>>,
}

/// Result of a right-to-be-forgotten request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErasureReport {
    /// The data subject whose data was erased.
    pub subject: String,
    /// Keys physically removed from the keyspace.
    pub erased_keys: Vec<String>,
    /// Number of journal records dropped by the accompanying compaction
    /// (0 when the policy defers scrubbing).
    pub journal_records_scrubbed: u64,
    /// Whether the erasure was completed synchronously (real-time
    /// compliance) or left residue for background clean-up.
    pub completed_in_real_time: bool,
}

/// Result of an objection request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectionReport {
    /// The data subject.
    pub subject: String,
    /// The purpose objected to.
    pub purpose: String,
    /// Keys whose metadata was updated.
    pub updated_keys: Vec<String>,
}

impl GdprStore {
    /// Every key currently owned by `subject` (from the metadata index,
    /// falling back to a scan when indexing is disabled — the "partial
    /// compliance" path).
    ///
    /// # Errors
    ///
    /// Returns storage or corruption errors.
    pub fn keys_of_subject(&self, subject: &str) -> Result<Vec<String>> {
        let _timed = self.rights_timing.keysof.start_timer();
        if self.policy.maintain_indexes {
            return Ok(self.index.keys_of_subject(subject));
        }
        // Fallback: full scan over the metadata shadow records.
        let mut keys = Vec::new();
        for meta_key in self.kv.keys(&format!("{}*", crate::store::META_PREFIX))? {
            if let Some(bytes) = self.kv.get(&meta_key)? {
                if let Some(meta) = PersonalMetadata::decode(&bytes) {
                    if meta.subject == subject {
                        keys.push(
                            meta_key
                                .trim_start_matches(crate::store::META_PREFIX)
                                .to_string(),
                        );
                    }
                }
            }
        }
        keys.sort();
        Ok(keys)
    }

    /// Article 15: produce the full access report for a subject.
    ///
    /// # Errors
    ///
    /// Returns storage or corruption errors.
    pub fn right_of_access(
        &self,
        ctx: &AccessContext,
        subject: &str,
    ) -> Result<SubjectAccessReport> {
        let now = self.now_ms();
        let mut items = Vec::new();
        for key in self.keys_of_subject(subject)? {
            let Some(metadata) = self.load_metadata(&key)? else {
                continue;
            };
            // Values can be plain strings or multi-field records.
            let fields = self.kv.hgetall(&key).ok().flatten();
            let value = if fields.is_some() {
                None
            } else {
                self.kv.get(&key)?
            };
            items.push(SubjectDataItem {
                key,
                value,
                fields,
                metadata,
            });
        }
        self.emit_audit(
            AuditRecord::new(now, &ctx.actor, Operation::RightsRequest)
                .subject(subject)
                .purpose(&ctx.purpose)
                .detail(&format!("art.15 access request: {} items", items.len())),
        );
        self.flush_audit_if_strict()?;
        Ok(SubjectAccessReport {
            subject: subject.to_string(),
            generated_at_ms: now,
            items,
        })
    }

    /// Article 17: erase every key belonging to `subject`.
    ///
    /// Under a strict policy the accompanying journal compaction runs
    /// synchronously so no tombstone of the personal data survives in the
    /// AOF (the §4.3 concern); under an eventual policy the compaction is
    /// left to the next scheduled rewrite.
    ///
    /// # Errors
    ///
    /// Returns storage or audit errors.
    pub fn right_to_erasure(&self, ctx: &AccessContext, subject: &str) -> Result<ErasureReport> {
        let _timed = self.rights_timing.erase.start_timer();
        let now = self.now_ms();
        let keys = self.keys_of_subject(subject)?;
        let mut erased = Vec::with_capacity(keys.len());
        for key in keys {
            // Per-key mutation bracket: serializes against a concurrent put
            // of the same key, so erased data cannot be resurrected by an
            // in-flight write (value, shadow record and index posting go
            // together).
            let existed = self
                .index
                .with_key_segment(&key, |segment| -> Result<bool> {
                    let existed = self.kv.delete(&key)?;
                    self.kv.delete(&Self::meta_key(&key))?;
                    if self.policy.maintain_indexes {
                        segment.remove(&key);
                    }
                    // Erasure must also purge the hot tier before the
                    // bracket releases: no read after this point may be
                    // served from a cached copy of the erased value.
                    self.hot.invalidate(&key);
                    Ok(existed)
                })?;
            if existed {
                erased.push(key);
            }
        }

        let journal_records_scrubbed = if self.policy.scrub_aof_on_erasure && !erased.is_empty() {
            self.kv.rewrite_aof()?
        } else {
            0
        };

        self.stats.add_erased_by_request(erased.len() as u64);
        self.emit_audit(
            AuditRecord::new(now, &ctx.actor, Operation::RightsRequest)
                .subject(subject)
                .purpose(&ctx.purpose)
                .detail(&format!(
                    "art.17 erasure: {} keys erased, {} journal records scrubbed",
                    erased.len(),
                    journal_records_scrubbed
                )),
        );
        self.flush_audit_if_strict()?;

        Ok(ErasureReport {
            subject: subject.to_string(),
            erased_keys: erased,
            journal_records_scrubbed,
            completed_in_real_time: self.policy.erasure_response.is_real_time()
                && self.policy.scrub_aof_on_erasure,
        })
    }

    /// Article 20: export all of a subject's data as machine-readable JSON.
    ///
    /// The document is streamed into one buffer by the chunked renderer in
    /// [`crate::export`] — the same renderer the paged wire form uses — so
    /// a monolithic export is exactly the concatenation of all pages.
    ///
    /// # Errors
    ///
    /// Returns storage or corruption errors.
    pub fn right_to_portability(&self, ctx: &AccessContext, subject: &str) -> Result<String> {
        let _timed = self.rights_timing.export.start_timer();
        let now = self.now_ms();
        let mut out = String::with_capacity(1024);
        let (emitted, next) = self.render_export(subject, None, None, now, &mut out)?;
        debug_assert!(next.is_none(), "unpaged export must complete");
        self.emit_audit(
            AuditRecord::new(now, &ctx.actor, Operation::RightsRequest)
                .subject(subject)
                .purpose(&ctx.purpose)
                .detail(&format!("art.20 portability export: {emitted} items")),
        );
        self.flush_audit_if_strict()?;
        Ok(out)
    }

    /// Article 20, paged: render one page of the portability export.
    ///
    /// `cursor` is `None` for the first page; subsequent pages pass the
    /// cursor returned by the previous one. `count` bounds the number of
    /// subject keys consumed by this page (clamped to at least 1).
    /// Concatenating every page's `chunk` in order yields exactly the
    /// monolithic [`Self::right_to_portability`] document; see
    /// [`ExportCursor`] for the resumption semantics under concurrent
    /// erasure.
    ///
    /// # Errors
    ///
    /// Returns storage or corruption errors.
    pub fn export_page(
        &self,
        ctx: &AccessContext,
        subject: &str,
        cursor: Option<&ExportCursor>,
        count: usize,
    ) -> Result<ExportPage> {
        let _timed = self.rights_timing.export.start_timer();
        let now = self.now_ms();
        let mut chunk = String::with_capacity(1024);
        let (emitted, next_cursor) =
            self.render_export(subject, cursor, Some(count.max(1)), now, &mut chunk)?;
        self.emit_audit(
            AuditRecord::new(now, &ctx.actor, Operation::RightsRequest)
                .subject(subject)
                .purpose(&ctx.purpose)
                .detail(&format!(
                    "art.20 portability export page: {emitted} items, {}",
                    if next_cursor.is_some() {
                        "continued"
                    } else {
                        "complete"
                    }
                )),
        );
        self.flush_audit_if_strict()?;
        Ok(ExportPage {
            chunk,
            next_cursor,
            items_rendered: emitted,
        })
    }

    /// Shared streaming renderer behind the monolithic and paged exports.
    ///
    /// Renders up to `max_keys` subject keys (all of them when `None`)
    /// after the `resume` position into `out`, batching the per-key
    /// value and metadata-shadow reads by index segment: keys are grouped
    /// with [`crate::index::ShardedMetadataIndex::shard_of`] and each group is
    /// read under a single segment-lock acquisition (the same segment →
    /// engine lock order every mutation bracket uses) instead of paying
    /// one bracket per item. Returns the number of items rendered in this
    /// call and the cursor for the next page (`None` when the envelope
    /// was closed).
    fn render_export(
        &self,
        subject: &str,
        resume: Option<&ExportCursor>,
        max_keys: Option<usize>,
        now_ms: u64,
        out: &mut String,
    ) -> Result<(u64, Option<ExportCursor>)> {
        let mut emitted = resume.map_or(0, |c| c.emitted);
        let emitted_at_entry = emitted;
        if resume.is_none() {
            export::write_export_header(out, subject, now_ms);
        }

        let keys = self.keys_of_subject(subject)?;
        let start = match resume {
            Some(cursor) => keys.partition_point(|k| k.as_str() <= cursor.last_key.as_str()),
            None => 0,
        };
        let end = max_keys.map_or(keys.len(), |max| keys.len().min(start + max));
        let page_keys = &keys[start..end];

        // Group this page's keys by owning segment, then read value +
        // shadow under one lock acquisition per segment. A key that
        // vanished (erased, or past its retention deadline — the engine
        // expires lazily on read) yields no item.
        let mut fetched: BTreeMap<&str, ItemData> = BTreeMap::new();
        let mut by_shard: Vec<Vec<&str>> = vec![Vec::new(); self.index.segment_count()];
        for key in page_keys {
            by_shard[self.index.shard_of(key)].push(key);
        }
        for (shard, group) in by_shard.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            self.index.with_segment(shard, |_segment| -> Result<()> {
                for &key in group {
                    let Some(metadata) = self.load_metadata(key)? else {
                        continue;
                    };
                    // Values can be plain strings or multi-field records.
                    let fields = self.kv.hgetall(key).ok().flatten();
                    let value = if fields.is_some() {
                        None
                    } else {
                        self.kv.get(key)?
                    };
                    fetched.insert(
                        key,
                        ItemData {
                            metadata,
                            value,
                            fields,
                        },
                    );
                }
                Ok(())
            })?;
        }

        for key in page_keys {
            if let Some(item) = fetched.get(key.as_str()) {
                export::write_export_item(
                    out,
                    emitted,
                    key,
                    &item.metadata,
                    item.value.as_deref(),
                    item.fields.as_ref(),
                );
                emitted += 1;
            }
        }

        if end < keys.len() {
            Ok((
                emitted - emitted_at_entry,
                Some(ExportCursor {
                    emitted,
                    last_key: page_keys
                        .last()
                        .expect("non-final page consumed at least one key")
                        .clone(),
                }),
            ))
        } else {
            export::write_export_footer(out, emitted);
            Ok((emitted - emitted_at_entry, None))
        }
    }

    /// Article 21: record an objection against `purpose` on every key of
    /// `subject`. Subsequent reads under that purpose are refused.
    ///
    /// # Errors
    ///
    /// Returns storage or corruption errors.
    pub fn right_to_object(
        &self,
        ctx: &AccessContext,
        subject: &str,
        purpose: &str,
    ) -> Result<ObjectionReport> {
        let _timed = self.rights_timing.object.start_timer();
        let now = self.now_ms();
        let mut updated = Vec::new();
        for key in self.keys_of_subject(subject)? {
            // Bracketed read-modify-write of the metadata shadow, so a
            // racing put/erasure of the same key cannot interleave with
            // the objection.
            let objected = self
                .index
                .with_key_segment(&key, |segment| -> Result<bool> {
                    let Some(mut meta) = self.load_metadata(&key)? else {
                        return Ok(false);
                    };
                    meta.object_to(purpose);
                    self.store_metadata(&key, &meta)?;
                    if self.policy.maintain_indexes {
                        segment.remove_purpose(&key, purpose);
                    }
                    // The cached metadata predates the objection; drop it
                    // so the next read re-admits the objecting copy.
                    self.hot.invalidate(&key);
                    Ok(true)
                })?;
            if objected {
                updated.push(key);
            }
        }
        self.emit_audit(
            AuditRecord::new(now, &ctx.actor, Operation::RightsRequest)
                .subject(subject)
                .purpose(purpose)
                .detail(&format!(
                    "art.21 objection recorded on {} keys",
                    updated.len()
                )),
        );
        self.flush_audit_if_strict()?;
        Ok(ObjectionReport {
            subject: subject.to_string(),
            purpose: purpose.to_string(),
            updated_keys: updated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::Grant;
    use crate::metadata::Region;
    use crate::policy::CompliancePolicy;
    use crate::GdprError;
    use audit::sink::MemorySink;
    use kvstore::clock::SimClock;
    use kvstore::config::StoreConfig;

    fn ctx() -> AccessContext {
        AccessContext::new("app", "billing")
    }

    /// Drive a paged export to completion, returning the concatenated
    /// chunks and the number of pages.
    fn paged_export(store: &GdprStore, subject: &str, count: usize) -> (String, usize) {
        let mut out = String::new();
        let mut cursor: Option<ExportCursor> = None;
        let mut pages = 0;
        loop {
            let page = store
                .export_page(&ctx(), subject, cursor.as_ref(), count)
                .unwrap();
            out.push_str(&page.chunk);
            pages += 1;
            match page.next_cursor {
                Some(next) => cursor = Some(next),
                None => break,
            }
        }
        (out, pages)
    }

    fn store_with_data(policy: CompliancePolicy) -> GdprStore {
        let store = GdprStore::open_in_memory(policy).unwrap();
        store.grant(Grant::new("app", "billing"));
        store.grant(Grant::new("app", "analytics"));
        let alice = PersonalMetadata::new("alice")
            .with_purpose("billing")
            .with_purpose("analytics")
            .with_recipient("payments-inc")
            .with_location(Region::Eu);
        let bob = PersonalMetadata::new("bob")
            .with_purpose("billing")
            .with_location(Region::Eu);
        store
            .put(
                &ctx(),
                "user:alice:email",
                b"alice@example.com".to_vec(),
                alice.clone(),
            )
            .unwrap();
        store
            .put(&ctx(), "user:alice:address", b"1 Main St".to_vec(), alice)
            .unwrap();
        store
            .put(&ctx(), "user:bob:email", b"bob@example.com".to_vec(), bob)
            .unwrap();
        store
    }

    #[test]
    fn right_of_access_returns_all_subject_items() {
        let store = store_with_data(CompliancePolicy::strict());
        let report = store.right_of_access(&ctx(), "alice").unwrap();
        assert_eq!(report.subject, "alice");
        assert_eq!(report.items.len(), 2);
        assert!(report.items.iter().all(|i| i.metadata.subject == "alice"));
        assert!(report
            .items
            .iter()
            .any(|i| i.value == Some(b"alice@example.com".to_vec())));
        // Bob's report only sees bob's data.
        assert_eq!(store.right_of_access(&ctx(), "bob").unwrap().items.len(), 1);
        // Unknown subject: empty report, not an error.
        assert!(store
            .right_of_access(&ctx(), "carol")
            .unwrap()
            .items
            .is_empty());
    }

    #[test]
    fn right_to_erasure_removes_data_metadata_and_index_entries() {
        let store = store_with_data(CompliancePolicy::strict());
        let report = store.right_to_erasure(&ctx(), "alice").unwrap();
        assert_eq!(report.erased_keys.len(), 2);
        assert!(report.completed_in_real_time);
        assert!(
            report.journal_records_scrubbed > 0,
            "strict policy scrubs the journal"
        );
        assert_eq!(store.get(&ctx(), "user:alice:email").unwrap(), None);
        assert!(store.keys_of_subject("alice").unwrap().is_empty());
        // Bob is untouched.
        assert_eq!(
            store.get(&ctx(), "user:bob:email").unwrap(),
            Some(b"bob@example.com".to_vec())
        );
        assert_eq!(store.stats().erased_by_request, 2);
        // Erasing again is a no-op.
        assert!(store
            .right_to_erasure(&ctx(), "alice")
            .unwrap()
            .erased_keys
            .is_empty());
    }

    #[test]
    fn erasure_under_eventual_policy_defers_journal_scrub() {
        let store = store_with_data(CompliancePolicy::eventual());
        let report = store.right_to_erasure(&ctx(), "alice").unwrap();
        assert_eq!(report.erased_keys.len(), 2);
        assert!(!report.completed_in_real_time);
        assert_eq!(report.journal_records_scrubbed, 0);
    }

    #[test]
    fn portability_export_is_valid_jsonish_and_complete() {
        let store = store_with_data(CompliancePolicy::strict());
        let json = store.right_to_portability(&ctx(), "alice").unwrap();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"subject\":\"alice\""));
        assert!(json.contains("alice@example.com"));
        assert!(json.contains("payments-inc"));
        assert!(json.contains("\"item_count\":2"));
        assert!(
            !json.contains("bob@example.com"),
            "other subjects' data must not leak"
        );
    }

    #[test]
    fn paged_export_concatenates_to_the_monolithic_document() {
        // Pin the clock so the monolithic and paged runs stamp the same
        // generated_at_ms into the envelope header.
        let clock = SimClock::new(1_000_000);
        let store = GdprStore::open(
            CompliancePolicy::eventual(),
            StoreConfig::in_memory()
                .aof_in_memory()
                .shards(4)
                .clock(clock),
            Box::new(MemorySink::new()),
        )
        .unwrap();
        store.grant(Grant::new("app", "billing"));
        for i in 0..37 {
            let meta = PersonalMetadata::new("alice").with_purpose("billing");
            store
                .put(&ctx(), &format!("user:alice:{i:03}"), vec![b'x'; 40], meta)
                .unwrap();
        }
        let monolithic = store.right_to_portability(&ctx(), "alice").unwrap();
        for count in [1, 5, 36, 37, 100] {
            let (paged, pages) = paged_export(&store, "alice", count);
            assert_eq!(paged, monolithic, "count={count}");
            assert_eq!(pages, 37usize.div_ceil(count).max(1), "count={count}");
        }
        // Unknown subject: a single page closing an empty envelope.
        let (empty, pages) = paged_export(&store, "nobody", 10);
        assert_eq!(pages, 1);
        assert_eq!(empty, store.right_to_portability(&ctx(), "nobody").unwrap());
        assert!(empty.contains("\"items\":[]"));
        assert!(empty.contains("\"item_count\":0"));
    }

    #[test]
    fn erasure_racing_a_paged_export_omits_but_never_serves_erased_keys() {
        let store = store_with_data(CompliancePolicy::strict());
        // Page 1: one key consumed, cursor handed out.
        let first = store.export_page(&ctx(), "alice", None, 1).unwrap();
        assert_eq!(first.items_rendered, 1);
        let cursor = first.next_cursor.clone().expect("more pages pending");
        // Alice is erased between pages.
        store.right_to_erasure(&ctx(), "alice").unwrap();
        // Resuming must close the envelope without serving erased data and
        // without double-counting: item_count reflects what was rendered.
        let last = store
            .export_page(&ctx(), "alice", Some(&cursor), 10)
            .unwrap();
        assert_eq!(last.items_rendered, 0);
        assert!(last.next_cursor.is_none());
        assert!(!last.chunk.contains("alice@example.com"));
        assert!(!last.chunk.contains("1 Main St"));
        let document = format!("{}{}", first.chunk, last.chunk);
        assert!(document.ends_with("\"item_count\":1}"), "{document}");
    }

    #[test]
    fn export_omits_keys_past_an_unfired_retention_deadline() {
        // A subject whose keys straddle an expired-but-unfired deadline:
        // one key outlives the export, one is past its TTL but the active
        // expiry cycle has not run. Both export paths must omit the
        // expired item (the engine expires lazily on read).
        let clock = SimClock::new(1_000_000);
        let store = GdprStore::open(
            CompliancePolicy::strict(),
            StoreConfig::in_memory()
                .aof_in_memory()
                .shards(2)
                .clock(clock.clone()),
            Box::new(MemorySink::new()),
        )
        .unwrap();
        store.grant(Grant::new("app", "billing"));
        let durable = PersonalMetadata::new("erin").with_purpose("billing");
        let fleeting = PersonalMetadata::new("erin")
            .with_purpose("billing")
            .with_ttl_millis(5_000);
        store
            .put(&ctx(), "user:erin:keep", b"keep-me".to_vec(), durable)
            .unwrap();
        store
            .put(&ctx(), "user:erin:gone", b"drop-me".to_vec(), fleeting)
            .unwrap();
        // Cross the deadline without running the expiry cycle (no tick()).
        clock.advance_millis(6_000);
        let monolithic = store.right_to_portability(&ctx(), "erin").unwrap();
        assert!(monolithic.contains("keep-me"));
        assert!(!monolithic.contains("drop-me"), "{monolithic}");
        assert!(monolithic.contains("\"item_count\":1"));
        let (paged, _) = paged_export(&store, "erin", 1);
        assert_eq!(paged, monolithic);
    }

    #[test]
    fn objection_blocks_the_purpose_going_forward() {
        let store = store_with_data(CompliancePolicy::strict());
        let analytics = AccessContext::new("app", "analytics");
        // Works before the objection.
        assert!(store.get(&analytics, "user:alice:email").is_ok());
        let report = store.right_to_object(&ctx(), "alice", "analytics").unwrap();
        assert_eq!(report.updated_keys.len(), 2);
        // Blocked afterwards.
        let err = store.get(&analytics, "user:alice:email").unwrap_err();
        assert!(matches!(err, GdprError::PurposeViolation { .. }));
        // Billing still works.
        assert!(store.get(&ctx(), "user:alice:email").is_ok());
        // Purpose index no longer lists alice's keys under analytics.
        assert!(!store
            .index
            .keys_for_purpose("analytics")
            .iter()
            .any(|k| k.contains("alice")));
    }

    #[test]
    fn rights_requests_are_audited() {
        let store = store_with_data(CompliancePolicy::strict());
        store.right_of_access(&ctx(), "alice").unwrap();
        store.right_to_erasure(&ctx(), "alice").unwrap();
        let trail = store.audit_trail().unwrap().join("\n");
        assert!(trail.contains("art.15"));
        assert!(trail.contains("art.17"));
    }

    #[test]
    fn subject_lookup_without_index_falls_back_to_scan() {
        // Eventual policy keeps indexes; build a policy without them.
        let mut policy = CompliancePolicy::eventual();
        policy.maintain_indexes = false;
        policy.enforce_access_control = false;
        let store = GdprStore::open_in_memory(policy).unwrap();
        let meta = PersonalMetadata::new("dora").with_purpose("billing");
        store
            .put(&ctx(), "user:dora:email", b"d@e.f".to_vec(), meta)
            .unwrap();
        assert_eq!(
            store.keys_of_subject("dora").unwrap(),
            vec!["user:dora:email"]
        );
        let report = store.right_of_access(&ctx(), "dora").unwrap();
        assert_eq!(report.items.len(), 1);
    }
}
