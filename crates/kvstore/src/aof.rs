//! Append-only-file persistence.
//!
//! Redis journals every state-changing command into the AOF and fsyncs it
//! according to `appendfsync` (`always`, `everysec`, `no`). The paper's
//! GDPR retrofit piggybacks on the AOF for its audit trail — extending it
//! to record *reads* as well — and measures the cost of the three fsync
//! policies (§4.1: `always` drops throughput to ~5 % of baseline,
//! `everysec` to ~30 %).
//!
//! [`AofLog`] reproduces that mechanism over any [`StorageDevice`], so the
//! same code path can run unencrypted, or through the LUKS-simulation
//! encrypted device, or purely in memory for micro-benchmarks.

use crate::clock::SharedClock;
use crate::device::StorageDevice;
use crate::serialize::{put_bytes, Reader};
use crate::{Result, StoreError};

/// When the AOF forces its writes to durable storage.
///
/// Mirrors Redis `appendfsync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `appendfsync always`: fsync after every record. The paper's
    /// *real-time* compliance point.
    Always,
    /// `appendfsync everysec`: fsync at most once per second. The paper's
    /// *eventual* compliance point (may lose up to one second of log).
    #[default]
    EverySec,
    /// `appendfsync no`: leave flushing to the OS.
    Never,
}

impl FsyncPolicy {
    /// Parse the Redis configuration spelling (`always`/`everysec`/`no`).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Config`] for unknown spellings.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "everysec" => Ok(FsyncPolicy::EverySec),
            "no" | "never" => Ok(FsyncPolicy::Never),
            other => Err(StoreError::Config(format!(
                "unknown fsync policy {other:?}"
            ))),
        }
    }

    /// The Redis configuration spelling.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::EverySec => "everysec",
            FsyncPolicy::Never => "no",
        }
    }
}

/// Counters describing AOF activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AofStats {
    /// Records appended since the log was opened.
    pub records_appended: u64,
    /// Logical bytes appended (record payloads plus framing).
    pub bytes_appended: u64,
    /// Number of fsync operations issued.
    pub fsyncs: u64,
    /// Number of rewrite (compaction) operations performed.
    pub rewrites: u64,
    /// Records dropped from the log by rewrites (deleted/expired data that
    /// was still physically present — the §4.3 concern).
    pub records_compacted_away: u64,
    /// Records appended but not yet fsynced at snapshot time — the paper's
    /// "risk window" (how much log a crash right now would lose).
    pub unsynced_records: u64,
    /// Fsyncs issued by the group committer (a subset of `fsyncs`).
    pub group_commits: u64,
    /// Records made durable by group commits (batch sizes summed).
    pub group_commit_records: u64,
    /// Largest single group-commit batch observed.
    pub max_group_commit_batch: u64,
}

impl AofStats {
    /// Fold another segment's counters into this one (used to aggregate
    /// per-shard AOF segments into one engine-wide view).
    pub fn absorb(&mut self, other: &AofStats) {
        self.records_appended += other.records_appended;
        self.bytes_appended += other.bytes_appended;
        self.fsyncs += other.fsyncs;
        self.rewrites += other.rewrites;
        self.records_compacted_away += other.records_compacted_away;
        self.unsynced_records += other.unsynced_records;
        self.group_commits += other.group_commits;
        self.group_commit_records += other.group_commit_records;
        self.max_group_commit_batch = self
            .max_group_commit_batch
            .max(other.max_group_commit_batch);
    }

    /// Average records made durable per group-commit fsync; `None` until a
    /// group commit has happened. Under `always` fsync this is the batching
    /// factor: values above 1.0 mean writers shared fsyncs.
    #[must_use]
    pub fn avg_group_commit_batch(&self) -> Option<f64> {
        if self.group_commits == 0 {
            None
        } else {
            Some(self.group_commit_records as f64 / self.group_commits as f64)
        }
    }
}

/// The append-only log.
#[derive(Debug)]
pub struct AofLog {
    device: Box<dyn StorageDevice>,
    policy: FsyncPolicy,
    clock: SharedClock,
    last_fsync_ms: u64,
    /// Records appended since the last fsync (at risk on crash).
    unsynced_records: u64,
    /// Records currently in the log (including ones that a rewrite would
    /// drop); used to size rewrite savings.
    live_records: u64,
    stats: AofStats,
}

impl AofLog {
    /// Create a log over `device` with the given fsync policy.
    pub fn new(device: Box<dyn StorageDevice>, policy: FsyncPolicy, clock: SharedClock) -> Self {
        let now = clock.now_millis();
        AofLog {
            device,
            policy,
            clock,
            last_fsync_ms: now,
            unsynced_records: 0,
            live_records: 0,
            stats: AofStats::default(),
        }
    }

    /// Current fsync policy.
    #[must_use]
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Change the fsync policy at runtime (Redis `CONFIG SET appendfsync`).
    pub fn set_policy(&mut self, policy: FsyncPolicy) {
        self.policy = policy;
    }

    /// Activity counters (with the live unsynced-records gauge filled in).
    #[must_use]
    pub fn stats(&self) -> AofStats {
        AofStats {
            unsynced_records: self.unsynced_records,
            ..self.stats
        }
    }

    /// Number of records appended but not yet fsynced — the paper's "risk
    /// of losing one second worth of logs" quantified.
    #[must_use]
    pub fn unsynced_records(&self) -> u64 {
        self.unsynced_records
    }

    /// Bytes currently on the underlying device.
    #[must_use]
    pub fn device_len(&self) -> u64 {
        self.device.logical_len()
    }

    /// Activity counters of the underlying device (distinguishes logical
    /// bytes from physical bytes — the encrypting device's frame overhead
    /// shows up here).
    #[must_use]
    pub fn device_stats(&self) -> crate::device::DeviceStats {
        self.device.stats()
    }

    /// Append one record (an encoded command or audit entry) and apply the
    /// fsync policy.
    ///
    /// # Errors
    ///
    /// Propagates device I/O or encryption errors.
    pub fn append(&mut self, record: &[u8]) -> Result<()> {
        self.append_unsynced(record)?;
        self.maybe_fsync()?;
        Ok(())
    }

    /// Append one record **without** applying the fsync policy, returning
    /// the record's position (1-based count of records appended so far).
    ///
    /// The sharded journal uses this to decouple the append (which must
    /// happen under the owning shard's lock to preserve per-key order) from
    /// durability (which a group committer batches after the lock drops).
    ///
    /// # Errors
    ///
    /// Propagates device I/O or encryption errors.
    pub fn append_unsynced(&mut self, record: &[u8]) -> Result<u64> {
        let mut framed = Vec::with_capacity(record.len() + 4);
        put_bytes(&mut framed, record);
        self.device.append(&framed)?;
        self.stats.records_appended += 1;
        self.stats.bytes_appended += framed.len() as u64;
        self.live_records += 1;
        self.unsynced_records += 1;
        Ok(self.stats.records_appended)
    }

    /// Position of the most recently appended record (cumulative count;
    /// monotonic across rewrites). A group committer that fsyncs now covers
    /// every position up to and including this one.
    #[must_use]
    pub fn appended_pos(&self) -> u64 {
        self.stats.records_appended
    }

    /// Apply the fsync policy given the current time. Called internally by
    /// [`Self::append`]; callers using `EverySec` should also invoke it
    /// periodically from their event loop (the engine's `tick`).
    pub fn maybe_fsync(&mut self) -> Result<()> {
        match self.policy {
            FsyncPolicy::Always => self.fsync(),
            FsyncPolicy::EverySec => {
                let now = self.clock.now_millis();
                if now.saturating_sub(self.last_fsync_ms) >= 1_000 {
                    self.fsync()
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Never => Ok(()),
        }
    }

    /// Force an fsync regardless of policy.
    pub fn fsync(&mut self) -> Result<()> {
        self.device.sync()?;
        self.stats.fsyncs += 1;
        self.unsynced_records = 0;
        self.last_fsync_ms = self.clock.now_millis();
        Ok(())
    }

    /// Read every record currently in the log, in append order.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] if the framing is damaged, and
    /// propagates device errors.
    pub fn load(&mut self) -> Result<Vec<Vec<u8>>> {
        let raw = self.device.read_all()?;
        let mut reader = Reader::new(&raw);
        let mut records = Vec::new();
        while !reader.is_at_end() {
            records.push(reader.get_bytes("aof record")?);
        }
        self.live_records = records.len() as u64;
        Ok(records)
    }

    /// Rewrite (compact) the log so it contains exactly `records`, dropping
    /// everything else — including tombstones of deleted personal data that
    /// §4.3 of the paper worries about. Returns the number of records that
    /// were compacted away.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn rewrite<'a>(&mut self, records: impl Iterator<Item = &'a [u8]>) -> Result<u64> {
        let mut content = Vec::new();
        let mut kept = 0u64;
        for record in records {
            put_bytes(&mut content, record);
            kept += 1;
        }
        self.device.replace(&content)?;
        self.device.sync()?;
        let dropped = self.live_records.saturating_sub(kept);
        self.live_records = kept;
        self.stats.rewrites += 1;
        self.stats.records_compacted_away += dropped;
        self.stats.fsyncs += 1;
        self.unsynced_records = 0;
        self.last_fsync_ms = self.clock.now_millis();
        Ok(dropped)
    }

    /// Swap in an already-written, already-synced replacement device (the
    /// segment-set rewrite protocol builds the new segment files first,
    /// commits them atomically through the manifest, then swaps each log
    /// onto its new device). Counters carry over so stats stay cumulative
    /// across rewrites; `kept` is the number of records on the new device.
    pub fn swap_rewritten(&mut self, device: Box<dyn StorageDevice>, kept: u64) {
        self.device = device;
        let dropped = self.live_records.saturating_sub(kept);
        self.live_records = kept;
        self.stats.rewrites += 1;
        self.stats.records_compacted_away += dropped;
        self.stats.fsyncs += 1;
        self.unsynced_records = 0;
        self.last_fsync_ms = self.clock.now_millis();
    }

    /// Consume the log and hand back its device (used by the rewrite
    /// protocol, which stages new segment content through a scratch log).
    #[must_use]
    pub fn into_device(self) -> Box<dyn StorageDevice> {
        self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{SimClock, SystemClock};
    use crate::device::MemoryDevice;
    use std::sync::Arc;

    fn mem_log(policy: FsyncPolicy, clock: SimClock) -> AofLog {
        AofLog::new(Box::new(MemoryDevice::new()), policy, Arc::new(clock))
    }

    #[test]
    fn fsync_policy_parse_and_display() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(
            FsyncPolicy::parse("everysec").unwrap(),
            FsyncPolicy::EverySec
        );
        assert_eq!(FsyncPolicy::parse("no").unwrap(), FsyncPolicy::Never);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(FsyncPolicy::Always.as_str(), "always");
        assert_eq!(FsyncPolicy::EverySec.as_str(), "everysec");
        assert_eq!(FsyncPolicy::Never.as_str(), "no");
    }

    #[test]
    fn append_and_load_roundtrip() {
        let mut log = mem_log(FsyncPolicy::Never, SimClock::new(0));
        log.append(b"record one").unwrap();
        log.append(b"record two").unwrap();
        log.append(b"").unwrap();
        let records = log.load().unwrap();
        assert_eq!(
            records,
            vec![b"record one".to_vec(), b"record two".to_vec(), Vec::new()]
        );
        assert_eq!(log.stats().records_appended, 3);
    }

    #[test]
    fn always_policy_fsyncs_every_record() {
        let mut log = mem_log(FsyncPolicy::Always, SimClock::new(0));
        for i in 0..5u8 {
            log.append(&[i]).unwrap();
        }
        assert_eq!(log.stats().fsyncs, 5);
        assert_eq!(log.unsynced_records(), 0);
    }

    #[test]
    fn everysec_policy_batches_fsyncs() {
        let clock = SimClock::new(0);
        let mut log = AofLog::new(
            Box::new(MemoryDevice::new()),
            FsyncPolicy::EverySec,
            Arc::new(clock.clone()),
        );
        for i in 0..10u8 {
            log.append(&[i]).unwrap();
        }
        assert_eq!(log.stats().fsyncs, 0, "no fsync inside the first second");
        assert_eq!(log.unsynced_records(), 10);
        clock.advance_millis(1_001);
        log.append(&[99]).unwrap();
        assert_eq!(log.stats().fsyncs, 1);
        assert_eq!(log.unsynced_records(), 0);
    }

    #[test]
    fn never_policy_never_fsyncs_on_append() {
        let mut log = mem_log(FsyncPolicy::Never, SimClock::new(0));
        for _ in 0..100 {
            log.append(b"x").unwrap();
        }
        assert_eq!(log.stats().fsyncs, 0);
        log.fsync().unwrap();
        assert_eq!(log.stats().fsyncs, 1);
    }

    #[test]
    fn rewrite_drops_stale_records() {
        let mut log = mem_log(FsyncPolicy::Never, SimClock::new(0));
        for i in 0..10u8 {
            log.append(&[i]).unwrap();
        }
        // Compact down to 3 surviving records.
        let survivors: Vec<Vec<u8>> = vec![vec![0], vec![1], vec![2]];
        let dropped = log.rewrite(survivors.iter().map(Vec::as_slice)).unwrap();
        assert_eq!(dropped, 7);
        assert_eq!(log.load().unwrap(), survivors);
        assert_eq!(log.stats().rewrites, 1);
        assert_eq!(log.stats().records_compacted_away, 7);
    }

    #[test]
    fn policy_can_change_at_runtime() {
        let mut log = mem_log(FsyncPolicy::Never, SimClock::new(0));
        log.append(b"a").unwrap();
        assert_eq!(log.stats().fsyncs, 0);
        log.set_policy(FsyncPolicy::Always);
        assert_eq!(log.policy(), FsyncPolicy::Always);
        log.append(b"b").unwrap();
        assert_eq!(log.stats().fsyncs, 1);
    }

    #[test]
    fn works_with_system_clock_too() {
        let mut log = AofLog::new(
            Box::new(MemoryDevice::new()),
            FsyncPolicy::Always,
            Arc::new(SystemClock),
        );
        log.append(b"r").unwrap();
        assert_eq!(log.load().unwrap(), vec![b"r".to_vec()]);
    }

    #[test]
    fn corrupt_framing_is_detected() {
        let mut device = MemoryDevice::new();
        device.append(&[0xff, 0xff, 0xff, 0xff, 1, 2]).unwrap(); // absurd length prefix
        let mut log = AofLog::new(
            Box::new(device),
            FsyncPolicy::Never,
            Arc::new(SimClock::new(0)),
        );
        assert!(log.load().is_err());
    }
}
