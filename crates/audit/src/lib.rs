//! Audit-trail substrate for GDPR Articles 30, 33 and 34.
//!
//! Article 30 obliges controllers to keep *records of processing
//! activities*; Articles 33/34 require that breaches be reported within 72
//! hours, along with evidence of what happened. The paper concludes that a
//! strictly compliant store must therefore journal **every** interaction —
//! turning each read into a read-plus-logging-write — and shows that how
//! that log is flushed (synchronously vs once a second) is the difference
//! between a 20× and a 3× slowdown.
//!
//! This crate provides that log as a reusable component:
//!
//! * [`record::AuditRecord`] — a structured description of one interaction
//!   (who, what, which key, under which purpose, when, outcome);
//! * [`sink`] — where records go: an in-memory ring, an append-only file
//!   with an fsync policy, or a null sink;
//! * [`policy::FlushPolicy`] — the real-time vs eventual compliance knob;
//! * [`chain`] — SHA-256 hash chaining for tamper evidence;
//! * [`log::AuditLog`] — the front object the storage engine calls;
//! * [`reader`] — parsing and querying persisted trails (the Article 33
//!   "hand the regulator the evidence" path).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod log;
pub mod policy;
pub mod reader;
pub mod record;
pub mod sink;

use std::error::Error;
use std::fmt;

/// Errors produced by the audit subsystem.
#[derive(Debug)]
#[non_exhaustive]
pub enum AuditError {
    /// An I/O failure while writing or reading the trail.
    Io(std::io::Error),
    /// A persisted record could not be decoded.
    Corrupt(String),
    /// The hash chain did not verify: records were altered or removed.
    ChainBroken {
        /// Sequence number at which verification failed.
        at_sequence: u64,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::Io(e) => write!(f, "audit i/o error: {e}"),
            AuditError::Corrupt(msg) => write!(f, "corrupt audit record: {msg}"),
            AuditError::ChainBroken { at_sequence } => {
                write!(f, "audit hash chain broken at sequence {at_sequence}")
            }
        }
    }
}

impl Error for AuditError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AuditError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for AuditError {
    fn from(e: std::io::Error) -> Self {
        AuditError::Io(e)
    }
}

/// Result alias for audit operations.
pub type Result<T> = std::result::Result<T, AuditError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let errs = [
            AuditError::Io(std::io::Error::other("x")),
            AuditError::Corrupt("bad".into()),
            AuditError::ChainBroken { at_sequence: 9 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
