//! Offline stand-in for `proptest`: randomized (non-shrinking) property
//! testing with the strategy combinators this workspace's test suite uses.
//!
//! Differences from real proptest, accepted for an offline build:
//! no shrinking on failure, no persisted failure seeds, and string
//! strategies support only the `[class]{m,n}` pattern shape the tests use.

#![forbid(unsafe_code)]

pub mod array;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Everything a test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declare a block of property tests.
///
/// Supports an optional leading `#![proptest_config(...)]` attribute and
/// any number of `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(err) = __outcome {
                    panic!("proptest case {} of {} failed: {err}", __case + 1, config.cases);
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Choose uniformly between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strategy) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Fail the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                &format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current test case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(&format!(
                "assertion failed: `{}` == `{}`\n  left: {left:?}\n right: {right:?}",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}
