//! The remote client: the full request/reply data path in one object.
//!
//! A call on [`RemoteClient`] goes through exactly the stages a YCSB
//! request went through in the paper's encrypted setup:
//!
//! 1. the request is RESP-encoded,
//! 2. optionally sealed by the client end of the [`SecureEndpoint`] pair
//!    (the Stunnel TLS simulation),
//! 3. transferred across the request [`Link`] (bandwidth/latency model),
//! 4. opened and handled by the [`RespKvServer`],
//! 5. and the reply takes the mirror path back.
//!
//! Everything happens in-process, so the CPU costs (encoding, encryption)
//! are real while the wire is modelled.

use resp::decode::decode_one;
use resp::encode::encode_frame;
use resp::Frame;

use crate::link::{Link, LinkConfig, LinkStats};
use crate::secure::{SecureChannel, SecureEndpoint};
use crate::server::RespKvServer;
use crate::{NetError, Result};

/// A client connected to a [`RespKvServer`] through the simulated network.
#[derive(Debug)]
pub struct RemoteClient {
    server: RespKvServer,
    request_link: Link,
    reply_link: Link,
    secure: Option<(SecureEndpoint, SecureEndpoint)>,
    requests: u64,
}

impl RemoteClient {
    /// Connect a plaintext client (the paper's unencrypted baseline).
    #[must_use]
    pub fn connect_plain(server: RespKvServer, link: LinkConfig) -> Self {
        RemoteClient {
            server,
            request_link: Link::new(link),
            reply_link: Link::new(link),
            secure: None,
            requests: 0,
        }
    }

    /// Connect through the TLS-simulation channel with the given shared
    /// secret (the paper's Stunnel configuration).
    #[must_use]
    pub fn connect_secure(server: RespKvServer, link: LinkConfig, shared_secret: &[u8]) -> Self {
        let (client_end, server_end) = SecureChannel::pair(shared_secret);
        RemoteClient {
            server,
            request_link: Link::new(link),
            reply_link: Link::new(link),
            secure: Some((client_end, server_end)),
            requests: 0,
        }
    }

    /// Whether the channel encrypts traffic.
    #[must_use]
    pub fn is_encrypted(&self) -> bool {
        self.secure.is_some()
    }

    /// Number of round trips performed.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Link statistics for the request and reply directions.
    #[must_use]
    pub fn link_stats(&self) -> (LinkStats, LinkStats) {
        (self.request_link.stats(), self.reply_link.stats())
    }

    /// The server this client talks to.
    #[must_use]
    pub fn server(&self) -> &RespKvServer {
        &self.server
    }

    /// Perform one request/reply round trip.
    ///
    /// # Errors
    ///
    /// Returns protocol, crypto or server errors; a RESP error frame from
    /// the server is surfaced as [`NetError::Server`].
    pub fn roundtrip(&mut self, request: &Frame) -> Result<Frame> {
        self.requests += 1;

        // --- request path ---
        let encoded = encode_frame(request);
        let on_wire = match &mut self.secure {
            Some((client_end, _)) => client_end.seal(&encoded),
            None => encoded,
        };
        self.request_link.transfer(on_wire.len());
        let at_server = match &mut self.secure {
            Some((_, server_end)) => server_end.open(&on_wire)?,
            None => on_wire,
        };
        let request_frame = decode_one(&at_server)?;

        // --- server ---
        let reply = self.server.handle_frame(&request_frame);

        // --- reply path ---
        let encoded_reply = encode_frame(&reply);
        let reply_on_wire = match &mut self.secure {
            Some((_, server_end)) => server_end.seal(&encoded_reply),
            None => encoded_reply,
        };
        self.reply_link.transfer(reply_on_wire.len());
        let at_client = match &mut self.secure {
            Some((client_end, _)) => client_end.open(&reply_on_wire)?,
            None => reply_on_wire,
        };
        let reply_frame = decode_one(&at_client)?;

        if let Frame::Error(message) = &reply_frame {
            return Err(NetError::Server(message.clone()));
        }
        Ok(reply_frame)
    }

    // ---- convenience wrappers used by the YCSB adapter -------------------

    /// `SET key value`.
    pub fn set(&mut self, key: &str, value: &[u8]) -> Result<()> {
        self.roundtrip(&Frame::command([
            key_bytes("SET"),
            key_bytes(key),
            value.to_vec(),
        ]))
        .map(|_| ())
    }

    /// `GET key`.
    pub fn get(&mut self, key: &str) -> Result<Option<Vec<u8>>> {
        Ok(
            match self.roundtrip(&Frame::command([key_bytes("GET"), key_bytes(key)]))? {
                Frame::Bulk(b) => Some(b),
                _ => None,
            },
        )
    }

    /// `DEL key`; returns whether the key existed.
    pub fn delete(&mut self, key: &str) -> Result<bool> {
        Ok(matches!(
            self.roundtrip(&Frame::command([key_bytes("DEL"), key_bytes(key)]))?,
            Frame::Integer(1)
        ))
    }

    /// `PEXPIRE key ttl_ms`.
    pub fn pexpire(&mut self, key: &str, ttl_ms: u64) -> Result<bool> {
        Ok(matches!(
            self.roundtrip(&Frame::command([
                key_bytes("PEXPIRE"),
                key_bytes(key),
                ttl_ms.to_string().into_bytes(),
            ]))?,
            Frame::Integer(1)
        ))
    }

    /// `SCAN start count`; returns the matching keys.
    pub fn scan(&mut self, start: &str, count: usize) -> Result<Vec<String>> {
        match self.roundtrip(&Frame::command([
            key_bytes("SCAN"),
            key_bytes(start),
            count.to_string().into_bytes(),
        ]))? {
            Frame::Array(items) => Ok(items
                .into_iter()
                .filter_map(|f| match f {
                    Frame::Bulk(b) => Some(String::from_utf8_lossy(&b).into_owned()),
                    _ => None,
                })
                .collect()),
            _ => Ok(Vec::new()),
        }
    }
}

fn key_bytes(s: &str) -> Vec<u8> {
    s.as_bytes().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvstore::config::StoreConfig;
    use kvstore::store::KvStore;

    fn server() -> RespKvServer {
        RespKvServer::new(KvStore::open(StoreConfig::in_memory()).unwrap())
    }

    #[test]
    fn plain_roundtrip() {
        let mut client = RemoteClient::connect_plain(server(), LinkConfig::plain_44gbps());
        assert!(!client.is_encrypted());
        client.set("user:1", b"alice").unwrap();
        assert_eq!(client.get("user:1").unwrap(), Some(b"alice".to_vec()));
        assert_eq!(client.get("missing").unwrap(), None);
        assert!(client.delete("user:1").unwrap());
        assert_eq!(client.requests(), 4);
        let (req, rep) = client.link_stats();
        assert_eq!(req.messages, 4);
        assert_eq!(rep.messages, 4);
    }

    #[test]
    fn secure_roundtrip_matches_plain_semantics() {
        let mut client =
            RemoteClient::connect_secure(server(), LinkConfig::tls_proxied_4_9gbps(), b"secret");
        assert!(client.is_encrypted());
        client.set("k", b"v").unwrap();
        assert_eq!(client.get("k").unwrap(), Some(b"v".to_vec()));
        assert!(client.pexpire("k", 60_000).unwrap());
        assert_eq!(client.scan("", 10).unwrap(), vec!["k".to_string()]);
    }

    #[test]
    fn secure_channel_carries_more_bytes_than_plain() {
        let mut plain = RemoteClient::connect_plain(server(), LinkConfig::plain_44gbps());
        let mut secure =
            RemoteClient::connect_secure(server(), LinkConfig::plain_44gbps(), b"secret");
        plain.set("key", &[7u8; 256]).unwrap();
        secure.set("key", &[7u8; 256]).unwrap();
        let plain_bytes = plain.link_stats().0.payload_bytes;
        let secure_bytes = secure.link_stats().0.payload_bytes;
        assert!(
            secure_bytes > plain_bytes,
            "{secure_bytes} vs {plain_bytes}"
        );
    }

    #[test]
    fn server_error_is_surfaced() {
        let mut client = RemoteClient::connect_plain(server(), LinkConfig::plain_44gbps());
        client
            .roundtrip(&Frame::command(["HSET", "h", "f", "v"]))
            .unwrap();
        let err = client.get("h").unwrap_err();
        assert!(matches!(err, NetError::Server(_)));
    }

    #[test]
    fn link_models_accumulate_modelled_time() {
        let mut client =
            RemoteClient::connect_secure(server(), LinkConfig::tls_proxied_4_9gbps(), b"s");
        for i in 0..50 {
            client.set(&format!("k{i}"), &[0u8; 1024]).unwrap();
        }
        let (req, rep) = client.link_stats();
        assert!(req.modelled_nanos > 0);
        assert!(rep.modelled_nanos > 0);
        assert!(req.payload_bytes > 50 * 1024);
    }
}
