//! Client/server transport simulation.
//!
//! In the paper, the in-transit encryption requirement of GDPR Article 32
//! is met by putting Stunnel TLS proxies between the YCSB clients and
//! Redis; the measured effect is dominated by the proxies cutting the
//! available network bandwidth from 44 Gb/s to 4.9 Gb/s. This crate
//! reproduces that data path without real NICs:
//!
//! * [`link::Link`] — a bandwidth/latency model that accounts (and can
//!   optionally impose) per-message transfer time;
//! * [`secure::SecureChannel`] — a Stunnel-style encrypting channel pair:
//!   every frame is sealed with ChaCha20-Poly1305, so the per-byte CPU cost
//!   of in-transit encryption is actually paid;
//! * [`server::RespKvServer`] — a RESP front-end over the `kvstore` engine;
//! * [`client::RemoteClient`] — a client that pushes every request and
//!   reply through the link (and optionally the secure channel), which is
//!   what the YCSB driver binds to for the "LUKS + TLS" configuration of
//!   Figure 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod link;
pub mod secure;
pub mod server;

use std::error::Error;
use std::fmt;

/// Errors produced by the transport simulation.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// The wire payload could not be parsed as RESP.
    Protocol(resp::RespError),
    /// Decryption of a secure-channel frame failed.
    Crypto(gdpr_crypto::CryptoError),
    /// The storage engine reported an error.
    Store(kvstore::StoreError),
    /// The server replied with a RESP error frame.
    Server(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Protocol(e) => write!(f, "protocol error: {e}"),
            NetError::Crypto(e) => write!(f, "transport encryption error: {e}"),
            NetError::Store(e) => write!(f, "storage error: {e}"),
            NetError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Protocol(e) => Some(e),
            NetError::Crypto(e) => Some(e),
            NetError::Store(e) => Some(e),
            NetError::Server(_) => None,
        }
    }
}

impl From<resp::RespError> for NetError {
    fn from(e: resp::RespError) -> Self {
        NetError::Protocol(e)
    }
}

impl From<gdpr_crypto::CryptoError> for NetError {
    fn from(e: gdpr_crypto::CryptoError) -> Self {
        NetError::Crypto(e)
    }
}

impl From<kvstore::StoreError> for NetError {
    fn from(e: kvstore::StoreError) -> Self {
        NetError::Store(e)
    }
}

/// Result alias for transport operations.
pub type Result<T> = std::result::Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let errs: Vec<NetError> = vec![
            NetError::Protocol(resp::RespError::Protocol("x".into())),
            NetError::Crypto(gdpr_crypto::CryptoError::TagMismatch),
            NetError::Store(kvstore::StoreError::Config("y".into())),
            NetError::Server("ERR".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
        assert!(NetError::Server("x".into()).source().is_none());
        assert!(NetError::Crypto(gdpr_crypto::CryptoError::TagMismatch)
            .source()
            .is_some());
    }
}
