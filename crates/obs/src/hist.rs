//! The shared log-scale latency histogram.
//!
//! Formerly `ycsb::stats::LatencyHistogram`; lifted here so the YCSB
//! driver, the server's always-on metrics and the Prometheus exposition
//! all agree on one bucketing scheme. Buckets are powers of two in
//! microseconds — 1 µs, 2 µs, 4 µs, … 2²⁶ µs (~67 s) — plus one overflow
//! bucket, so `record` is O(log log) cheap, merging is element-wise, and
//! percentiles are exact to within one bucket (reported as the upper
//! bound of the containing bucket).

use std::time::Duration;

/// Number of buckets: 27 power-of-two upper bounds plus the overflow.
pub const BUCKETS: usize = BOUNDS + 1;
/// Number of finite bucket upper bounds (1 µs … 2²⁶ µs).
pub const BOUNDS: usize = 27;

/// The bucket index for a latency of `micros` microseconds: the first
/// power-of-two bound that is ≥ `micros`, or the overflow bucket.
#[must_use]
pub fn bucket_index(micros: u64) -> usize {
    // Bound i is 2^i, so the containing bucket is ceil(log2(micros)).
    let idx = (64 - micros.max(1).saturating_sub(1).leading_zeros()) as usize;
    idx.min(BUCKETS - 1)
}

/// The upper bound (µs) of finite bucket `idx`.
#[must_use]
pub fn bucket_bound_micros(idx: usize) -> u64 {
    1u64 << idx.min(BOUNDS - 1)
}

/// A log-scale latency histogram (microsecond resolution, power-of-two
/// buckets), cheap enough to update on every operation.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    pub(crate) counts: [u64; BUCKETS],
    pub(crate) total: u64,
    pub(crate) sum_micros: u128,
    pub(crate) max_micros: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Create an empty histogram covering 1 µs … ~67 s.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            total: 0,
            sum_micros: 0,
            max_micros: 0,
        }
    }

    /// Record one operation latency.
    pub fn record(&mut self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.counts[bucket_index(micros)] += 1;
        self.total += 1;
        self.sum_micros += u128::from(micros);
        self.max_micros = self.max_micros.max(micros);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded latencies, in microseconds.
    #[must_use]
    pub fn sum_micros(&self) -> u128 {
        self.sum_micros
    }

    /// Per-bucket sample counts (index `i` is the bucket bounded by
    /// [`bucket_bound_micros`]`(i)`; the last entry is the overflow
    /// bucket). Exposed for exposition formats that re-render the
    /// distribution (Prometheus `le` buckets).
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Mean latency in microseconds.
    #[must_use]
    pub fn mean_micros(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.total as f64
        }
    }

    /// Maximum observed latency in microseconds.
    #[must_use]
    pub fn max_micros(&self) -> u64 {
        self.max_micros
    }

    /// Approximate latency percentile (0.0–1.0) in microseconds, reported
    /// as the upper bound of the containing bucket.
    #[must_use]
    pub fn percentile_micros(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= target.max(1) {
                return if i < BOUNDS {
                    bucket_bound_micros(i)
                } else {
                    self.max_micros
                };
            }
        }
        self.max_micros
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_micros += other.sum_micros;
        self.max_micros = self.max_micros.max(other.max_micros);
    }

    /// One-line `p50=..µs p95=..µs p99=..µs max=..µs count=..` rendering
    /// shared by the `INFO # Latency` section and `GDPR.STATS`.
    #[must_use]
    pub fn summary_fields(&self) -> String {
        format!(
            "p50={},p95={},p99={},max={},count={}",
            self.percentile_micros(0.50),
            self.percentile_micros(0.95),
            self.percentile_micros(0.99),
            self.max_micros,
            self.total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_micros(), 0.0);
        assert_eq!(h.percentile_micros(0.99), 0);
        assert_eq!(h.summary_fields(), "p50=0,p95=0,p99=0,max=0,count=0");
    }

    #[test]
    fn bucket_index_matches_linear_scan() {
        // The closed form must agree with "first bound ≥ micros".
        for micros in (0..5000u64).chain([1 << 20, (1 << 26) - 1, 1 << 26, (1 << 26) + 1]) {
            let linear = (0..BOUNDS as u64)
                .position(|i| micros <= 1u64 << i)
                .unwrap_or(BUCKETS - 1);
            assert_eq!(bucket_index(micros), linear, "micros={micros}");
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut h = LatencyHistogram::new();
        for micros in [1u64, 5, 10, 50, 100, 500, 1_000, 5_000, 10_000, 100_000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 10);
        let p50 = h.percentile_micros(0.5);
        let p95 = h.percentile_micros(0.95);
        let p99 = h.percentile_micros(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(h.max_micros() >= 100_000);
        assert!(h.mean_micros() > 0.0);
    }

    #[test]
    fn percentile_is_within_one_bucket_of_exact() {
        // 1..=1000 µs uniformly: the reported percentile must be the
        // power-of-two bound just above the exact value.
        let mut h = LatencyHistogram::new();
        for micros in 1..=1000u64 {
            h.record(Duration::from_micros(micros));
        }
        for (p, exact) in [(0.5, 500u64), (0.95, 950), (0.99, 990)] {
            let reported = h.percentile_micros(p);
            assert!(reported >= exact, "p{p}: {reported} < {exact}");
            assert!(reported < exact * 2, "p{p}: {reported} ≥ 2×{exact}");
        }
    }

    #[test]
    fn huge_latency_lands_in_overflow_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_secs(600));
        assert_eq!(h.count(), 1);
        assert!(h.percentile_micros(1.0) >= 1 << 26);
        assert_eq!(h.bucket_counts()[BUCKETS - 1], 1);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1_000));
        b.record(Duration::from_micros(2_000));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!(a.max_micros() >= 2_000);
        assert_eq!(a.sum_micros(), 3_010);
    }

    #[test]
    fn merge_is_equivalent_to_recording_in_one() {
        let samples_a = [3u64, 17, 250, 9_000];
        let samples_b = [1u64, 64, 1_000_000];
        let mut merged = LatencyHistogram::new();
        let mut split_a = LatencyHistogram::new();
        let mut split_b = LatencyHistogram::new();
        for &s in &samples_a {
            merged.record(Duration::from_micros(s));
            split_a.record(Duration::from_micros(s));
        }
        for &s in &samples_b {
            merged.record(Duration::from_micros(s));
            split_b.record(Duration::from_micros(s));
        }
        split_a.merge(&split_b);
        assert_eq!(split_a.count(), merged.count());
        assert_eq!(split_a.sum_micros(), merged.sum_micros());
        assert_eq!(split_a.max_micros(), merged.max_micros());
        assert_eq!(split_a.bucket_counts(), merged.bucket_counts());
        for p in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(split_a.percentile_micros(p), merged.percentile_micros(p));
        }
    }
}
