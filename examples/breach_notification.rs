//! Breach notification (Articles 33 and 34): reconstruct, within the
//! 72-hour window, which personal data a compromised credential touched —
//! straight from the tamper-evident audit trail.
//!
//! Run with:
//!
//! ```text
//! cargo run --example breach_notification
//! ```

use std::error::Error;

use gdpr_storage::audit::reader::parse_trail;
use gdpr_storage::gdpr_core::acl::Grant;
use gdpr_storage::gdpr_core::breach::{analyze_breach, BreachWindow};
use gdpr_storage::gdpr_core::metadata::{PersonalMetadata, Region};
use gdpr_storage::gdpr_core::policy::CompliancePolicy;
use gdpr_storage::gdpr_core::store::{AccessContext, GdprStore};

fn main() -> Result<(), Box<dyn Error>> {
    let store = GdprStore::open_in_memory(CompliancePolicy::strict())?;

    // Normal operation: the billing service writes and reads customer data.
    store.grant(Grant::new("billing-service", "billing"));
    let billing = AccessContext::new("billing-service", "billing");
    for (i, subject) in ["alice", "bob", "carol", "dave"].iter().enumerate() {
        let metadata = PersonalMetadata::new(subject)
            .with_purpose("billing")
            .with_location(Region::Eu);
        store.put(
            &billing,
            &format!("user:{subject}:card"),
            vec![b'0' + i as u8; 16],
            metadata,
        )?;
    }

    // The incident: a compromised support credential reads several records
    // and probes others it has no grant for.
    let breach_started = store.now_ms();
    store.grant(Grant::new("support-tool", "billing"));
    let compromised = AccessContext::new("support-tool", "billing");
    store.get(&compromised, "user:alice:card")?;
    store.get(&compromised, "user:bob:card")?;
    let marketing_probe = AccessContext::new("support-tool", "marketing");
    let _ = store.get(&marketing_probe, "user:carol:card"); // denied, but recorded
    let breach_ended = store.now_ms();

    // Incident response: pull the trail, verify its integrity, and build
    // the Article 33 report for the suspicion window.
    let trail_text = store.audit_trail().unwrap_or_default().join("\n");
    let trail = parse_trail(&trail_text)?;
    let window = BreachWindow {
        from_ms: breach_started,
        until_ms: breach_ended,
        suspected_actor: Some("support-tool".to_string()),
    };
    let report = analyze_breach(&trail, &window, store.now_ms())?;

    println!("breach analysis over {} audit records:", trail.len());
    println!("  trail integrity verified: {}", report.trail_verified);
    println!("  affected data subjects:   {:?}", report.affected_subjects);
    println!("  affected records:         {:?}", report.affected_keys);
    println!(
        "  reads / writes / deletes: {} / {} / {}",
        report.reads, report.writes, report.deletes
    );
    println!("  denied access attempts:   {}", report.denied_accesses);
    println!(
        "  time left to notify the supervisory authority: {:.1} hours",
        report.time_remaining_ms(store.now_ms()).unwrap_or(0) as f64 / 3_600_000.0
    );

    println!("\nArticle 33 notification payload:\n{}", report.to_json());
    Ok(())
}
