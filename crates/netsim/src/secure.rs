//! The Stunnel-style secure channel: authenticated encryption of every
//! frame that crosses the simulated wire.
//!
//! A real TLS stack negotiates keys with a handshake; for the purposes of
//! the paper's measurement only the *record layer* matters (per-byte
//! encryption work plus per-record overhead), so the channel derives its
//! two directional keys from a shared secret with HKDF and seals each frame
//! with ChaCha20-Poly1305 under a counter nonce.

use gdpr_crypto::aead::ChaCha20Poly1305;
use gdpr_crypto::kdf::derive_key;

use crate::Result;

/// Per-direction overhead added to every sealed frame (nonce counter is
/// implicit; the tag is carried).
pub const FRAME_OVERHEAD: usize = ChaCha20Poly1305::TAG_LEN;

/// One endpoint of a secure channel (encrypts in one direction, decrypts
/// the other).
#[derive(Debug)]
pub struct SecureEndpoint {
    send_cipher: ChaCha20Poly1305,
    recv_cipher: ChaCha20Poly1305,
    send_counter: u64,
    recv_counter: u64,
    /// Total plaintext bytes sealed by this endpoint.
    pub bytes_sealed: u64,
    /// Total ciphertext bytes opened by this endpoint.
    pub bytes_opened: u64,
}

/// A pair of connected endpoints (client side, server side).
#[derive(Debug)]
pub struct SecureChannel;

impl SecureChannel {
    /// Create a connected endpoint pair from a shared secret.
    #[must_use]
    pub fn pair(shared_secret: &[u8]) -> (SecureEndpoint, SecureEndpoint) {
        let client_to_server = derive_key(b"netsim-secure", shared_secret, b"client->server");
        let server_to_client = derive_key(b"netsim-secure", shared_secret, b"server->client");
        let client = SecureEndpoint {
            send_cipher: ChaCha20Poly1305::new(&client_to_server),
            recv_cipher: ChaCha20Poly1305::new(&server_to_client),
            send_counter: 0,
            recv_counter: 0,
            bytes_sealed: 0,
            bytes_opened: 0,
        };
        let server = SecureEndpoint {
            send_cipher: ChaCha20Poly1305::new(&server_to_client),
            recv_cipher: ChaCha20Poly1305::new(&client_to_server),
            send_counter: 0,
            recv_counter: 0,
            bytes_sealed: 0,
            bytes_opened: 0,
        };
        (client, server)
    }
}

fn nonce_from_counter(counter: u64) -> [u8; 12] {
    let mut nonce = [0u8; 12];
    nonce[..8].copy_from_slice(&counter.to_le_bytes());
    nonce
}

impl SecureEndpoint {
    /// Seal an outgoing frame.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let nonce = nonce_from_counter(self.send_counter);
        self.send_counter += 1;
        self.bytes_sealed += plaintext.len() as u64;
        self.send_cipher.seal(&nonce, b"netsim", plaintext)
    }

    /// Open an incoming frame.
    ///
    /// # Errors
    ///
    /// Returns a crypto error if the frame was tampered with or arrives out
    /// of order (the counter nonce enforces ordering, as TLS does).
    pub fn open(&mut self, sealed: &[u8]) -> Result<Vec<u8>> {
        let nonce = nonce_from_counter(self.recv_counter);
        let plain = self.recv_cipher.open(&nonce, b"netsim", sealed)?;
        self.recv_counter += 1;
        self.bytes_opened += sealed.len() as u64;
        Ok(plain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bidirectional_roundtrip() {
        let (mut client, mut server) = SecureChannel::pair(b"session secret");
        let request = client.seal(b"GET user:1");
        assert_ne!(request, b"GET user:1");
        assert_eq!(server.open(&request).unwrap(), b"GET user:1");
        let reply = server.seal(b"alice@example.com");
        assert_eq!(client.open(&reply).unwrap(), b"alice@example.com");
        assert_eq!(client.bytes_sealed, 10);
        assert!(server.bytes_opened > 0);
    }

    #[test]
    fn frames_cannot_be_replayed_or_reordered() {
        let (mut client, mut server) = SecureChannel::pair(b"s");
        let first = client.seal(b"one");
        let second = client.seal(b"two");
        // Deliver out of order: the counter nonce makes the second frame
        // undecryptable first.
        assert!(server.open(&second).is_err());
        // In order works.
        assert_eq!(server.open(&first).unwrap(), b"one");
        assert_eq!(server.open(&second).unwrap(), b"two");
        // Replay of an already-consumed frame fails.
        assert!(server.open(&first).is_err());
    }

    #[test]
    fn different_secrets_cannot_talk() {
        let (mut client, _) = SecureChannel::pair(b"alpha");
        let (_, mut server) = SecureChannel::pair(b"beta");
        let frame = client.seal(b"hello");
        assert!(server.open(&frame).is_err());
    }

    #[test]
    fn tampering_is_detected() {
        let (mut client, mut server) = SecureChannel::pair(b"s");
        let mut frame = client.seal(b"sensitive");
        frame[0] ^= 1;
        assert!(server.open(&frame).is_err());
    }

    #[test]
    fn overhead_is_exactly_the_tag() {
        let (mut client, _) = SecureChannel::pair(b"s");
        let sealed = client.seal(b"12345");
        assert_eq!(sealed.len(), 5 + FRAME_OVERHEAD);
    }
}
