//! Property-based tests over the core data structures and invariants:
//! the keyspace behaves like a model map, serialization layers roundtrip,
//! the AOF replays to the same state, expiry never leaves overdue keys
//! under the strict policy, and the crypto layer always roundtrips.

use std::collections::HashMap;
use std::sync::Arc;

use gdpr_storage::gdpr_core::metadata::{PersonalMetadata, Region};
use gdpr_storage::gdpr_crypto::aead::ChaCha20Poly1305;
use gdpr_storage::kvstore::clock::SimClock;
use gdpr_storage::kvstore::commands::Command;
use gdpr_storage::kvstore::config::StoreConfig;
use gdpr_storage::kvstore::db::{glob_match, Db};
use gdpr_storage::kvstore::store::KvStore;
use gdpr_storage::resp::decode::decode_one;
use gdpr_storage::resp::encode::encode_frame;
use gdpr_storage::resp::Frame;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Keyspace vs model

/// Operations a random test case may apply to the keyspace.
#[derive(Debug, Clone)]
enum Op {
    Set(String, Vec<u8>),
    Del(String),
    ExpireFar(String),
    Persist(String),
}

fn key_strategy() -> impl Strategy<Value = String> {
    // A small key universe so operations actually collide.
    (0u8..20).prop_map(|i| format!("key{i}"))
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            key_strategy(),
            proptest::collection::vec(any::<u8>(), 0..32)
        )
            .prop_map(|(k, v)| Op::Set(k, v)),
        key_strategy().prop_map(Op::Del),
        key_strategy().prop_map(Op::ExpireFar),
        key_strategy().prop_map(Op::Persist),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The keyspace agrees with a plain HashMap model under any sequence of
    /// sets, deletes, (non-elapsing) expirations and persists.
    #[test]
    fn db_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let clock = SimClock::new(1_000_000);
        let mut db = Db::new(Arc::new(clock));
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();

        for op in &ops {
            match op {
                Op::Set(k, v) => {
                    db.set(k, v.clone());
                    model.insert(k.clone(), v.clone());
                }
                Op::Del(k) => {
                    let existed = db.delete(k);
                    prop_assert_eq!(existed, model.remove(k).is_some());
                }
                Op::ExpireFar(k) => {
                    // A TTL far in the future never elapses during the test,
                    // so it must not change visibility.
                    let ok = db.expire_in_millis(k, 1_000_000_000);
                    prop_assert_eq!(ok, model.contains_key(k));
                }
                Op::Persist(k) => {
                    let _ = db.persist(k);
                }
            }
        }

        prop_assert_eq!(db.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(db.get(k).unwrap(), Some(v.clone()));
        }
        // Scan returns exactly the model's keys, sorted.
        let mut expected: Vec<String> = model.keys().cloned().collect();
        expected.sort();
        prop_assert_eq!(db.scan_range("", 1_000), expected);
    }

    /// Replaying the write commands journaled by the engine reproduces the
    /// exact same keyspace (the recovery invariant behind the AOF).
    #[test]
    fn aof_replay_reproduces_state(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let store = KvStore::open(StoreConfig::in_memory().aof_in_memory()).unwrap();
        for op in &ops {
            match op {
                Op::Set(k, v) => store.set(k, v.clone()).unwrap(),
                Op::Del(k) => { store.delete(k).unwrap(); }
                Op::ExpireFar(k) => { store.expire_at(k, 10_000_000_000_000).unwrap(); }
                Op::Persist(k) => {
                    let _ = store.execute(Command::Persist { key: k.clone() }).unwrap();
                }
            }
        }
        // Snapshot-based comparison after replay through a fresh store.
        let snapshot = store.snapshot();
        let replayed = KvStore::open(StoreConfig::in_memory()).unwrap();
        replayed.restore_snapshot(&snapshot).unwrap();
        prop_assert_eq!(replayed.len(), store.len());
        for key in store.keys("*").unwrap() {
            prop_assert_eq!(replayed.get(&key).unwrap(), store.get(&key).unwrap());
        }
    }

    /// Strict expiry leaves no overdue key behind, no matter how TTLs are
    /// assigned.
    #[test]
    fn strict_expiry_never_leaves_overdue_keys(
        ttls in proptest::collection::vec(1u64..5_000, 1..80),
    ) {
        let clock = SimClock::new(0);
        let store = KvStore::open(
            StoreConfig::in_memory()
                .clock(clock.clone())
                .expiry_mode(gdpr_storage::kvstore::expire::ExpiryMode::Strict),
        )
        .unwrap();
        for (i, ttl) in ttls.iter().enumerate() {
            let key = format!("k{i}");
            store.set(&key, b"v".to_vec()).unwrap();
            store.expire_at(&key, *ttl).unwrap();
        }
        clock.advance_millis(10_000);
        store.tick().unwrap();
        prop_assert_eq!(store.pending_expired(), 0);
        prop_assert_eq!(store.len(), 0);
    }

    // -----------------------------------------------------------------------
    // Serialization roundtrips

    /// Command encoding roundtrips for arbitrary keys/values.
    #[test]
    fn command_encoding_roundtrips(key in "[a-zA-Z0-9:_-]{1,32}", value in proptest::collection::vec(any::<u8>(), 0..200), ttl in any::<u64>()) {
        for cmd in [
            Command::Set { key: key.clone(), value: value.clone() },
            Command::Get { key: key.clone() },
            Command::ExpireAt { key: key.clone(), at_ms: ttl },
            Command::HSet { key: key.clone(), field: key.clone(), value },
        ] {
            let decoded = Command::decode(&cmd.encode()).unwrap();
            prop_assert_eq!(decoded, cmd);
        }
    }

    /// RESP frames roundtrip for arbitrary bulk payloads and integers.
    #[test]
    fn resp_roundtrips(payload in proptest::collection::vec(any::<u8>(), 0..300), n in any::<i64>()) {
        let frames = vec![
            Frame::Bulk(payload.clone()),
            Frame::Integer(n),
            Frame::Array(vec![Frame::Bulk(payload), Frame::Integer(n), Frame::Null]),
        ];
        for frame in frames {
            prop_assert_eq!(decode_one(&encode_frame(&frame)).unwrap(), frame);
        }
    }

    /// GDPR metadata roundtrips for arbitrary contents.
    #[test]
    fn metadata_roundtrips(
        subject in "[a-z0-9@.-]{1,24}",
        purposes in proptest::collection::btree_set("[a-z-]{1,12}", 0..5),
        objections in proptest::collection::btree_set("[a-z-]{1,12}", 0..5),
        expiry in proptest::option::of(any::<u64>()),
        automated in any::<bool>(),
    ) {
        let mut meta = PersonalMetadata::new(&subject).with_location(Region::Apac).with_automated_decisions(automated);
        for p in &purposes { meta = meta.with_purpose(p); }
        for o in &objections { meta = meta.with_objection(o); }
        meta.expires_at_ms = expiry;
        meta.created_at_ms = 123;
        let decoded = PersonalMetadata::decode(&meta.encode()).unwrap();
        prop_assert_eq!(decoded, meta);
    }

    /// The AEAD decrypts exactly what it encrypted, for any key, nonce and
    /// payload — and refuses a flipped bit.
    #[test]
    fn aead_roundtrips_and_detects_tampering(
        key in proptest::array::uniform32(any::<u8>()),
        nonce in proptest::array::uniform12(any::<u8>()),
        payload in proptest::collection::vec(any::<u8>(), 0..300),
        flip in any::<usize>(),
    ) {
        let aead = ChaCha20Poly1305::new(&key);
        let sealed = aead.seal(&nonce, b"aad", &payload);
        prop_assert_eq!(aead.open(&nonce, b"aad", &sealed).unwrap(), payload);
        let mut tampered = sealed.clone();
        let idx = flip % tampered.len();
        tampered[idx] ^= 0x01;
        prop_assert!(aead.open(&nonce, b"aad", &tampered).is_err());
    }

    /// The glob matcher agrees with simple oracle cases: a pattern equal to
    /// the text always matches, `*` always matches, and a pattern with a
    /// different first literal never matches.
    #[test]
    fn glob_matcher_basic_laws(text in "[a-z]{0,12}") {
        prop_assert!(glob_match(&text, &text));
        prop_assert!(glob_match("*", &text));
        let with_star = format!("{text}*");
        prop_assert!(glob_match(&with_star, &text));
        if !text.is_empty() {
            let different = format!("Z{}", &text[1..]);
            prop_assert!(!glob_match(&different, &text));
        }
    }

    /// YCSB zipfian generator always stays within its configured range.
    #[test]
    fn zipfian_stays_in_range(items in 1u64..10_000, seed in any::<u64>()) {
        use gdpr_storage::ycsb::generator::{NumberGenerator, ZipfianGenerator};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut g = ZipfianGenerator::new(items);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(g.next_value(&mut rng) < items);
        }
    }
}
