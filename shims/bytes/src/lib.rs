//! Offline stand-in for the `bytes` crate: a growable byte buffer with the
//! [`Buf`]/[`BufMut`] trait subset the RESP codec consumes.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// Types that hold readable bytes which can be consumed from the front.
pub trait Buf {
    /// Number of readable bytes remaining.
    fn remaining(&self) -> usize;

    /// Discard the next `cnt` readable bytes.
    fn advance(&mut self, cnt: usize);

    /// The readable bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];
}

/// Types that accept appended bytes.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, b: u8);

    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// A growable, contiguous byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `capacity` bytes pre-allocated.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Number of readable bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Copy the readable bytes into a `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Remove every byte.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.inner.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.inner.len(), "advance past end of buffer");
        self.inner.drain(..cnt);
    }

    fn chunk(&self) -> &[u8] {
        &self.inner
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.inner.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        BytesMut { inner }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut {
            inner: src.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_advance() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u8(b'+');
        buf.put_slice(b"OK\r\n");
        assert_eq!(&buf[..], b"+OK\r\n");
        assert_eq!(buf.remaining(), 5);
        buf.advance(3);
        assert_eq!(&buf[..], b"\r\n");
        assert_eq!(buf.to_vec(), b"\r\n".to_vec());
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut buf = BytesMut::new();
        buf.advance(1);
    }
}
