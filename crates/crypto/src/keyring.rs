//! A per-subject keyring enabling *crypto-erasure*.
//!
//! The paper's discussion of the Right to be Forgotten (Article 17) points
//! out that deleted data often lingers in subsystems such as the AOF until
//! compaction. One well-known mitigation — beyond the paper's
//! "compact periodically" policy — is to encrypt each data subject's
//! records under a per-subject key and *destroy the key* on erasure, which
//! makes any lingering ciphertext unreadable immediately. The keyring here
//! supports that extension (used by `gdpr-core`'s retention module as an
//! ablation).

use std::collections::HashMap;

use crate::aead::ChaCha20Poly1305;
use crate::kdf::derive_key;
use crate::CryptoError;

/// Identifier of a key in the ring (typically a data-subject id hash).
pub type KeyId = u64;

/// State of a single key slot.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Slot {
    /// Key material is present and usable.
    Active(Box<[u8; 32]>),
    /// Key material has been destroyed (crypto-erased). We keep the slot so
    /// that the audit trail can prove *when* erasure happened.
    Destroyed,
}

/// A collection of independently destroyable encryption keys.
///
/// # Example
///
/// ```
/// use gdpr_crypto::keyring::Keyring;
///
/// # fn main() -> Result<(), gdpr_crypto::CryptoError> {
/// let mut ring = Keyring::new(b"master secret");
/// let subject = 42;
/// ring.create(subject);
/// let sealed = ring.seal(subject, &[0; 12], b"", b"alice@example.com")?;
/// ring.destroy(subject);
/// assert!(ring.open(subject, &[0; 12], b"", &sealed).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Keyring {
    master: Vec<u8>,
    slots: HashMap<KeyId, Slot>,
    destroyed_count: u64,
}

impl Keyring {
    /// Create an empty keyring deriving its keys from `master`.
    #[must_use]
    pub fn new(master: &[u8]) -> Self {
        Keyring {
            master: master.to_vec(),
            slots: HashMap::new(),
            destroyed_count: 0,
        }
    }

    /// Create (or re-create) the key for `id`. Returns `true` if a new key
    /// was created, `false` if an active key already existed.
    pub fn create(&mut self, id: KeyId) -> bool {
        match self.slots.get(&id) {
            Some(Slot::Active(_)) => false,
            _ => {
                let key = derive_key(&id.to_le_bytes(), &self.master, b"keyring-subject");
                self.slots.insert(id, Slot::Active(Box::new(key)));
                true
            }
        }
    }

    /// Destroy the key for `id`, rendering all data sealed under it
    /// unreadable. Idempotent; returns `true` if an active key was
    /// destroyed by this call.
    pub fn destroy(&mut self, id: KeyId) -> bool {
        match self.slots.get_mut(&id) {
            Some(slot @ Slot::Active(_)) => {
                *slot = Slot::Destroyed;
                self.destroyed_count += 1;
                true
            }
            _ => false,
        }
    }

    /// Whether `id` currently has an active key.
    #[must_use]
    pub fn is_active(&self, id: KeyId) -> bool {
        matches!(self.slots.get(&id), Some(Slot::Active(_)))
    }

    /// Whether `id`'s key has been destroyed.
    #[must_use]
    pub fn is_destroyed(&self, id: KeyId) -> bool {
        matches!(self.slots.get(&id), Some(Slot::Destroyed))
    }

    /// Number of keys destroyed over the lifetime of this ring.
    #[must_use]
    pub fn destroyed_count(&self) -> u64 {
        self.destroyed_count
    }

    /// Number of active keys.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.slots
            .values()
            .filter(|s| matches!(s, Slot::Active(_)))
            .count()
    }

    fn cipher(&self, id: KeyId) -> Result<ChaCha20Poly1305, CryptoError> {
        match self.slots.get(&id) {
            Some(Slot::Active(key)) => Ok(ChaCha20Poly1305::new(key)),
            Some(Slot::Destroyed) => Err(CryptoError::KeyDestroyed(id)),
            None => Err(CryptoError::UnknownKey(id)),
        }
    }

    /// Seal `plaintext` under the key for `id`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::UnknownKey`] or [`CryptoError::KeyDestroyed`]
    /// if the key is unavailable.
    pub fn seal(
        &self,
        id: KeyId,
        nonce: &[u8; 12],
        aad: &[u8],
        plaintext: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        Ok(self.cipher(id)?.seal(nonce, aad, plaintext))
    }

    /// Open `sealed` under the key for `id`.
    ///
    /// # Errors
    ///
    /// Returns key-availability errors as for [`Self::seal`], plus
    /// [`CryptoError::TagMismatch`] on authentication failure.
    pub fn open(
        &self,
        id: KeyId,
        nonce: &[u8; 12],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        self.cipher(id)?.open(nonce, aad, sealed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_is_idempotent() {
        let mut ring = Keyring::new(b"m");
        assert!(ring.create(1));
        assert!(!ring.create(1));
        assert_eq!(ring.active_count(), 1);
    }

    #[test]
    fn seal_open_roundtrip() {
        let mut ring = Keyring::new(b"m");
        ring.create(7);
        let sealed = ring.seal(7, &[0u8; 12], b"aad", b"pii").unwrap();
        assert_eq!(ring.open(7, &[0u8; 12], b"aad", &sealed).unwrap(), b"pii");
    }

    #[test]
    fn destroy_blocks_open_and_seal() {
        let mut ring = Keyring::new(b"m");
        ring.create(7);
        let sealed = ring.seal(7, &[0u8; 12], b"", b"pii").unwrap();
        assert!(ring.destroy(7));
        assert!(!ring.destroy(7), "second destroy is a no-op");
        assert_eq!(
            ring.open(7, &[0u8; 12], b"", &sealed),
            Err(CryptoError::KeyDestroyed(7))
        );
        assert_eq!(
            ring.seal(7, &[0u8; 12], b"", b"x"),
            Err(CryptoError::KeyDestroyed(7))
        );
        assert_eq!(ring.destroyed_count(), 1);
        assert!(ring.is_destroyed(7));
        assert!(!ring.is_active(7));
    }

    #[test]
    fn unknown_key_is_an_error() {
        let ring = Keyring::new(b"m");
        assert_eq!(
            ring.seal(9, &[0u8; 12], b"", b"x"),
            Err(CryptoError::UnknownKey(9))
        );
    }

    #[test]
    fn different_subjects_have_different_keys() {
        let mut ring = Keyring::new(b"m");
        ring.create(1);
        ring.create(2);
        let sealed = ring.seal(1, &[0u8; 12], b"", b"data").unwrap();
        assert!(ring.open(2, &[0u8; 12], b"", &sealed).is_err());
    }

    #[test]
    fn recreate_after_destroy_gives_usable_key() {
        // GDPR nuance: if the same natural person re-registers after
        // erasure, they get a fresh key; old ciphertext must stay dead.
        let mut ring = Keyring::new(b"m");
        ring.create(5);
        let old = ring.seal(5, &[0u8; 12], b"", b"old").unwrap();
        ring.destroy(5);
        assert!(ring.create(5));
        // New key works for new data...
        let newer = ring.seal(5, &[1u8; 12], b"", b"new").unwrap();
        assert_eq!(ring.open(5, &[1u8; 12], b"", &newer).unwrap(), b"new");
        // ...and the deterministic derivation means the old blob opens again.
        // This documents a deliberate trade-off of deriving keys from the
        // master secret; gdpr-core never re-creates a destroyed subject id
        // (it allocates a fresh id instead), which this test records.
        assert!(ring.open(5, &[0u8; 12], b"", &old).is_ok());
    }
}
