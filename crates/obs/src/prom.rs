//! Prometheus text-exposition (format version 0.0.4) rendering.
//!
//! Deliberately minimal: counters, gauges and histograms — exactly what
//! the server exports. The writer emits `# HELP`/`# TYPE` headers once
//! per metric name (Prometheus rejects duplicates), escapes label
//! values, and renders histograms with cumulative `le` buckets in
//! **seconds** (the Prometheus base unit), converting from this crate's
//! microsecond buckets.

use std::collections::HashSet;

use crate::hist::{bucket_bound_micros, LatencyHistogram, BOUNDS};

/// Builds one Prometheus text-exposition document.
///
/// Metrics with the same name must be emitted with distinct label sets;
/// group all series of one name into adjacent calls so the document
/// keeps the conventional one-header-per-family layout.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
    headered: HashSet<String>,
}

impl PromWriter {
    /// Create an empty document.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Emit one counter series. `labels` is a list of `(name, value)`
    /// pairs; pass `&[]` for an unlabelled series.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.header(name, help, "counter");
        self.series(name, labels, &value.to_string());
    }

    /// Emit one gauge series.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.header(name, help, "gauge");
        self.series(name, labels, &value.to_string());
    }

    /// Emit one histogram series (cumulative `le` buckets in seconds,
    /// plus `_sum` and `_count`) from a latency histogram snapshot.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        hist: &LatencyHistogram,
    ) {
        self.header(name, help, "histogram");
        let counts = hist.bucket_counts();
        let mut cumulative = 0u64;
        for (i, &count) in counts.iter().take(BOUNDS).enumerate() {
            cumulative += count;
            let le = micros_to_seconds_str(bucket_bound_micros(i));
            self.bucket_series(name, labels, &le, cumulative);
        }
        self.bucket_series(name, labels, "+Inf", hist.count());
        self.series(
            &format!("{name}_sum"),
            labels,
            &format!("{}", hist.sum_micros() as f64 / 1e6),
        );
        self.series(&format!("{name}_count"), labels, &hist.count().to_string());
    }

    /// Finish and return the document.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        if self.headered.insert(name.to_string()) {
            self.out.push_str(&format!("# HELP {name} {help}\n"));
            self.out.push_str(&format!("# TYPE {name} {kind}\n"));
        }
    }

    fn bucket_series(&mut self, name: &str, labels: &[(&str, &str)], le: &str, value: u64) {
        let mut with_le: Vec<(&str, &str)> = labels.to_vec();
        with_le.push(("le", le));
        self.series(&format!("{name}_bucket"), &with_le, &value.to_string());
    }

    fn series(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                self.out.push_str(&escape_label_value(v));
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(value);
        self.out.push('\n');
    }
}

/// Escape a label value per the exposition format: backslash, double
/// quote and newline.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Render a microsecond bound as seconds without float-noise: Rust's
/// `f64` Display is shortest-roundtrip decimal (never scientific for
/// these magnitudes), so 1 µs → `0.000001`, 67 s → `67.108864`.
fn micros_to_seconds_str(micros: u64) -> String {
    format!("{}", micros as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counter_and_gauge_rendering() {
        let mut w = PromWriter::new();
        w.counter("gdpr_allowed_ops_total", "Ops allowed.", &[], 42);
        w.gauge(
            "clients_connected",
            "Open connections.",
            &[("transport", "reactor")],
            3,
        );
        let doc = w.finish();
        assert!(doc.contains("# HELP gdpr_allowed_ops_total Ops allowed.\n"));
        assert!(doc.contains("# TYPE gdpr_allowed_ops_total counter\n"));
        assert!(doc.contains("gdpr_allowed_ops_total 42\n"));
        assert!(doc.contains("clients_connected{transport=\"reactor\"} 3\n"));
    }

    #[test]
    fn header_emitted_once_per_name() {
        let mut w = PromWriter::new();
        w.counter("c", "help", &[("family", "get")], 1);
        w.counter("c", "help", &[("family", "set")], 2);
        let doc = w.finish();
        assert_eq!(doc.matches("# HELP c ").count(), 1);
        assert_eq!(doc.matches("# TYPE c ").count(), 1);
        assert!(doc.contains("c{family=\"get\"} 1\n"));
        assert!(doc.contains("c{family=\"set\"} 2\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_seconds() {
        let mut hist = LatencyHistogram::new();
        hist.record(Duration::from_micros(1)); // bucket le=0.000001
        hist.record(Duration::from_micros(3)); // bucket le=0.000004
        hist.record(Duration::from_secs(600)); // overflow

        let mut w = PromWriter::new();
        w.histogram("lat_seconds", "Latency.", &[("family", "get")], &hist);
        let doc = w.finish();

        assert!(doc.contains("# TYPE lat_seconds histogram\n"));
        assert!(doc.contains("lat_seconds_bucket{family=\"get\",le=\"0.000001\"} 1\n"));
        assert!(doc.contains("lat_seconds_bucket{family=\"get\",le=\"0.000002\"} 1\n"));
        assert!(doc.contains("lat_seconds_bucket{family=\"get\",le=\"0.000004\"} 2\n"));
        // Largest finite bound still excludes the overflow sample...
        assert!(doc.contains("lat_seconds_bucket{family=\"get\",le=\"67.108864\"} 2\n"));
        // ...which +Inf and _count include.
        assert!(doc.contains("lat_seconds_bucket{family=\"get\",le=\"+Inf\"} 3\n"));
        assert!(doc.contains("lat_seconds_count{family=\"get\"} 3\n"));
        assert!(doc.contains("lat_seconds_sum{family=\"get\"} 600.000004\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut w = PromWriter::new();
        w.gauge("g", "h", &[("k", "a\"b\\c\nd")], 1);
        let doc = w.finish();
        assert!(doc.contains("g{k=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn seconds_formatting_never_scientific() {
        for i in 0..super::BOUNDS {
            let s = micros_to_seconds_str(bucket_bound_micros(i));
            assert!(!s.contains('e') && !s.contains('E'), "bound {i}: {s}");
            assert!(s.parse::<f64>().is_ok());
        }
    }
}
