//! A simple bandwidth / latency link model.
//!
//! The paper's TLS measurement is explained by a bandwidth collapse: the
//! Stunnel proxies reduced the effective link from 44 Gb/s to 4.9 Gb/s.
//! [`Link`] models a link as `latency + bytes / bandwidth` per message. By
//! default it only *accounts* the virtual transfer time (so benchmarks can
//! report it and compute modelled throughput); with
//! [`LinkConfig::impose_delay`] it also busy-waits, turning the model into
//! real elapsed time for end-to-end runs.

use std::time::{Duration, Instant};

/// Configuration of a simulated link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Usable bandwidth in gigabits per second.
    pub bandwidth_gbps: f64,
    /// One-way latency added to every message.
    pub latency: Duration,
    /// Fixed per-message framing overhead in bytes (Ethernet/IP/TCP-ish).
    pub per_message_overhead: usize,
    /// If true, transfers actually wait out the modelled time; if false
    /// they only account it.
    pub impose_delay: bool,
}

impl LinkConfig {
    /// The paper's unencrypted link: 44 Gb/s, negligible latency.
    #[must_use]
    pub fn plain_44gbps() -> Self {
        LinkConfig {
            bandwidth_gbps: 44.0,
            latency: Duration::from_micros(30),
            per_message_overhead: 66,
            impose_delay: false,
        }
    }

    /// The paper's TLS-proxied link: 4.9 Gb/s effective bandwidth and extra
    /// per-hop latency from the two Stunnel processes.
    #[must_use]
    pub fn tls_proxied_4_9gbps() -> Self {
        LinkConfig {
            bandwidth_gbps: 4.9,
            latency: Duration::from_micros(90),
            per_message_overhead: 66 + 29, // TLS record header + MAC
            impose_delay: false,
        }
    }

    /// Builder-style: make transfers actually wait out the modelled time.
    #[must_use]
    pub fn imposing_delay(mut self) -> Self {
        self.impose_delay = true;
        self
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::plain_44gbps()
    }
}

/// Accumulated link activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages transferred.
    pub messages: u64,
    /// Payload bytes transferred (excluding per-message overhead).
    pub payload_bytes: u64,
    /// Total modelled transfer time in nanoseconds (latency + serialization).
    pub modelled_nanos: u128,
}

impl LinkStats {
    /// Modelled transfer time as a [`Duration`].
    #[must_use]
    pub fn modelled_time(&self) -> Duration {
        Duration::from_nanos(self.modelled_nanos.min(u128::from(u64::MAX)) as u64)
    }

    /// Modelled goodput in megabytes per second over the modelled time.
    #[must_use]
    pub fn modelled_goodput_mb_s(&self) -> f64 {
        let secs = self.modelled_nanos as f64 / 1e9;
        if secs == 0.0 {
            0.0
        } else {
            self.payload_bytes as f64 / 1e6 / secs
        }
    }
}

/// A unidirectional simulated link.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    stats: LinkStats,
}

impl Link {
    /// Create a link with the given configuration.
    #[must_use]
    pub fn new(config: LinkConfig) -> Self {
        Link {
            config,
            stats: LinkStats::default(),
        }
    }

    /// The link configuration.
    #[must_use]
    pub fn config(&self) -> LinkConfig {
        self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Modelled time to move `payload_bytes` across the link.
    #[must_use]
    pub fn transfer_time(&self, payload_bytes: usize) -> Duration {
        let total_bits = (payload_bytes + self.config.per_message_overhead) as f64 * 8.0;
        let serialization_secs = total_bits / (self.config.bandwidth_gbps * 1e9);
        self.config.latency + Duration::from_secs_f64(serialization_secs)
    }

    /// Account (and, if configured, impose) the transfer of one message.
    /// Returns the modelled transfer time.
    pub fn transfer(&mut self, payload_bytes: usize) -> Duration {
        let t = self.transfer_time(payload_bytes);
        self.stats.messages += 1;
        self.stats.payload_bytes += payload_bytes as u64;
        self.stats.modelled_nanos += t.as_nanos();
        if self.config.impose_delay {
            let start = Instant::now();
            while start.elapsed() < t {
                std::hint::spin_loop();
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slower_link_takes_longer() {
        let fast = Link::new(LinkConfig::plain_44gbps());
        let slow = Link::new(LinkConfig::tls_proxied_4_9gbps());
        let payload = 64 * 1024;
        assert!(slow.transfer_time(payload) > fast.transfer_time(payload));
    }

    #[test]
    fn transfer_time_scales_roughly_with_size() {
        let link = Link::new(LinkConfig {
            bandwidth_gbps: 1.0,
            latency: Duration::ZERO,
            per_message_overhead: 0,
            impose_delay: false,
        });
        let one_kb = link.transfer_time(1_000);
        let ten_kb = link.transfer_time(10_000);
        let ratio = ten_kb.as_secs_f64() / one_kb.as_secs_f64();
        assert!((9.0..11.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn stats_accumulate() {
        let mut link = Link::new(LinkConfig::tls_proxied_4_9gbps());
        link.transfer(1_000);
        link.transfer(2_000);
        let stats = link.stats();
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.payload_bytes, 3_000);
        assert!(stats.modelled_nanos > 0);
        assert!(stats.modelled_time() > Duration::ZERO);
        assert!(stats.modelled_goodput_mb_s() > 0.0);
    }

    #[test]
    fn goodput_reflects_bandwidth_difference() {
        let mut fast = Link::new(LinkConfig::plain_44gbps());
        let mut slow = Link::new(LinkConfig::tls_proxied_4_9gbps());
        for _ in 0..100 {
            fast.transfer(100_000);
            slow.transfer(100_000);
        }
        assert!(fast.stats().modelled_goodput_mb_s() > slow.stats().modelled_goodput_mb_s() * 2.0);
    }

    #[test]
    fn imposed_delay_actually_elapses() {
        let mut link = Link::new(LinkConfig {
            bandwidth_gbps: 0.001, // pathologically slow so the wait is measurable
            latency: Duration::from_millis(1),
            per_message_overhead: 0,
            impose_delay: true,
        });
        let start = Instant::now();
        link.transfer(1_000);
        assert!(start.elapsed() >= Duration::from_millis(1));
    }

    #[test]
    fn empty_stats_goodput_is_zero() {
        assert_eq!(LinkStats::default().modelled_goodput_mb_s(), 0.0);
    }
}
