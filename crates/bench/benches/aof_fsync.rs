//! Ablation: AOF fsync policy (§4.1 of the paper).
//!
//! Measures the per-record append cost of the journal under the three
//! `appendfsync` policies, against both an in-memory device (pure CPU) and
//! a real file (where `always` pays an fsync per record).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kvstore::aof::{AofLog, FsyncPolicy};
use kvstore::clock::SystemClock;
use kvstore::device::{MemoryDevice, PlainFileDevice};

fn bench_aof_fsync(c: &mut Criterion) {
    let mut group = c.benchmark_group("aof_fsync");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    let record = vec![0xa5u8; 128];

    for policy in [
        FsyncPolicy::Never,
        FsyncPolicy::EverySec,
        FsyncPolicy::Always,
    ] {
        group.bench_with_input(
            BenchmarkId::new("memory-device", policy.as_str()),
            &policy,
            |b, &policy| {
                let mut log =
                    AofLog::new(Box::new(MemoryDevice::new()), policy, Arc::new(SystemClock));
                b.iter(|| log.append(&record).unwrap());
            },
        );
    }

    let dir = std::env::temp_dir().join(format!("aof-fsync-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for policy in [
        FsyncPolicy::Never,
        FsyncPolicy::EverySec,
        FsyncPolicy::Always,
    ] {
        group.bench_with_input(
            BenchmarkId::new("file-device", policy.as_str()),
            &policy,
            |b, &policy| {
                let path = dir.join(format!("bench-{}.aof", policy.as_str()));
                let _ = std::fs::remove_file(&path);
                let device = PlainFileDevice::open(&path).unwrap();
                let mut log = AofLog::new(Box::new(device), policy, Arc::new(SystemClock));
                b.iter(|| log.append(&record).unwrap());
            },
        );
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_aof_fsync);
criterion_main!(benches);
